//! Umbrella crate for the CHOPPER reproduction suite.
//!
//! Re-exports every layer of the stack so examples and integration tests
//! can reach the whole system through one dependency:
//!
//! * [`chopper`] — the paper's contribution: cost models, Algorithms 1-3,
//!   the workload database, and the auto-tuning façade.
//! * [`engine`] — the mini Spark-like DAG analytics engine.
//! * [`workloads`] — the KMeans / PCA / SQL evaluation workloads.
//! * [`simcluster`] — the heterogeneous cluster simulator.
//! * [`blockstore`] — the HDFS-like block storage substrate.
//! * [`numeric`] — matrices, least squares, statistics, sampling.

pub use blockstore;
pub use chopper;
pub use engine;
pub use numeric;
pub use simcluster;
pub use workloads;
