//! Small-scale versions of the paper's result *shapes*, asserted as
//! integration tests so regressions in any crate surface immediately. The
//! full-size experiments live in the bench harness (`repro`); these run the
//! same code paths at test-friendly sizes.

use chopper_repro::chopper::Workload;
use chopper_repro::engine::{EngineOptions, WorkloadConf};
use chopper_repro::simcluster::paper_cluster;
use chopper_repro::workloads::{KMeans, KMeansConfig, Sql, SqlConfig};

fn engine(parallelism: usize, copartition: bool) -> EngineOptions {
    EngineOptions {
        cluster: paper_cluster(),
        default_parallelism: parallelism,
        copartition_scheduling: copartition,
        workers: 2,
        ..EngineOptions::default()
    }
}

fn kmeans() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 40_000; // ~1/10 of evaluation scale; same shapes
    KMeans::new(cfg)
}

/// Fig 3: stage-0 time decreases from P=100 to P=500, with P=100 worst.
#[test]
fn fig3_stage0_improves_with_partitions() {
    let w = kmeans();
    let t = |p: usize| {
        let ctx = w.run(&engine(p, false), &WorkloadConf::new(), 1.0);
        ctx.all_stages()[0].duration()
    };
    let t100 = t(100);
    let t300 = t(300);
    let t500 = t(500);
    assert!(
        t100 > t300,
        "P=100 ({t100:.1}s) must be worse than P=300 ({t300:.1}s)"
    );
    assert!(
        t300 > t500,
        "P=300 ({t300:.1}s) must be worse than P=500 ({t500:.1}s)"
    );
}

/// Fig 4: shuffle volume grows monotonically with the partition count at
/// every shuffle stage.
#[test]
fn fig4_shuffle_grows_with_partitions() {
    let w = kmeans();
    let shuffle_per_p: Vec<Vec<u64>> = [100, 300, 500]
        .iter()
        .map(|&p| {
            let ctx = w.run(&engine(p, false), &WorkloadConf::new(), 1.0);
            ctx.all_stages()
                .iter()
                .filter(|s| s.shuffle_data() > 0)
                .map(|s| s.shuffle_data())
                .collect()
        })
        .collect();
    assert_eq!(shuffle_per_p[0].len(), shuffle_per_p[1].len());
    for i in 0..shuffle_per_p[0].len() {
        assert!(
            shuffle_per_p[0][i] < shuffle_per_p[1][i] && shuffle_per_p[1][i] < shuffle_per_p[2][i],
            "stage {i} shuffle must grow with P: {:?}",
            shuffle_per_p.iter().map(|v| v[i]).collect::<Vec<_>>()
        );
    }
}

/// Section II-B: 2000 partitions are substantially slower than a moderate
/// choice, and shuffle far more.
#[test]
fn sec2b_2000_partitions_blow_up() {
    let w = kmeans();
    let run = |p: usize| {
        let ctx = w.run(&engine(p, false), &WorkloadConf::new(), 1.0);
        let total = ctx.jobs().last().unwrap().end;
        let shuffle: u64 = ctx.all_stages().iter().map(|s| s.shuffle_write_bytes).sum();
        (total, shuffle)
    };
    let (t500, s500) = run(500);
    let (t2000, s2000) = run(2000);
    assert!(
        t2000 > 1.2 * t500,
        "2000 partitions must be >20% slower: {t2000:.0} vs {t500:.0}"
    );
    assert!(s2000 > 3 * s500, "2000 partitions must shuffle much more");
}

/// Fig 2: different stages have different optimal partition counts —
/// no single P dominates every stage.
#[test]
fn fig2_no_single_p_wins_everywhere() {
    let w = kmeans();
    let per_stage = |p: usize| -> Vec<f64> {
        let ctx = w.run(&engine(p, false), &WorkloadConf::new(), 1.0);
        ctx.all_stages().iter().map(|s| s.duration()).collect()
    };
    let a = per_stage(100);
    let b = per_stage(500);
    let a_wins = a.iter().zip(&b).filter(|(x, y)| x < y).count();
    let b_wins = a.iter().zip(&b).filter(|(x, y)| x > y).count();
    assert!(
        a_wins > 0 && b_wins > 0,
        "each P must win somewhere (P100 {a_wins}, P500 {b_wins})"
    );
}

/// Figs 9-10: stage 4 (the join) moves the same volume under both systems,
/// and co-partitioning makes it read locally.
#[test]
fn fig9_join_volume_is_placement_independent() {
    let w = Sql::new(SqlConfig::small());
    let vanilla = w.run(&engine(60, false), &WorkloadConf::new(), 1.0);
    let chopper = w.run(&engine(60, true), &WorkloadConf::new(), 1.0);
    let v_join = vanilla.all_stages()[4].clone();
    let c_join = chopper.all_stages()[4].clone();
    assert_eq!(v_join.shuffle_read_bytes, c_join.shuffle_read_bytes);
    assert_eq!(
        c_join.remote_read_bytes, 0,
        "co-partitioned join is fully local"
    );
}

/// Figs 11-14: the utilization traces exist, are bounded, and show the
/// cluster doing real work.
#[test]
fn utilization_traces_are_sane() {
    let w = kmeans();
    let ctx = w.run(&engine(300, false), &WorkloadConf::new(), 1.0);
    let points = ctx.sim().trace().points();
    assert!(!points.is_empty());
    let peak_cpu = points.iter().map(|p| p.cpu_pct).fold(0.0, f64::max);
    assert!(
        peak_cpu > 20.0,
        "the cluster should be visibly busy, peak {peak_cpu:.1}%"
    );
    for p in &points {
        assert!((0.0..=100.0 + 1e-6).contains(&p.cpu_pct), "cpu {p:?}");
        assert!((0.0..=100.0 + 1e-6).contains(&p.mem_pct), "mem {p:?}");
        assert!(p.packets_per_sec >= 0.0 && p.transactions_per_sec >= 0.0);
    }
    // Shuffle stages produce network packets; input stages produce disk
    // transactions.
    assert!(points.iter().any(|p| p.packets_per_sec > 0.0));
    assert!(points.iter().any(|p| p.transactions_per_sec > 0.0));
}

/// The engine's virtual timing is fully deterministic across repeated runs
/// — the property every experiment above relies on.
#[test]
fn experiments_are_reproducible() {
    let w = Sql::new(SqlConfig::small());
    let a = w.run(&engine(60, true), &WorkloadConf::new(), 1.0);
    let b = w.run(&engine(60, true), &WorkloadConf::new(), 1.0);
    assert_eq!(
        a.jobs().last().unwrap().end.to_bits(),
        b.jobs().last().unwrap().end.to_bits()
    );
    let sa: Vec<u64> = a.all_stages().iter().map(|s| s.shuffle_data()).collect();
    let sb: Vec<u64> = b.all_stages().iter().map(|s| s.shuffle_data()).collect();
    assert_eq!(sa, sb);
}
