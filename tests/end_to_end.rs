//! Cross-crate integration: the full CHOPPER loop — run, collect, train,
//! plan, reconfigure, re-run — over real workloads on the simulated paper
//! cluster.

use chopper_repro::chopper::{
    collect_dag, collect_observations, Autotuner, StageModel, TestRunPlan, Workload, WorkloadDb,
};
use chopper_repro::engine::{EngineOptions, PartitionerKind, WorkloadConf};
use chopper_repro::simcluster::uniform_cluster;
use chopper_repro::workloads::{KMeans, KMeansConfig, Sql, SqlConfig};

fn small_engine(parallelism: usize) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(4, 8, 2.0),
        default_parallelism: parallelism,
        workers: 2,
        ..EngineOptions::default()
    }
}

fn quick_tuner(parallelism: usize) -> Autotuner {
    let mut t = Autotuner::new(small_engine(parallelism));
    t.test_plan = TestRunPlan {
        scales: vec![0.2, 0.5, 1.0],
        partitions: vec![8, 16, 32, 64, 150, 300],
        kinds: vec![PartitionerKind::Hash],
        probe_user_fixed: true,
        parallelism: 2,
    };
    t.optimizer.default_parallelism = parallelism;
    t
}

#[test]
fn kmeans_full_loop_improves_oversized_default() {
    let w = KMeans::new(KMeansConfig::small());
    let cmp = quick_tuner(300).compare(&w);
    assert!(
        cmp.chopper_time() < cmp.vanilla_time(),
        "vanilla {:.2}s vs chopper {:.2}s",
        cmp.vanilla_time(),
        cmp.chopper_time()
    );
    // The plan retuned at least the parse and update stages.
    assert!(
        cmp.plan.conf.stages.len() >= 2,
        "plan: {:?}",
        cmp.plan.decisions
    );
}

#[test]
fn sql_full_loop_keeps_join_copartitioned() {
    let w = Sql::new(SqlConfig::small());
    let cmp = quick_tuner(300).compare(&w);
    assert!(cmp.chopper_time() < cmp.vanilla_time());
    // The join subgraph must stay unified: the two aggregation stages and
    // the join all run under the same scheme in the tuned run.
    let stages: Vec<_> = cmp.chopper.all_stages().into_iter().cloned().collect();
    let schemes: Vec<_> = [1usize, 3, 4]
        .iter()
        .map(|&i| stages[i].scheme.expect("reduce/join stages carry schemes"))
        .collect();
    assert_eq!(schemes[0], schemes[1], "join sides co-partitioned");
    assert_eq!(schemes[0], schemes[2], "join matches its sides");
}

#[test]
fn trained_database_survives_serialization_and_still_plans() {
    let w = KMeans::new(KMeansConfig::small());
    let t = quick_tuner(300);
    let mut db = WorkloadDb::new();
    t.train(&w, &mut db);
    let restored = WorkloadDb::from_json(&db.to_json()).expect("round trip");
    let plan_fresh = t.plan(&w, &db);
    let plan_restored = t.plan(&w, &restored);
    assert_eq!(
        plan_fresh.conf, plan_restored.conf,
        "plans match after persistence"
    );
    assert!(!plan_fresh.conf.is_empty());
}

#[test]
fn config_file_text_round_trips_through_engine() {
    let w = KMeans::new(KMeansConfig::small());
    let t = quick_tuner(300);
    let mut db = WorkloadDb::new();
    t.train(&w, &mut db);
    let plan = t.plan(&w, &db);

    // Serialize the plan to the Fig. 6 text format, parse it back, and run
    // the workload under the parsed configuration.
    let text = plan.conf.to_text();
    let parsed = WorkloadConf::from_text(&text).expect("engine parses its own format");
    assert_eq!(parsed, plan.conf);

    let mut chopper_opts = small_engine(300);
    chopper_opts.copartition_scheduling = true;
    let tuned = w.run(&chopper_opts, &parsed, 1.0);
    let vanilla = w.run(&small_engine(300), &WorkloadConf::new(), 1.0);
    let t_tuned = tuned.jobs().last().unwrap().end;
    let t_vanilla = vanilla.jobs().last().unwrap().end;
    assert!(t_tuned < t_vanilla, "{t_tuned} !< {t_vanilla}");
}

#[test]
fn production_observations_anchor_the_models() {
    // Models fitted with the full-scale production run included predict
    // full-scale behaviour better than sampled-only models.
    let w = KMeans::new(KMeansConfig::small());
    let t = quick_tuner(64);

    let mut sampled_only = WorkloadDb::new();
    t.train(&w, &mut sampled_only);

    let full_ctx = w.run(&small_engine(64), &WorkloadConf::new(), 1.0);
    let full_bytes = w.full_input_bytes();
    let mut anchored = sampled_only.clone();
    anchored.record_run(
        w.name(),
        collect_observations(full_ctx.jobs(), full_bytes),
        collect_dag(full_ctx.jobs(), full_bytes),
    );

    // Validate on the parse stage: predict the full-scale stage-0 time.
    let stage0 = full_ctx.all_stages()[0].clone();
    let validate = chopper_repro::chopper::Observation {
        d: stage0.input_bytes as f64,
        p: stage0.num_tasks as f64,
        t_exe: stage0.duration(),
        s_shuffle: stage0.shuffle_data() as f64,
    };
    let err = |db: &WorkloadDb| -> f64 {
        let rec = db.workload(w.name()).expect("trained");
        let model = StageModel::fit(rec.observations(stage0.root_signature, PartitionerKind::Hash))
            .expect("enough observations");
        model.time_error(&[validate])
    };
    assert!(
        err(&anchored) <= err(&sampled_only) + 1e-9,
        "anchored {:.4} vs sampled-only {:.4}",
        err(&anchored),
        err(&sampled_only)
    );
}

#[test]
fn autotune_is_deterministic_across_worker_and_grid_parallelism() {
    // Host-side parallelism — both the engine's worker pool and the test-run
    // grid fan-out — must never leak into what the tuner observes or decides.
    // Train and plan under (workers=1, serial grid) and (workers=8, parallel
    // grid): the observation databases and final plans must match exactly.
    let tune = |workers: usize, grid_parallelism: usize| {
        let mut opts = small_engine(300);
        opts.workers = workers;
        let mut t = Autotuner::new(opts);
        t.test_plan = TestRunPlan {
            scales: vec![0.2, 0.5, 1.0],
            partitions: vec![8, 32, 150, 300],
            kinds: vec![PartitionerKind::Hash],
            probe_user_fixed: true,
            parallelism: grid_parallelism,
        };
        t.optimizer.default_parallelism = 300;
        let w = KMeans::new(KMeansConfig::small());
        let mut db = WorkloadDb::new();
        t.train(&w, &mut db);
        let plan = t.plan(&w, &db);
        (db.to_json(), plan.conf)
    };
    let (db_serial, plan_serial) = tune(1, 1);
    let (db_parallel, plan_parallel) = tune(8, 4);
    assert_eq!(db_serial, db_parallel, "observation databases diverged");
    assert_eq!(plan_serial, plan_parallel, "tuned plans diverged");
}

#[test]
fn repartition_insertion_hook_round_trip() {
    // A user-fixed source with a pathologically high split count: the
    // engine-side hook inserts a repartition phase when the configuration
    // asks for one.
    use chopper_repro::engine::{Context, Key, PartitionerSpec, Record, Value};

    let mut ctx = Context::new(small_engine(32));
    let data: Vec<Record> = (0..20_000)
        .map(|i| Record::new(Key::Int(i % 50), Value::Int(1)))
        .collect();
    let src = ctx.parallelize(data, 512, "overpartitioned-src");
    let sig = ctx.signature(src);
    let mut conf = WorkloadConf::new();
    conf.set_repartition(sig, PartitionerSpec::hash(16));
    ctx.set_conf(conf);
    let repartitioned = ctx.maybe_insert_repartition(src);
    assert_ne!(repartitioned, src);
    ctx.count(repartitioned, "coalesce");
    let last = ctx.jobs().last().unwrap().stages.last().unwrap().clone();
    assert_eq!(
        last.num_tasks, 16,
        "inserted phase runs at the requested width"
    );
}

#[test]
fn partition_dependency_grouping_protects_cached_chains() {
    // LogReg: the gradient/evaluate stages read the cached points and
    // inherit the parse stage's split count. Algorithm 3 must group them
    // with the parse stage and decide jointly, never leaving the group
    // with a plan that regresses the whole chain.
    use chopper_repro::chopper::DecisionAction;
    use chopper_repro::workloads::{LogReg, LogRegConfig};

    let w = LogReg::new(LogRegConfig::small());
    let cmp = quick_tuner(300).compare(&w);
    // The cached stages are explicitly marked as following their producer.
    let followers = cmp
        .plan
        .decisions
        .iter()
        .filter(|d| matches!(d.action, DecisionAction::FollowsProducer(_)))
        .count();
    assert!(
        followers >= 1,
        "gradient/evaluate follow the parse stage: {:?}",
        cmp.plan.decisions
    );
    // And the joint decision must not make the tuned run slower.
    assert!(
        cmp.chopper_time() <= cmp.vanilla_time() * 1.02,
        "grouped plan must not regress: {:.2} vs {:.2}",
        cmp.chopper_time(),
        cmp.vanilla_time()
    );
}

#[test]
fn optimizer_never_regresses_any_workload_at_small_scale() {
    // The guard the whole suite depends on: for every workload, the tuned
    // run is at worst marginally slower than vanilla (model noise bound),
    // and usually faster.
    use chopper_repro::workloads::{KMeans, KMeansConfig, Pca, PcaConfig, Sql, SqlConfig};
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(KMeans::new(KMeansConfig::small())),
        Box::new(Pca::new(PcaConfig::small())),
        Box::new(Sql::new(SqlConfig::small())),
    ];
    for w in &workloads {
        let cmp = quick_tuner(300).compare(w.as_ref());
        assert!(
            cmp.chopper_time() <= cmp.vanilla_time() * 1.05,
            "{}: tuned {:.2}s vs vanilla {:.2}s",
            w.name(),
            cmp.chopper_time(),
            cmp.vanilla_time()
        );
    }
}
