//! The paper's KMeans evaluation in miniature: run the 20-stage KMeans
//! workload on the simulated 6-node heterogeneous cluster, train CHOPPER
//! from lightweight test runs, and compare vanilla Spark defaults against
//! the tuned configuration (paper Figs. 7-8, Tables II-III).
//!
//! ```text
//! cargo run --release --example kmeans_autotune
//! ```

use chopper::{Autotuner, DecisionAction, TestRunPlan};
use engine::{EngineOptions, PartitionerKind};
use workloads::{KMeans, KMeansConfig};

fn main() {
    // A modest instance so the example finishes in seconds; the bench
    // harness (`cargo run -p bench --bin repro`) runs the full-size one.
    let mut cfg = KMeansConfig::paper();
    cfg.points = 80_000;
    let workload = KMeans::new(cfg);

    let base = EngineOptions {
        cluster: simcluster::paper_cluster(),
        default_parallelism: 300, // the paper's vanilla setting
        ..EngineOptions::default()
    };
    let mut tuner = Autotuner::new(base);
    tuner.test_plan = TestRunPlan {
        scales: vec![0.1, 0.3, 0.6],
        partitions: vec![60, 150, 300, 600, 1200],
        kinds: vec![PartitionerKind::Hash, PartitionerKind::Range],
        probe_user_fixed: true,
        parallelism: 2,
    };

    println!(
        "training CHOPPER from {} lightweight test runs...",
        tuner.test_plan.num_runs()
    );
    let cmp = tuner.compare(&workload);

    println!("\nper-stage comparison (vanilla P=300 vs CHOPPER):");
    println!(
        "{:>5} {:>10} {:>6} | {:>10} {:>6}",
        "stage", "Spark", "P", "CHOPPER", "P"
    );
    let v: Vec<_> = cmp.vanilla.all_stages().into_iter().cloned().collect();
    let c: Vec<_> = cmp.chopper.all_stages().into_iter().cloned().collect();
    for i in 0..v.len().max(c.len()) {
        let (vd, vp) = v
            .get(i)
            .map(|s| (s.duration(), s.num_tasks))
            .unwrap_or((0.0, 0));
        let (cd, cp) = c
            .get(i)
            .map(|s| (s.duration(), s.num_tasks))
            .unwrap_or((0.0, 0));
        println!("{i:>5} {vd:>9.1}s {vp:>6} | {cd:>9.1}s {cp:>6}");
    }

    println!("\nCHOPPER's plan (stage signature -> scheme):");
    for d in &cmp.plan.decisions {
        match &d.action {
            DecisionAction::Retune(s) | DecisionAction::RetuneGrouped(s) => {
                println!(
                    "  {:016x} {:<14} -> {} {}",
                    d.signature, d.name, s.kind, s.partitions
                )
            }
            other => println!("  {:016x} {:<14} -> {:?}", d.signature, d.name, other),
        }
    }

    println!(
        "\ntotal: vanilla {:.1}s -> CHOPPER {:.1}s ({:+.1}%)",
        cmp.vanilla_time(),
        cmp.chopper_time(),
        cmp.improvement_pct()
    );
    assert!(
        cmp.chopper_time() < cmp.vanilla_time(),
        "CHOPPER should beat the static default on this workload"
    );
}
