//! Quickstart: run a small analytics job on the mini DAG engine, then let
//! CHOPPER retune its partitioning.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chopper::{Autotuner, TestRunPlan, Workload};
use engine::{Context, EngineOptions, Key, Record, ReduceFn, Value, WorkloadConf};
use std::sync::Arc;

/// A classic word-count-shaped workload: keyed records, one shuffle.
struct WordCount {
    records: usize,
    distinct_words: i64,
}

impl Workload for WordCount {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn full_input_bytes(&self) -> u64 {
        (self.records * 24) as u64
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        let n = ((self.records as f64 * scale) as usize).max(1);
        let words = self.distinct_words;
        // One record per "word occurrence".
        let data: Vec<Record> = (0..n)
            .map(|i| Record::new(Key::Int(i as i64 % words), Value::Int(1)))
            .collect();
        let src = ctx.parallelize(data, 8, "lines");

        let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
        // `None` scheme = tunable: the partitioner and partition count come
        // from CHOPPER's configuration (or the engine default).
        let counts = ctx.reduce_by_key(src, sum, None, 2e-4, "count-words");
        let total_words = ctx.count(counts, "wordcount");
        assert_eq!(total_words as i64, words.min(n as i64));
        ctx
    }
}

fn main() {
    // A small homogeneous cluster and a deliberately oversized default
    // parallelism, as an untuned deployment might have.
    let opts = EngineOptions {
        cluster: simcluster::uniform_cluster(4, 8, 2.0),
        default_parallelism: 512,
        ..EngineOptions::default()
    };
    let workload = WordCount {
        records: 200_000,
        distinct_words: 5_000,
    };

    // 1. Run once, vanilla.
    let ctx = workload.run_full(&opts, &WorkloadConf::new());
    println!("vanilla run:");
    for s in ctx.all_stages() {
        println!(
            "  stage {} [{}] tasks={} time={:.2}s shuffle={}B",
            s.stage_id,
            s.name,
            s.num_tasks,
            s.duration(),
            s.shuffle_data()
        );
    }
    let vanilla_total = ctx.jobs().last().map(|j| j.end).unwrap_or(0.0);
    println!("  total: {vanilla_total:.2}s");

    // 2. Train CHOPPER from lightweight test runs and retune.
    let mut tuner = Autotuner::new(opts);
    tuner.test_plan = TestRunPlan::quick();
    let comparison = tuner.compare(&workload);

    println!("\nCHOPPER decisions:");
    for d in &comparison.plan.decisions {
        println!("  {} -> {:?}", d.name, d.action);
    }
    println!(
        "\ngenerated configuration file:\n{}",
        comparison.plan.conf.to_text()
    );
    println!(
        "vanilla {:.2}s -> CHOPPER {:.2}s ({:+.1}% improvement)",
        comparison.vanilla_time(),
        comparison.chopper_time(),
        comparison.improvement_pct()
    );
}
