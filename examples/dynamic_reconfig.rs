//! Dynamic configuration updates (paper Section III-A): CHOPPER's
//! configuration file can be updated while a workload is running; the
//! scheduler picks up the new partition schemes at the next stage boundary.
//! Iterative stages share a structural signature, so a single entry retunes
//! every remaining iteration.
//!
//! ```text
//! cargo run --release --example dynamic_reconfig
//! ```

use engine::{Context, EngineOptions, Key, Record, ReduceFn, Value};
use std::sync::Arc;

fn main() {
    let mut ctx = Context::new(EngineOptions {
        cluster: simcluster::paper_cluster(),
        default_parallelism: 300,
        ..EngineOptions::default()
    });

    // A cached dataset iterated over repeatedly (KMeans-like driver loop).
    let data: Vec<Record> = (0..120_000)
        .map(|i| Record::new(Key::Int(i % 64), Value::Int(1)))
        .collect();
    let points = ctx.parallelize(data, 64, "points");
    ctx.cache(points);
    ctx.count(points, "materialize");

    let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));

    let mut iteration_sig = None;
    for iter in 0..6 {
        // Halfway through, "CHOPPER" writes an updated configuration file.
        // The engine re-resolves schemes at the next planning point, so
        // iterations 3.. run with the new partitioning — no recompilation,
        // exactly the paper's dynamic-update path.
        if iter == 3 {
            let sig = iteration_sig.expect("observed after first iteration");
            let conf_text = format!("# updated mid-run\nstage {sig:016x} hash 48\n");
            println!("-- installing updated configuration:\n{conf_text}");
            ctx.set_conf_text(&conf_text).expect("valid config");
        }

        let mapped = ctx.map(points, Arc::new(|r: &Record| r.clone()), 1e-4, "iterate");
        let reduced = ctx.reduce_by_key(mapped, Arc::clone(&sum), None, 1e-5, "accumulate");
        iteration_sig = Some(ctx.signature(reduced));
        ctx.count(reduced, "iteration");

        let stage = ctx
            .jobs()
            .last()
            .expect("job ran")
            .stages
            .last()
            .expect("has stages")
            .clone();
        println!(
            "iteration {iter}: reduce ran with {} tasks ({:.2}s)",
            stage.num_tasks,
            stage.duration()
        );
    }

    let reduce_counts: Vec<usize> = ctx
        .jobs()
        .iter()
        .skip(1) // the materialize job
        .map(|j| j.stages.last().expect("reduce stage").num_tasks)
        .collect();
    assert_eq!(
        &reduce_counts[..3],
        &[300, 300, 300],
        "default until the update"
    );
    assert_eq!(
        &reduce_counts[3..],
        &[48, 48, 48],
        "new scheme from iteration 3 on"
    );
    println!("\nconfiguration change applied at a stage boundary, mid-workload.");
}
