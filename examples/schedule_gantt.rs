//! Visualize how the simulated cluster schedules a stage: uniform tasks,
//! skewed tasks, and co-partition pinning, rendered as ASCII Gantt charts.
//!
//! ```text
//! cargo run --release --example schedule_gantt
//! ```

use simcluster::{paper_cluster, render_gantt, Simulation, TaskSpec};

fn main() {
    let spec = paper_cluster();

    println!("== 300 uniform tasks on the paper cluster ==");
    let mut sim = Simulation::new(spec.clone());
    let uniform: Vec<TaskSpec> = (0..300).map(|_| TaskSpec::compute(60.0)).collect();
    let t = sim.run_stage(&uniform);
    println!("{}", render_gantt(&spec, &t, 100));

    println!("== the same work with heavy split-size skew (one 8x task) ==");
    let mut sim = Simulation::new(spec.clone());
    let mut skewed: Vec<TaskSpec> = (0..299).map(|_| TaskSpec::compute(55.0)).collect();
    skewed.push(TaskSpec::compute(55.0 * 8.0));
    let t_skew = sim.run_stage(&skewed);
    println!("{}", render_gantt(&spec, &t_skew, 100));
    println!(
        "barrier effect: uniform stage {:.1}s vs skewed stage {:.1}s — the fat task\n\
         holds the whole stage, which is why partition counts matter (paper Fig. 3).\n",
        t.duration(),
        t_skew.duration()
    );

    println!("== co-partition pinning: all tasks pinned to node D ==");
    let mut sim = Simulation::new(spec.clone());
    let pinned: Vec<TaskSpec> = (0..64).map(|_| TaskSpec::compute(20.0).pin(3)).collect();
    let t_pin = sim.run_stage(&pinned);
    println!("{}", render_gantt(&spec, &t_pin, 100));
    println!("pins override load balancing — the tool CHOPPER uses to co-locate");
    println!("matching partitions of joined datasets (paper Section III-C).");

    assert!(t_skew.duration() > 2.0 * t.duration());
    assert!(t_pin.tasks.iter().all(|task| task.node == 3));
}
