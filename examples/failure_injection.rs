//! Failure injection (paper Section VI future work: "we will also explore
//! how CHOPPER behaves under failures"): degrade and fail nodes mid-
//! workload and watch the engine route around them — results stay correct,
//! stages stretch, recovery restores capacity.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use engine::{Context, EngineOptions, Key, Record, ReduceFn, Value};
use std::sync::Arc;

fn main() {
    let mut ctx = Context::new(EngineOptions {
        cluster: simcluster::paper_cluster(),
        default_parallelism: 300,
        ..EngineOptions::default()
    });

    // A cached dataset processed by repeated aggregation rounds.
    let data: Vec<Record> = (0..600_000)
        .map(|i| Record::new(Key::Int(i % 500), Value::Int(1)))
        .collect();
    let points = ctx.parallelize(data, 300, "events");
    ctx.cache(points);
    ctx.count(points, "materialize");

    let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
    let round = |ctx: &mut Context, label: &'static str| -> (u64, f64) {
        let m = ctx.map(points, Arc::new(|r: &Record| r.clone()), 4e-4, "process");
        let red = ctx.reduce_by_key(m, Arc::clone(&sum), None, 1e-5, "aggregate");
        let n = ctx.count(red, label);
        (n, ctx.jobs().last().expect("job ran").duration())
    };

    let (keys_healthy, t_healthy) = round(&mut ctx, "healthy");
    println!("healthy cluster:          {keys_healthy} keys in {t_healthy:.2}s");

    // Node B degrades to quarter speed (contention, thermal throttling...).
    ctx.inject_slowdown(1, 4.0);
    let (keys_slow, t_slow) = round(&mut ctx, "slow-node");
    println!("node B at quarter speed:  {keys_slow} keys in {t_slow:.2}s");

    // Node A fails outright: its executor takes no more tasks; data
    // materialized there is still fetchable.
    ctx.inject_failure(0);
    let (keys_failed, t_failed) = round(&mut ctx, "failed-node");
    println!("node A failed as well:    {keys_failed} keys in {t_failed:.2}s");

    // Both recover.
    ctx.recover(0);
    ctx.inject_slowdown(1, 1.0);
    let (keys_recovered, t_recovered) = round(&mut ctx, "recovered");
    println!("after recovery:           {keys_recovered} keys in {t_recovered:.2}s");

    assert_eq!(keys_healthy, 500);
    assert_eq!(keys_healthy, keys_slow);
    assert_eq!(keys_healthy, keys_failed);
    assert_eq!(keys_healthy, keys_recovered);
    assert!(t_slow > t_healthy, "a straggler node must slow the barrier");
    // Interestingly, failing A outright can be slightly *cheaper* than
    // keeping it as a straggler trap would be — but it must still be worse
    // than the healthy cluster.
    assert!(
        t_failed > t_healthy,
        "a 32-core hole must show in the makespan"
    );
    assert!(t_recovered < t_failed, "recovery restores throughput");
    println!("\nresults identical under every condition; only timing degraded.");
}
