//! Co-partitioning demo (paper Section III-C / Figs. 9-10): a SQL-style
//! aggregate-aggregate-join pipeline where CHOPPER's co-partition-aware
//! scheduling pins matching partitions of the two join sides to the same
//! nodes, making the join read entirely node-locally.
//!
//! ```text
//! cargo run --release --example sql_copartition
//! ```

use engine::{EngineOptions, StageKind, WorkloadConf};
use workloads::{Sql, SqlConfig};

fn run(copartition: bool) -> (f64, u64, u64) {
    let opts = EngineOptions {
        cluster: simcluster::paper_cluster(),
        default_parallelism: 300,
        copartition_scheduling: copartition,
        ..EngineOptions::default()
    };
    let workload = Sql::new(SqlConfig {
        orders: 120_000,
        returns: 60_000,
        keys: 30_000,
        zipf: 0.9,
        payload: 24,
        seed: 99,
    });
    let result = workload.execute(&opts, &WorkloadConf::new(), 1.0);
    let join = result
        .ctx
        .all_stages()
        .into_iter()
        .find(|s| s.kind == StageKind::Join)
        .expect("pipeline ends in a join")
        .clone();
    let total = result.ctx.jobs().last().map(|j| j.end).unwrap_or(0.0);
    (total, join.shuffle_read_bytes, join.remote_read_bytes)
}

fn main() {
    let (t_vanilla, read_v, remote_v) = run(false);
    let (t_chopper, read_c, remote_c) = run(true);

    println!(
        "join-stage input:  vanilla {} KB, co-partitioned {} KB (same data)",
        read_v / 1024,
        read_c / 1024
    );
    println!(
        "join-stage remote: vanilla {} KB, co-partitioned {} KB",
        remote_v / 1024,
        remote_c / 1024
    );
    println!("total time:        vanilla {t_vanilla:.1}s, co-partitioned {t_chopper:.1}s");

    assert_eq!(
        read_v, read_c,
        "both systems move the same join volume (paper: 4.7 GB)"
    );
    assert_eq!(
        remote_c, 0,
        "anchored partitions make the join fully node-local"
    );
    assert!(
        remote_v > 0,
        "vanilla placement scatters the two sides, paying network on the join"
    );
    println!("\nco-partitioning eliminated 100% of the join's network traffic.");
}
