//! Derive macros for the offline `serde` stand-in.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` for the two
//! item shapes this workspace serializes: structs with named fields and
//! fieldless enums. Honours `#[serde(default)]` and
//! `#[serde(default = "path")]` on struct fields. Parsing walks the raw
//! `proc_macro::TokenTree` stream directly (no `syn`/`quote` — the build
//! environment has no registry access), and code generation goes through
//! source-string `.parse()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level default behaviour from `#[serde(...)]` attributes.
enum DefaultMode {
    /// No attribute: the field must be present in the JSON object.
    Required,
    /// `#[serde(default)]`: fall back to `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: fall back to calling `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: DefaultMode,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let mut pairs = String::new();
            for f in fields {
                pairs.push_str(&format!(
                    "(\"{n}\".to_string(), ::serde::Serialize::to_json(&self.{n})),",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         ::serde::Json::Obj(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Json::Str(\"{v}\".to_string()),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fallback = match &f.default {
                    DefaultMode::Required => {
                        format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
                    }
                    DefaultMode::DefaultTrait => "::core::default::Default::default()".to_string(),
                    DefaultMode::Path(path) => format!("{path}()"),
                };
                inits.push_str(&format!(
                    "{n}: match v.get_field(\"{n}\") {{\n\
                         Some(x) => ::serde::Deserialize::from_json(x)?,\n\
                         None => {fallback},\n\
                     }},",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(v: &::serde::Json) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Json::Obj(_) => Ok({name} {{ {inits} }}),\n\
                             other => Err(::serde::Error::expected(\"object\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(v: &::serde::Json) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Json::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error(format!(\n\
                                     \"unknown {name} variant '{{other}}'\"))),\n\
                             }},\n\
                             other => Err(::serde::Error::expected(\"string\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = ident_at(&tokens, i, "struct/enum keyword");
    i += 1;
    let name = ident_at(&tokens, i, "item name");
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde stand-in derive supports only plain (non-generic, brace-bodied) \
             structs and enums; `{name}` is not one"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize, what: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Parses `name: Type` fields from a struct body, capturing `#[serde(...)]`
/// default modes and skipping field types with angle-bracket depth tracking
/// (commas inside `HashMap<u64, X>` are plain puncts, not group-wrapped).
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = DefaultMode::Required;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(mode) = parse_serde_attr(g.stream()) {
                            default = mode;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "field name");
        i += 2; // field name + ':'

        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Parses fieldless variants from an enum body, skipping attributes such as
/// `#[default]`. Data-carrying variants are rejected.
fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "enum variant");
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!(
                "serde stand-in derive supports only fieldless enum variants; \
                 `{name}` carries data"
            );
        }
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1; // discriminant tokens, if any
        }
        i += 1; // trailing ','
        variants.push(name);
    }
    variants
}

/// Recognises `serde(default)` and `serde(default = "path")` inside a
/// bracketed attribute body; anything else returns `None`.
fn parse_serde_attr(attr_body: TokenStream) -> Option<DefaultMode> {
    let tokens: Vec<TokenTree> = attr_body.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match inner.get(2) {
        Some(TokenTree::Literal(lit)) => {
            let text = lit.to_string();
            let path = text.trim_matches('"').to_string();
            Some(DefaultMode::Path(path))
        }
        _ => Some(DefaultMode::DefaultTrait),
    }
}
