//! Offline stand-in for `serde_json`, backed by the workspace `serde`
//! stand-in's concrete [`serde::Json`] tree. Provides the three entry points
//! this repo uses: [`to_string`], [`to_string_pretty`], and [`from_str`].

pub use serde::Error;

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render(false))
}

/// Serializes a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render(true))
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_json(&serde::Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        #[serde(default)]
        weight: f64,
        #[serde(default = "seven")]
        retries: u64,
    }

    fn seven() -> u64 {
        7
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Careful,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: u64,
        mode: Mode,
        inners: Vec<Inner>,
        table: HashMap<u64, Vec<(String, f64)>>,
        note: Option<String>,
    }

    fn sample() -> Outer {
        Outer {
            id: u64::MAX,
            mode: Mode::Careful,
            inners: vec![Inner {
                label: "a".into(),
                weight: 0.5,
                retries: 2,
            }],
            table: [(3u64, vec![("x".to_string(), 1.25)])]
                .into_iter()
                .collect(),
            note: None,
        }
    }

    #[test]
    fn derived_struct_roundtrips() {
        let v = sample();
        let json = super::to_string(&v).unwrap();
        let back: Outer = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_roundtrips() {
        let v = sample();
        let json = super::to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Outer = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_fields_use_defaults_or_error() {
        let inner: Inner = super::from_str(r#"{"label": "only"}"#).unwrap();
        assert_eq!(inner.weight, 0.0);
        assert_eq!(inner.retries, 7);
        let err = super::from_str::<Inner>("{}").unwrap_err();
        assert!(err.to_string().contains("label"));
    }

    #[test]
    fn unknown_enum_variant_errors() {
        assert!(super::from_str::<Mode>(r#""Sloppy""#).is_err());
        let m: Mode = super::from_str(r#""Fast""#).unwrap();
        assert_eq!(m, Mode::Fast);
    }
}
