//! Chrome `trace_event` JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! The exporter is deliberately dependency-free and deterministic:
//!
//! * Metadata (`process_name` / `thread_name`) events come first, sorted
//!   by `(pid, tid)`.
//! * Payload events are stably sorted by `(pid, tid, ts, insertion
//!   order)`, so timestamps are monotone within every track and the byte
//!   output is a pure function of the recorded events.
//! * Floats render via Rust's shortest-roundtrip `Display`, which never
//!   produces exponents for finite values — valid JSON, and bit-stable
//!   for bit-equal inputs.
//!
//! Only the event phases the sink records are emitted: `X` (complete),
//! `i` (instant, thread scope), `C` (counter), and `M` (metadata).

use crate::{ArgValue, Clock, Event, Phase};
use std::collections::BTreeMap;

/// Which clock's events to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockFilter {
    /// Everything.
    All,
    /// Only [`Clock::Virtual`] events — the deterministic slice.
    VirtualOnly,
    /// Only [`Clock::Wall`] events.
    WallOnly,
}

impl ClockFilter {
    fn admits(self, clock: Clock) -> bool {
        match self {
            ClockFilter::All => true,
            ClockFilter::VirtualOnly => clock == Clock::Virtual,
            ClockFilter::WallOnly => clock == Clock::Wall,
        }
    }
}

/// Renders events + track names to a Chrome `trace_event` JSON document.
pub fn render(
    events: &[Event],
    names: &BTreeMap<(u32, Option<u32>), String>,
    filter: ClockFilter,
) -> String {
    // Stable order: track, then timestamp, then insertion order.
    let mut selected: Vec<(usize, &Event)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| filter.admits(e.clock))
        .collect();
    selected.sort_by(|(ia, a), (ib, b)| {
        (a.track, a.ts_us, *ia)
            .partial_cmp(&(b.track, b.ts_us, *ib))
            .expect("finite timestamps")
    });

    let used_pids: std::collections::BTreeSet<u32> =
        selected.iter().map(|(_, e)| e.track.pid).collect();

    let mut out = String::with_capacity(4096 + selected.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Metadata for every named process/thread whose pid carries events.
    for ((pid, tid), name) in names {
        if !used_pids.contains(pid) {
            continue;
        }
        push_sep(&mut out, &mut first);
        match tid {
            None => {
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(name)
                ));
            }
            Some(tid) => {
                out.push_str(&format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape(name)
                ));
            }
        }
    }

    for (_, e) in &selected {
        push_sep(&mut out, &mut first);
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            escape(&e.name),
            escape(e.cat),
            e.track.pid,
            e.track.tid,
            fmt_f64(e.ts_us)
        );
        match &e.phase {
            Phase::Span { dur_us } => {
                out.push_str(&format!(
                    "{{\"ph\":\"X\",{common},\"dur\":{},\"args\":{}}}",
                    fmt_f64(*dur_us),
                    render_args(&e.args)
                ));
            }
            Phase::Instant => {
                out.push_str(&format!(
                    "{{\"ph\":\"i\",{common},\"s\":\"t\",\"args\":{}}}",
                    render_args(&e.args)
                ));
            }
            Phase::Counter { value } => {
                // Chrome counters read their series from `args`.
                out.push_str(&format!(
                    "{{\"ph\":\"C\",{common},\"args\":{{\"value\":{}}}}}",
                    fmt_f64(*value)
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn render_args(args: &[(&'static str, ArgValue)]) -> String {
    if args.is_empty() {
        return "{}".to_string();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":", escape(k)));
        match v {
            ArgValue::Int(n) => s.push_str(&n.to_string()),
            ArgValue::UInt(n) => s.push_str(&n.to_string()),
            ArgValue::Float(f) => s.push_str(&fmt_f64(*f)),
            ArgValue::Str(text) => s.push_str(&format!("\"{}\"", escape(text))),
        }
    }
    s.push('}');
    s
}

/// JSON-safe float: finite values via shortest-roundtrip `Display`
/// (never exponent-form in Rust), non-finite mapped to 0/±max.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "0".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 {
            f64::MAX.to_string()
        } else {
            (-f64::MAX).to_string()
        };
    }
    v.to_string()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSink, Track};

    fn sample_sink() -> TraceSink {
        let sink = TraceSink::enabled();
        sink.name_process(1, "virtual: cluster");
        sink.name_thread(Track::new(1, 3), "n0 lane0");
        sink.span(
            Clock::Virtual,
            Track::new(1, 3),
            "task 0",
            "task",
            0.5,
            1.5,
            vec![("node", 0u64.into())],
        );
        sink.counter(Clock::Wall, Track::new(4, 0), "stolen", "pool", 0.25, 7.0);
        sink.instant(
            Clock::Virtual,
            Track::new(2, 0),
            "decision",
            "autotune",
            2.0,
            vec![("what", "retune".into())],
        );
        sink
    }

    #[test]
    fn renders_expected_phases() {
        let json = sample_sink().chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn virtual_filter_drops_wall_events_and_their_processes() {
        let json = sample_sink().chrome_json_filtered(ClockFilter::VirtualOnly);
        assert!(json.contains("task 0"));
        assert!(json.contains("decision"));
        assert!(!json.contains("stolen"));
    }

    #[test]
    fn output_is_a_pure_function_of_events() {
        let a = sample_sink().chrome_json_filtered(ClockFilter::VirtualOnly);
        let b = sample_sink().chrome_json_filtered(ClockFilter::VirtualOnly);
        assert_eq!(a, b);
    }

    #[test]
    fn events_sort_monotone_within_tracks() {
        let sink = TraceSink::enabled();
        let t = Track::new(2, 0);
        sink.instant(Clock::Virtual, t, "late", "c", 5.0, vec![]);
        sink.instant(Clock::Virtual, t, "early", "c", 1.0, vec![]);
        let json = sink.chrome_json();
        let early = json.find("early").expect("early present");
        let late = json.find("late").expect("late present");
        assert!(early < late, "events must be time-sorted per track");
    }

    #[test]
    fn escapes_special_characters() {
        let sink = TraceSink::enabled();
        sink.instant(
            Clock::Virtual,
            Track::new(2, 0),
            "a\"b\\c\nd",
            "c",
            0.0,
            vec![],
        );
        let json = sink.chrome_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn non_finite_floats_render_as_valid_json() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert!(!fmt_f64(f64::INFINITY).contains("inf"));
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}
