//! Per-stage / per-task summary model: the structured view `chopper
//! trace` prints and `bench` consumes.
//!
//! The summary is computed from the engine's stage metrics (virtual-clock
//! data, deterministic) plus the executor pool's wall-clock counters
//! (diagnostic). Rendering is dependency-free: an aligned text table and
//! a hand-rolled, stably-ordered JSON document.

/// max/mean skew ratio of a set of per-task magnitudes (durations, byte
/// counts, record counts — any non-negative load measure).
///
/// Returns 1.0 (perfectly balanced) for an empty slice or a zero mean so
/// callers can multiply/compare without guarding. This is the *single*
/// definition of "skew" in the tree: `StageSummaryRow::skew`, the engine's
/// task-time skew metric, and the adaptive executor's hot-partition
/// trigger all call it, so a threshold tuned against one is valid against
/// the others.
pub fn skew_ratio(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let mean = sum / values.len() as f64;
    if mean <= 0.0 {
        return 1.0;
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    max / mean
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
///
/// Returns 0.0 for an empty slice. Nearest-rank keeps the result an
/// actual observed sample, which makes summaries bit-deterministic.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One stage's summary line.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummaryRow {
    /// Stage id within the job.
    pub stage_id: usize,
    /// Job the stage belongs to.
    pub job_id: usize,
    /// Human label (operator chain).
    pub name: String,
    /// Stage kind (`input` / `shuffle`).
    pub kind: String,
    /// Task count.
    pub tasks: usize,
    /// Stage wall span on the virtual clock, seconds.
    pub duration_s: f64,
    /// Median task time, seconds.
    pub p50_task_s: f64,
    /// 95th-percentile task time, seconds.
    pub p95_task_s: f64,
    /// Slowest task, seconds.
    pub max_task_s: f64,
    /// max/mean task-time skew ratio (1.0 = perfectly balanced).
    pub skew: f64,
    /// Bytes read by this stage's shuffle fetch.
    pub shuffle_read_bytes: u64,
    /// Bytes written for downstream shuffles.
    pub shuffle_write_bytes: u64,
    /// Portion of the shuffle read that crossed node boundaries.
    pub remote_read_bytes: u64,
}

/// Executor-pool scheduling counters (host wall clock, diagnostic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// `map` calls served by the pool.
    pub jobs: u64,
    /// Total items processed across all jobs.
    pub items: u64,
    /// Items executed by a participant other than the block owner.
    pub stolen: u64,
    /// Worker wake-ups that found no runnable job.
    pub idle_epochs: u64,
}

/// A whole run's summary: stage rows plus pool counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Per-stage rows, in execution order.
    pub stages: Vec<StageSummaryRow>,
    /// Host executor-pool counters.
    pub pool: PoolCounters,
    /// End of the last stage on the virtual clock, seconds.
    pub total_s: f64,
}

impl TraceSummary {
    /// Aligned text table (what `chopper trace` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>3} {:>3}  {:<26} {:<7} {:>5} {:>9} {:>8} {:>8} {:>8} {:>5} {:>10} {:>10} {:>10}\n",
            "job",
            "stg",
            "name",
            "kind",
            "tasks",
            "dur(s)",
            "p50(s)",
            "p95(s)",
            "max(s)",
            "skew",
            "shuf_in",
            "shuf_out",
            "remote_in",
        ));
        for r in &self.stages {
            out.push_str(&format!(
                "{:>3} {:>3}  {:<26} {:<7} {:>5} {:>9.4} {:>8.4} {:>8.4} {:>8.4} {:>5.2} {:>10} {:>10} {:>10}\n",
                r.job_id,
                r.stage_id,
                truncate(&r.name, 26),
                r.kind,
                r.tasks,
                r.duration_s,
                r.p50_task_s,
                r.p95_task_s,
                r.max_task_s,
                r.skew,
                fmt_bytes(r.shuffle_read_bytes),
                fmt_bytes(r.shuffle_write_bytes),
                fmt_bytes(r.remote_read_bytes),
            ));
        }
        out.push_str(&format!(
            "total {:.4}s virtual | pool: {} jobs, {} items, {} stolen, {} idle epochs\n",
            self.total_s, self.pool.jobs, self.pool.items, self.pool.stolen, self.pool.idle_epochs,
        ));
        out
    }

    /// Stably-ordered JSON document (machine-consumable by `bench`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, r) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job_id\":{},\"stage_id\":{},\"name\":\"{}\",\"kind\":\"{}\",\
                 \"tasks\":{},\"duration_s\":{},\"p50_task_s\":{},\"p95_task_s\":{},\
                 \"max_task_s\":{},\"skew\":{},\"shuffle_read_bytes\":{},\
                 \"shuffle_write_bytes\":{},\"remote_read_bytes\":{}}}",
                r.job_id,
                r.stage_id,
                escape(&r.name),
                escape(&r.kind),
                r.tasks,
                fmt_f64(r.duration_s),
                fmt_f64(r.p50_task_s),
                fmt_f64(r.p95_task_s),
                fmt_f64(r.max_task_s),
                fmt_f64(r.skew),
                r.shuffle_read_bytes,
                r.shuffle_write_bytes,
                r.remote_read_bytes,
            ));
        }
        out.push_str(&format!(
            "],\"pool\":{{\"jobs\":{},\"items\":{},\"stolen\":{},\"idle_epochs\":{}}},\
             \"total_s\":{}}}",
            self.pool.jobs,
            self.pool.items,
            self.pool.stolen,
            self.pool.idle_epochs,
            fmt_f64(self.total_s),
        ));
        out
    }
}

fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "0".to_string()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> StageSummaryRow {
        StageSummaryRow {
            stage_id: 1,
            job_id: 0,
            name: "map.filter".to_string(),
            kind: "shuffle".to_string(),
            tasks: 8,
            duration_s: 1.25,
            p50_task_s: 0.4,
            p95_task_s: 0.9,
            max_task_s: 1.0,
            skew: 1.6,
            shuffle_read_bytes: 3 << 20,
            shuffle_write_bytes: 0,
            remote_read_bytes: 2 << 20,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 95.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn render_includes_rows_and_totals() {
        let s = TraceSummary {
            stages: vec![row()],
            pool: PoolCounters {
                jobs: 3,
                items: 24,
                stolen: 5,
                idle_epochs: 2,
            },
            total_s: 1.25,
        };
        let text = s.render();
        assert!(text.contains("map.filter"));
        assert!(text.contains("shuffle"));
        assert!(text.contains("3.00MiB"));
        assert!(text.contains("5 stolen"));
    }

    #[test]
    fn json_is_stable_and_parseable() {
        let s = TraceSummary {
            stages: vec![row()],
            pool: PoolCounters::default(),
            total_s: 1.25,
        };
        let a = s.to_json();
        let b = s.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"stages\":["));
        assert!(a.contains("\"skew\":1.6"));
        assert!(a.ends_with("\"total_s\":1.25}"));
    }

    #[test]
    fn bytes_format_scales() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }

    #[test]
    fn truncate_respects_width() {
        assert_eq!(truncate("short", 26), "short");
        let long = "a".repeat(40);
        let t = truncate(&long, 26);
        assert_eq!(t.chars().count(), 26);
        assert!(t.ends_with('…'));
    }
}
