//! Structured execution tracing for the CHOPPER reproduction.
//!
//! The engine's end-of-run [`StageMetrics`](../engine/metrics) aggregates
//! tell you *that* a run was slow; this crate records *why*: per-task
//! timelines, shuffle waves, executor-pool occupancy, and the autotune
//! loop's grid cells, model fits, and optimizer decisions. Every subsystem
//! emits into one shared [`TraceSink`], and the result exports as Chrome
//! `trace_event` JSON (viewable in Perfetto) plus a per-stage summary
//! table ([`summary`]).
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero perturbation.** Tracing only *observes*: all simulated
//!    timings come from `simcluster`'s virtual clock, which the sink never
//!    touches. A trace-enabled run and a trace-disabled run produce
//!    bit-identical stage timings (asserted by the engine's determinism
//!    suite).
//! 2. **Determinism.** Events carry one of two clocks. [`Clock::Virtual`]
//!    events are timestamped in simulated seconds and are emitted from
//!    deterministic code points in deterministic order — the virtual slice
//!    of a trace is bit-identical across host worker counts and across
//!    repeated runs. [`Clock::Wall`] events carry host time and are
//!    diagnostic only (pool occupancy, grid-cell wall cost).
//! 3. **Lock-cheap.** A disabled sink is a `None` — every record call is
//!    a single branch, no allocation, no lock. An enabled sink takes one
//!    short `Mutex` push per event; there is no per-event I/O and no
//!    formatting until export.
//!
//! Process-id conventions are in [`pids`]; they keep virtual tracks
//! (cluster, driver) and wall tracks (executor pool, autotuner) in
//! separate Perfetto process groups.

pub mod chrome;
pub mod summary;

pub use chrome::ClockFilter;
pub use summary::{percentile, skew_ratio, PoolCounters, StageSummaryRow, TraceSummary};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Well-known Perfetto process ids, one per subsystem.
pub mod pids {
    /// Virtual clock: the simulated cluster (one thread per node core lane).
    pub const CLUSTER: u32 = 1;
    /// Virtual clock: the driver (stage spans, shuffle counters).
    pub const DRIVER: u32 = 2;
    /// Wall clock: the autotune loop (grid cells, fits, decisions).
    pub const AUTOTUNE: u32 = 3;
    /// Wall clock: the host executor pool. Track layout: tid 0 carries
    /// the pool's steal/idle counters, tid 1 the barrier executor's
    /// per-stage phase spans, tid 2 the pipelined executor's per-stage
    /// overlap spans (first task start → last task end; spans that
    /// overlap across stages are the pipeline at work), and tid 3 the
    /// per-exchange available-prefix counters.
    pub const POOL: u32 = 4;
    /// Virtual clock: the multi-tenant job server. Track layout: tid 0
    /// carries the admission-queue depth counter (sampled at every
    /// arrival, dispatch, completion, and rejection), and tid `1 + t`
    /// carries tenant `t`'s per-job spans (dispatch → completion, with
    /// job id, kind, and latency as args).
    pub const SERVER: u32 = 5;
}

/// Which clock an event's timestamp was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Simulated seconds from `simcluster` — deterministic.
    Virtual,
    /// Host seconds since the sink was created — diagnostic only.
    Wall,
}

/// One `(pid, tid)` Perfetto track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Perfetto process id (see [`pids`]).
    pub pid: u32,
    /// Perfetto thread id within the process.
    pub tid: u32,
}

impl Track {
    /// Shorthand constructor.
    pub const fn new(pid: u32, tid: u32) -> Track {
        Track { pid, tid }
    }
}

/// A typed event argument (rendered into the Chrome `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (stage signatures, byte counts).
    UInt(u64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::UInt(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::UInt(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Event shape, mirroring the Chrome `trace_event` phases this crate emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// A complete event (`ph: "X"`): duration in microseconds.
    Span {
        /// Duration in microseconds.
        dur_us: f64,
    },
    /// An instant event (`ph: "i"`, thread scope).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Clock the timestamp was read from.
    pub clock: Clock,
    /// Destination track.
    pub track: Track,
    /// Event name (Perfetto slice title / counter name).
    pub name: String,
    /// Category string (Perfetto filterable).
    pub cat: &'static str,
    /// Timestamp in microseconds on `clock`.
    pub ts_us: f64,
    /// Shape + payload.
    pub phase: Phase,
    /// Arguments, in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Inner {
    events: Mutex<Vec<Event>>,
    /// `(pid, None)` names a process; `(pid, Some(tid))` names a thread.
    names: Mutex<BTreeMap<(u32, Option<u32>), String>>,
    epoch: Instant,
}

/// A cheap, cloneable handle to a shared event buffer.
///
/// `TraceSink::disabled()` (the default) is a no-op: every record call is
/// one branch. Clone the sink freely — all clones share the same buffer.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let n = inner.events.lock().map(|e| e.len()).unwrap_or(0);
                write!(f, "TraceSink(enabled, {n} events)")
            }
            None => write!(f, "TraceSink(disabled)"),
        }
    }
}

impl TraceSink {
    /// An enabled sink with an empty buffer.
    pub fn enabled() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Inner {
                events: Mutex::new(Vec::new()),
                names: Mutex::new(BTreeMap::new()),
                epoch: Instant::now(),
            })),
        }
    }

    /// A disabled (no-op) sink. Same as `TraceSink::default()`.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Host seconds since the sink was created (0.0 when disabled).
    pub fn wall_now(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Names a Perfetto process. Idempotent; later names win.
    pub fn name_process(&self, pid: u32, name: &str) {
        if let Some(inner) = &self.inner {
            lock_names(inner).insert((pid, None), name.to_string());
        }
    }

    /// Names a Perfetto thread. Idempotent; later names win.
    pub fn name_thread(&self, track: Track, name: &str) {
        if let Some(inner) = &self.inner {
            lock_names(inner).insert((track.pid, Some(track.tid)), name.to_string());
        }
    }

    /// Whether a thread name is already registered (lets emitters skip
    /// rebuilding label strings for known tracks).
    pub fn has_thread_name(&self, track: Track) -> bool {
        match &self.inner {
            Some(inner) => lock_names(inner).contains_key(&(track.pid, Some(track.tid))),
            None => false,
        }
    }

    /// Records a complete span from `start_s` to `end_s` (seconds on
    /// `clock`).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        clock: Clock,
        track: Track,
        name: impl Into<String>,
        cat: &'static str,
        start_s: f64,
        end_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let ts_us = start_s * 1e6;
            let dur_us = (end_s - start_s).max(0.0) * 1e6;
            lock_events(inner).push(Event {
                clock,
                track,
                name: name.into(),
                cat,
                ts_us,
                phase: Phase::Span { dur_us },
                args,
            });
        }
    }

    /// Records an instant event at `ts_s` (seconds on `clock`).
    pub fn instant(
        &self,
        clock: Clock,
        track: Track,
        name: impl Into<String>,
        cat: &'static str,
        ts_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            lock_events(inner).push(Event {
                clock,
                track,
                name: name.into(),
                cat,
                ts_us: ts_s * 1e6,
                phase: Phase::Instant,
                args,
            });
        }
    }

    /// Records a counter sample at `ts_s` (seconds on `clock`).
    pub fn counter(
        &self,
        clock: Clock,
        track: Track,
        name: impl Into<String>,
        cat: &'static str,
        ts_s: f64,
        value: f64,
    ) {
        if let Some(inner) = &self.inner {
            lock_events(inner).push(Event {
                clock,
                track,
                name: name.into(),
                cat,
                ts_us: ts_s * 1e6,
                phase: Phase::Counter { value },
                args: Vec::new(),
            });
        }
    }

    /// A snapshot of all recorded events, in insertion order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => lock_events(inner).clone(),
            None => Vec::new(),
        }
    }

    /// A snapshot of registered process/thread names.
    pub fn names(&self) -> BTreeMap<(u32, Option<u32>), String> {
        match &self.inner {
            Some(inner) => lock_names(inner).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Exports the full trace (both clocks) as Chrome `trace_event` JSON.
    pub fn chrome_json(&self) -> String {
        chrome::render(&self.events(), &self.names(), ClockFilter::All)
    }

    /// Exports only the requested clock's slice of the trace. The
    /// [`ClockFilter::VirtualOnly`] slice is bit-deterministic across
    /// worker counts and repeated runs.
    pub fn chrome_json_filtered(&self, filter: ClockFilter) -> String {
        chrome::render(&self.events(), &self.names(), filter)
    }
}

fn lock_events(inner: &Inner) -> std::sync::MutexGuard<'_, Vec<Event>> {
    inner
        .events
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock_names(inner: &Inner) -> std::sync::MutexGuard<'_, BTreeMap<(u32, Option<u32>), String>> {
    inner
        .names
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.span(
            Clock::Virtual,
            Track::new(1, 0),
            "s",
            "cat",
            0.0,
            1.0,
            vec![],
        );
        sink.instant(Clock::Wall, Track::new(1, 0), "i", "cat", 0.5, vec![]);
        sink.counter(Clock::Virtual, Track::new(1, 0), "c", "cat", 0.5, 3.0);
        assert!(sink.events().is_empty());
        assert_eq!(sink.wall_now(), 0.0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        clone.instant(Clock::Virtual, Track::new(2, 0), "x", "c", 1.0, vec![]);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].ts_us, 1e6);
    }

    #[test]
    fn span_converts_seconds_to_microseconds() {
        let sink = TraceSink::enabled();
        sink.span(
            Clock::Virtual,
            Track::new(1, 3),
            "task",
            "task",
            2.5,
            4.0,
            vec![("node", 1u64.into())],
        );
        let ev = &sink.events()[0];
        assert_eq!(ev.ts_us, 2.5e6);
        match ev.phase {
            Phase::Span { dur_us } => assert!((dur_us - 1.5e6).abs() < 1e-6),
            _ => panic!("expected span"),
        }
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let sink = TraceSink::enabled();
        sink.span(Clock::Wall, Track::new(4, 0), "w", "c", 2.0, 1.0, vec![]);
        match sink.events()[0].phase {
            Phase::Span { dur_us } => assert_eq!(dur_us, 0.0),
            _ => panic!("expected span"),
        }
    }

    #[test]
    fn names_register_idempotently() {
        let sink = TraceSink::enabled();
        let t = Track::new(1, 7);
        assert!(!sink.has_thread_name(t));
        sink.name_thread(t, "lane");
        sink.name_process(1, "cluster");
        assert!(sink.has_thread_name(t));
        sink.name_thread(t, "lane2");
        assert_eq!(sink.names()[&(1, Some(7))], "lane2");
        assert_eq!(sink.names()[&(1, None)], "cluster");
    }

    #[test]
    fn wall_clock_advances() {
        let sink = TraceSink::enabled();
        let a = sink.wall_now();
        let b = sink.wall_now();
        assert!(b >= a);
    }
}
