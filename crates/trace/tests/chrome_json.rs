//! Golden-schema test for the Chrome `trace_event` export: the document
//! must be valid JSON, every event must carry the required fields,
//! timestamps must be monotone per `(pid, tid)` track, and every pid/tid
//! that carries events must have a metadata name mapping.

use serde::Json;
use std::collections::{BTreeMap, BTreeSet};
use trace::{pids, Clock, ClockFilter, TraceSink, Track};

/// Builds a sink shaped like a real run: cluster task lanes, driver stage
/// spans + shuffle counters, pool wall counters, autotune instants.
fn run_like_sink() -> TraceSink {
    let sink = TraceSink::enabled();
    sink.name_process(pids::CLUSTER, "virtual: cluster");
    sink.name_process(pids::DRIVER, "virtual: driver");
    sink.name_process(pids::POOL, "wall: executor pool");
    sink.name_thread(Track::new(pids::DRIVER, 0), "stages");

    let driver = Track::new(pids::DRIVER, 0);
    for stage in 0..3u64 {
        let t0 = stage as f64 * 2.0;
        sink.span(
            Clock::Virtual,
            driver,
            format!("stage {stage}"),
            "stage",
            t0,
            t0 + 1.8,
            vec![("tasks", 4u64.into())],
        );
        sink.counter(
            Clock::Virtual,
            driver,
            "shuffle_read_bytes",
            "shuffle",
            t0,
            (stage * 1024) as f64,
        );
        for task in 0..4u32 {
            let lane = Track::new(pids::CLUSTER, task);
            if !sink.has_thread_name(lane) {
                sink.name_thread(lane, &format!("n0.c{task}"));
            }
            let s = t0 + 0.1 * task as f64;
            sink.span(
                Clock::Virtual,
                lane,
                format!("s{stage}.t{task}"),
                "task",
                s,
                s + 1.0,
                vec![("node", 0u64.into())],
            );
        }
    }
    sink.counter(
        Clock::Wall,
        Track::new(pids::POOL, 0),
        "stolen",
        "pool",
        0.01,
        3.0,
    );
    sink
}

fn trace_events(doc: &Json) -> &[Json] {
    match doc.get_field("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    }
}

fn int_field(ev: &Json, name: &str) -> i128 {
    match ev.get_field(name) {
        Some(Json::Int(v)) => *v,
        other => panic!("field {name} must be an integer, got {other:?}"),
    }
}

fn num_field(ev: &Json, name: &str) -> f64 {
    match ev.get_field(name) {
        Some(Json::Int(v)) => *v as f64,
        Some(Json::Float(v)) => *v,
        other => panic!("field {name} must be numeric, got {other:?}"),
    }
}

fn str_field<'j>(ev: &'j Json, name: &str) -> &'j str {
    match ev.get_field(name) {
        Some(Json::Str(s)) => s,
        other => panic!("field {name} must be a string, got {other:?}"),
    }
}

#[test]
fn export_is_valid_json_with_trace_events_array() {
    let json = run_like_sink().chrome_json();
    let doc = Json::parse(&json).expect("chrome_json must be valid JSON");
    assert_eq!(
        doc.get_field("displayTimeUnit"),
        Some(&Json::Str("ms".to_string()))
    );
    assert!(!trace_events(&doc).is_empty());
}

#[test]
fn every_event_has_required_schema_fields() {
    let json = run_like_sink().chrome_json();
    let doc = Json::parse(&json).unwrap();
    for ev in trace_events(&doc) {
        let ph = str_field(ev, "ph");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        str_field(ev, "name");
        int_field(ev, "pid");
        int_field(ev, "tid");
        match ph {
            "M" => {
                // Metadata carries its payload under args.name.
                let args = ev.get_field("args").expect("metadata args");
                assert!(matches!(args.get_field("name"), Some(Json::Str(_))));
            }
            "X" => {
                assert!(num_field(ev, "ts") >= 0.0);
                assert!(num_field(ev, "dur") >= 0.0);
            }
            _ => {
                assert!(num_field(ev, "ts") >= 0.0);
            }
        }
    }
}

#[test]
fn timestamps_are_monotone_per_track() {
    let json = run_like_sink().chrome_json();
    let doc = Json::parse(&json).unwrap();
    let mut last: BTreeMap<(i128, i128), f64> = BTreeMap::new();
    for ev in trace_events(&doc) {
        if str_field(ev, "ph") == "M" {
            continue;
        }
        let key = (int_field(ev, "pid"), int_field(ev, "tid"));
        let ts = num_field(ev, "ts");
        if let Some(prev) = last.get(&key) {
            assert!(ts >= *prev, "track {key:?} went backwards: {prev} -> {ts}");
        }
        last.insert(key, ts);
    }
    assert!(last.len() >= 5, "expected several distinct tracks");
}

#[test]
fn every_event_pid_and_task_tid_has_a_name_mapping() {
    let json = run_like_sink().chrome_json();
    let doc = Json::parse(&json).unwrap();
    let mut named_pids: BTreeSet<i128> = BTreeSet::new();
    let mut named_tids: BTreeSet<(i128, i128)> = BTreeSet::new();
    for ev in trace_events(&doc) {
        if str_field(ev, "ph") != "M" {
            continue;
        }
        match str_field(ev, "name") {
            "process_name" => {
                named_pids.insert(int_field(ev, "pid"));
            }
            "thread_name" => {
                named_tids.insert((int_field(ev, "pid"), int_field(ev, "tid")));
            }
            other => panic!("unexpected metadata {other:?}"),
        }
    }
    for ev in trace_events(&doc) {
        if str_field(ev, "ph") == "M" {
            continue;
        }
        let pid = int_field(ev, "pid");
        assert!(named_pids.contains(&pid), "pid {pid} has no process_name");
        if str_field(ev, "ph") == "X" && pid == pids::CLUSTER as i128 {
            let key = (pid, int_field(ev, "tid"));
            assert!(named_tids.contains(&key), "lane {key:?} has no thread_name");
        }
    }
}

#[test]
fn virtual_slice_is_byte_identical_across_rebuilds() {
    let a = run_like_sink().chrome_json_filtered(ClockFilter::VirtualOnly);
    let b = run_like_sink().chrome_json_filtered(ClockFilter::VirtualOnly);
    assert_eq!(a, b);
    // The wall-clock counter must not appear in the deterministic slice.
    assert!(!a.contains("stolen"));
}
