//! Unified executor memory manager.
//!
//! Models Spark's unified memory model per simulated executor node: a
//! single per-node budget is shared between an *execution region* (task
//! working sets, reserved stage-by-stage) and a *storage region* (cached
//! RDD partitions). Execution borrows from storage: raising the execution
//! reservation shrinks the storage limit and may force evictions.
//!
//! Eviction is pluggable:
//!
//! * [`EvictionPolicy::Lru`] — classic least-recently-used.
//! * [`EvictionPolicy::Lrc`] — least-reference-count (DAG-aware, after
//!   Yang et al.): victims are ordered by remaining lineage references
//!   first, recency second, so a partition still needed by a future stage
//!   outlives one that is not.
//!
//! A victim with zero remaining references is *dropped* (recompute from
//! lineage if ever needed again); a victim with live references is
//! *spilled* (its bytes move to disk, a later read pays a reread). All
//! decisions are deterministic: entries live in a `BTreeMap` keyed by id
//! and ties break on (refs, last-access, id), never on hash order.

use std::collections::BTreeMap;

/// Which victim-selection policy the storage region uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Least-recently-used, reference counts ignored.
    Lru,
    /// Least-reference-count first (DAG-aware), recency as tie-break.
    #[default]
    Lrc,
}

/// Monotonic counters describing everything the manager did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Victims removed from the storage region (dropped or spilled).
    pub evictions: u64,
    /// Entries whose bytes moved to disk (victims with live refs, plus
    /// inserts that never fit).
    pub spills: u64,
    /// Total bytes written to spill storage.
    pub spill_bytes: u64,
    /// Reads served from spill storage.
    pub rereads: u64,
    /// Total bytes read back from spill storage.
    pub reread_bytes: u64,
    /// Cache entries that were re-materialized after a drop.
    pub recomputes: u64,
    /// Entries released because their lineage ref-count hit zero.
    pub released: u64,
}

/// What happened to an evicted entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// No remaining references: the entry is gone, recompute on reuse.
    Dropped,
    /// Live references remain: bytes moved to disk, reads pay a reread.
    Spilled,
}

/// One eviction decision, reported back to the caller so it can mirror
/// the change (release simulated residency, write the spill file, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Entry id (the engine keys these by RDD id).
    pub id: u64,
    /// Dropped or spilled.
    pub disposition: Disposition,
    /// Remaining lineage references at eviction time.
    pub refs: usize,
    /// Resident bytes freed, per node.
    pub bytes: Vec<u64>,
}

/// Result of [`MemoryManager::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry is resident in the storage region.
    Stored { evicted: Vec<Eviction> },
    /// Even after evicting everything eligible the entry did not fit;
    /// its bytes go straight to disk.
    Spilled { evicted: Vec<Eviction> },
}

impl InsertOutcome {
    /// The evictions performed while making room, regardless of outcome.
    pub fn evicted(&self) -> &[Eviction] {
        match self {
            InsertOutcome::Stored { evicted } | InsertOutcome::Spilled { evicted } => evicted,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Resident,
    Spilled,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Resident bytes per node (zeroed on spill).
    bytes: Vec<u64>,
    /// Logical size of the cached data (survives a spill; rereads are
    /// charged against it so spill→reread round-trips exactly).
    total: u64,
    last_access: u64,
    refs: usize,
    state: EntryState,
}

/// Deterministic unified memory manager for one simulated cluster.
#[derive(Debug)]
pub struct MemoryManager {
    /// Per-node unified budget; `None` means unlimited (manager inert).
    budget: Option<u64>,
    num_nodes: usize,
    policy: EvictionPolicy,
    /// Logical clock for recency ordering.
    seq: u64,
    entries: BTreeMap<u64, Entry>,
    storage_used: Vec<u64>,
    exec_reserved: Vec<u64>,
    counters: MemCounters,
}

impl MemoryManager {
    /// Manager with a per-node unified budget.
    pub fn new(num_nodes: usize, budget: Option<u64>, policy: EvictionPolicy) -> Self {
        assert!(num_nodes > 0, "memory manager needs at least one node");
        MemoryManager {
            budget,
            num_nodes,
            policy,
            seq: 0,
            entries: BTreeMap::new(),
            storage_used: vec![0; num_nodes],
            exec_reserved: vec![0; num_nodes],
            counters: MemCounters::default(),
        }
    }

    /// Unlimited manager: tracks accounting but never evicts or spills.
    pub fn unlimited(num_nodes: usize) -> Self {
        Self::new(num_nodes, None, EvictionPolicy::default())
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn counters(&self) -> MemCounters {
        self.counters
    }

    /// Resident storage bytes per node.
    pub fn storage_used(&self) -> &[u64] {
        &self.storage_used
    }

    /// Storage-region limit on `node`: the unified budget minus whatever
    /// execution has reserved (execution borrows from storage first).
    pub fn storage_limit(&self, node: usize) -> Option<u64> {
        self.budget
            .map(|b| b.saturating_sub(self.exec_reserved[node]))
    }

    /// True when the entry exists and its bytes live on disk.
    pub fn is_spilled(&self, id: u64) -> bool {
        matches!(
            self.entries.get(&id),
            Some(e) if e.state == EntryState::Spilled
        )
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Nodes whose storage region currently exceeds its limit, given an
    /// optional incoming allocation.
    fn over_budget_nodes(&self, incoming: Option<&[u64]>) -> Vec<usize> {
        let Some(_) = self.budget else {
            return Vec::new();
        };
        (0..self.num_nodes)
            .filter(|&n| {
                let want = self.storage_used[n] + incoming.map_or(0, |b| b[n]);
                want > self.storage_limit(n).unwrap()
            })
            .collect()
    }

    /// Deterministically pick the next victim among resident entries
    /// holding bytes on any of `nodes`. Returns the entry id.
    fn pick_victim(&self, nodes: &[usize], exclude: Option<u64>) -> Option<u64> {
        let mut best: Option<(usize, u64, u64)> = None; // (refs, last_access, id)
        let mut best_id = None;
        for (&id, e) in &self.entries {
            if Some(id) == exclude || e.state != EntryState::Resident {
                continue;
            }
            if !nodes.iter().any(|&n| e.bytes[n] > 0) {
                continue;
            }
            let key = match self.policy {
                EvictionPolicy::Lru => (0, e.last_access, id),
                EvictionPolicy::Lrc => (e.refs, e.last_access, id),
            };
            if best.is_none_or(|b| key < b) {
                best = Some(key);
                best_id = Some(id);
            }
        }
        best_id
    }

    /// Evict the entry `id`; returns the decision record.
    fn evict(&mut self, id: u64) -> Eviction {
        let e = self.entries.get_mut(&id).expect("victim exists");
        let freed = std::mem::replace(&mut e.bytes, vec![0; self.num_nodes]);
        for (n, b) in freed.iter().enumerate() {
            self.storage_used[n] -= b;
        }
        let refs = e.refs;
        self.counters.evictions += 1;
        let disposition = if refs == 0 {
            self.entries.remove(&id);
            Disposition::Dropped
        } else {
            let e = self.entries.get_mut(&id).unwrap();
            e.state = EntryState::Spilled;
            self.counters.spills += 1;
            self.counters.spill_bytes += e.total;
            Disposition::Spilled
        };
        Eviction {
            id,
            disposition,
            refs,
            bytes: freed,
        }
    }

    /// Evict until every node fits (optionally with `incoming` added).
    /// Stops when no eligible victim remains even if still over — the
    /// caller decides what to do with the overflow.
    fn make_room(&mut self, incoming: Option<&[u64]>, exclude: Option<u64>) -> Vec<Eviction> {
        let mut out = Vec::new();
        loop {
            let over = self.over_budget_nodes(incoming);
            if over.is_empty() {
                break;
            }
            match self.pick_victim(&over, exclude) {
                Some(id) => out.push(self.evict(id)),
                None => break,
            }
        }
        out
    }

    /// Reserve execution memory per node for the upcoming stage; evicts
    /// cached data if storage must shrink to make room. Returns the
    /// evictions performed.
    pub fn set_execution_reservation(&mut self, per_node: &[u64]) -> Vec<Eviction> {
        assert_eq!(per_node.len(), self.num_nodes);
        self.exec_reserved.copy_from_slice(per_node);
        self.make_room(None, None)
    }

    /// Insert a cached entry with `per_node` resident bytes and `refs`
    /// remaining lineage references.
    pub fn insert(&mut self, id: u64, per_node: Vec<u64>, refs: usize) -> InsertOutcome {
        assert_eq!(per_node.len(), self.num_nodes);
        let total: u64 = per_node.iter().sum();
        let seq = self.next_seq();
        // Re-inserting an id replaces the old entry (recompute path).
        if let Some(old) = self.entries.remove(&id) {
            for (n, b) in old.bytes.iter().enumerate() {
                self.storage_used[n] -= b;
            }
        }
        let evicted = self.make_room(Some(&per_node), Some(id));
        let fits = self.over_budget_nodes(Some(&per_node)).is_empty();
        if fits {
            for (n, b) in per_node.iter().enumerate() {
                self.storage_used[n] += b;
            }
            self.entries.insert(
                id,
                Entry {
                    bytes: per_node,
                    total,
                    last_access: seq,
                    refs,
                    state: EntryState::Resident,
                },
            );
            InsertOutcome::Stored { evicted }
        } else {
            self.counters.spills += 1;
            self.counters.spill_bytes += total;
            self.entries.insert(
                id,
                Entry {
                    bytes: vec![0; self.num_nodes],
                    total,
                    last_access: seq,
                    refs,
                    state: EntryState::Spilled,
                },
            );
            InsertOutcome::Spilled { evicted }
        }
    }

    /// Record a read of the entry (bumps recency).
    pub fn touch(&mut self, id: u64) {
        let seq = self.next_seq();
        if let Some(e) = self.entries.get_mut(&id) {
            e.last_access = seq;
        }
    }

    /// Update remaining lineage references for an entry.
    pub fn set_refs(&mut self, id: u64, refs: usize) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.refs = refs;
        }
    }

    /// Charge a read of a spilled entry. Returns the bytes read back —
    /// exactly the bytes that were spilled for this entry.
    pub fn reread(&mut self, id: u64) -> u64 {
        let seq = self.next_seq();
        let Some(e) = self.entries.get_mut(&id) else {
            return 0;
        };
        debug_assert_eq!(e.state, EntryState::Spilled, "reread of resident entry");
        e.last_access = seq;
        self.counters.rereads += 1;
        self.counters.reread_bytes += e.total;
        e.total
    }

    /// Record that a previously dropped entry was re-materialized.
    pub fn note_recompute(&mut self) {
        self.counters.recomputes += 1;
    }

    /// Record a map-side shuffle spill of `bytes` (combine buffer larger
    /// than the task's execution-memory share).
    pub fn note_shuffle_spill(&mut self, bytes: u64) {
        self.counters.spills += 1;
        self.counters.spill_bytes += bytes;
    }

    /// Remove an entry outright (lineage ref-count hit zero). Returns the
    /// per-node resident bytes freed, if the entry existed.
    pub fn release(&mut self, id: u64) -> Option<Vec<u64>> {
        let e = self.entries.remove(&id)?;
        for (n, b) in e.bytes.iter().enumerate() {
            self.storage_used[n] -= b;
        }
        self.counters.released += 1;
        Some(e.bytes)
    }

    /// Drop every entry whose ref-count is zero; returns (id, freed
    /// per-node bytes) for each, in id order.
    pub fn release_unreferenced(&mut self) -> Vec<(u64, Vec<u64>)> {
        let ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.refs == 0)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| self.release(id).map(|b| (id, b)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tenant-scoped admission ledger (job server)
// ---------------------------------------------------------------------------

/// Monotonic counters for a [`TenantLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedgerCounters {
    /// Admissions granted.
    pub admitted: u64,
    /// Admissions denied (would exceed guarantee + shared pool).
    pub denied: u64,
}

/// Per-tenant memory admission ledger with a shared overflow pool.
///
/// Each tenant holds a *guarantee* — bytes it can always occupy — and may
/// borrow past it from one *shared pool* that all tenants' overflows
/// compete for. The job server charges a job's estimated footprint here
/// before dispatching it and releases the charge at completion, so one
/// tenant's burst can delay (never starve: the guarantee is reserved) the
/// others. Purely arithmetic over explicit state — deterministic by
/// construction.
#[derive(Debug, Clone)]
pub struct TenantLedger {
    /// Shared overflow pool, competed for by every tenant's excess.
    shared: u64,
    /// Per-tenant guaranteed bytes.
    guarantees: Vec<u64>,
    /// Per-tenant bytes currently charged.
    used: Vec<u64>,
    counters: LedgerCounters,
}

impl TenantLedger {
    /// Ledger with `shared` overflow bytes and one guarantee per tenant.
    pub fn new(shared: u64, guarantees: Vec<u64>) -> TenantLedger {
        let used = vec![0; guarantees.len()];
        TenantLedger {
            shared,
            guarantees,
            used,
            counters: LedgerCounters::default(),
        }
    }

    pub fn num_tenants(&self) -> usize {
        self.guarantees.len()
    }

    pub fn counters(&self) -> LedgerCounters {
        self.counters
    }

    /// Bytes tenant `t` currently has charged.
    pub fn used(&self, t: usize) -> u64 {
        self.used[t]
    }

    /// Shared-pool bytes currently consumed by overflows past guarantees.
    pub fn shared_used(&self) -> u64 {
        self.used
            .iter()
            .zip(&self.guarantees)
            .map(|(&u, &g)| u.saturating_sub(g))
            .sum()
    }

    /// Tries to charge `bytes` to tenant `t`. The portion within the
    /// tenant's remaining guarantee is always granted; any excess must fit
    /// in what is left of the shared pool. All-or-nothing.
    pub fn try_admit(&mut self, t: usize, bytes: u64) -> bool {
        let after = self.used[t] + bytes;
        let overflow_after = after.saturating_sub(self.guarantees[t]);
        let overflow_now = self.used[t].saturating_sub(self.guarantees[t]);
        let shared_after = self.shared_used() - overflow_now + overflow_after;
        if shared_after > self.shared {
            self.counters.denied += 1;
            return false;
        }
        self.used[t] = after;
        self.counters.admitted += 1;
        true
    }

    /// Returns a prior charge. Saturates at zero so a conservative caller
    /// can never underflow the ledger.
    pub fn release(&mut self, t: usize, bytes: u64) {
        self.used[t] = self.used[t].saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(o: &InsertOutcome) -> bool {
        matches!(o, InsertOutcome::Stored { .. })
    }

    #[test]
    fn unlimited_never_evicts() {
        let mut m = MemoryManager::unlimited(2);
        for id in 0..10 {
            let out = m.insert(id, vec![1 << 30, 1 << 30], 0);
            assert!(stored(&out));
            assert!(out.evicted().is_empty());
        }
        assert_eq!(m.counters(), MemCounters::default());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut m = MemoryManager::new(1, Some(100), EvictionPolicy::Lru);
        assert!(stored(&m.insert(1, vec![40], 1)));
        assert!(stored(&m.insert(2, vec![40], 1)));
        m.touch(1); // entry 2 is now least recent
        let out = m.insert(3, vec![40], 1);
        assert!(stored(&out));
        assert_eq!(out.evicted().len(), 1);
        assert_eq!(out.evicted()[0].id, 2);
        assert_eq!(out.evicted()[0].disposition, Disposition::Spilled);
        assert!(m.is_spilled(2));
        assert!(!m.is_spilled(1));
    }

    #[test]
    fn lrc_prefers_zero_ref_victim_and_drops_it() {
        let mut m = MemoryManager::new(1, Some(100), EvictionPolicy::Lrc);
        m.insert(1, vec![40], 3);
        m.insert(2, vec![40], 0);
        m.touch(2); // recency says evict 1; refs say evict 2
        let out = m.insert(3, vec![40], 1);
        assert_eq!(out.evicted()[0].id, 2);
        assert_eq!(out.evicted()[0].disposition, Disposition::Dropped);
        assert!(!m.is_spilled(1), "live-ref entry stays resident");
        assert_eq!(m.counters().evictions, 1);
        assert_eq!(m.counters().spills, 0);
    }

    #[test]
    fn execution_reservation_squeezes_storage() {
        let mut m = MemoryManager::new(1, Some(100), EvictionPolicy::Lrc);
        m.insert(1, vec![60], 1);
        assert!(m.set_execution_reservation(&[30]).is_empty());
        let ev = m.set_execution_reservation(&[70]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].id, 1);
        assert!(m.is_spilled(1));
        assert_eq!(m.storage_used(), &[0]);
    }

    #[test]
    fn oversized_insert_spills_itself() {
        let mut m = MemoryManager::new(2, Some(50), EvictionPolicy::Lrc);
        let out = m.insert(7, vec![60, 10], 2);
        assert!(matches!(out, InsertOutcome::Spilled { .. }));
        assert!(m.is_spilled(7));
        assert_eq!(m.counters().spill_bytes, 70);
        assert_eq!(m.reread(7), 70);
        assert_eq!(m.counters().reread_bytes, 70);
    }

    #[test]
    fn release_unreferenced_sweeps_only_zero_ref() {
        let mut m = MemoryManager::unlimited(1);
        m.insert(1, vec![10], 2);
        m.insert(2, vec![20], 0);
        m.insert(3, vec![30], 1);
        m.set_refs(3, 0);
        let freed = m.release_unreferenced();
        assert_eq!(
            freed,
            vec![(2, vec![20]), (3, vec![30])],
            "id order, zero-ref only"
        );
        assert_eq!(m.storage_used(), &[10]);
        assert_eq!(m.counters().released, 2);
    }

    #[test]
    fn reinsert_replaces_prior_accounting() {
        let mut m = MemoryManager::new(1, Some(100), EvictionPolicy::Lrc);
        m.insert(1, vec![80], 1);
        m.insert(1, vec![40], 1); // recompute shrank it
        assert_eq!(m.storage_used(), &[40]);
    }

    #[test]
    fn ledger_guarantee_is_always_available() {
        let mut l = TenantLedger::new(0, vec![100, 100]);
        assert!(l.try_admit(0, 100));
        assert!(l.try_admit(1, 100), "tenant 1's guarantee is untouchable");
        assert!(!l.try_admit(0, 1), "no shared pool to borrow from");
        assert_eq!(
            l.counters(),
            LedgerCounters {
                admitted: 2,
                denied: 1
            }
        );
    }

    #[test]
    fn ledger_overflow_competes_for_shared_pool() {
        let mut l = TenantLedger::new(50, vec![100, 100]);
        assert!(l.try_admit(0, 140)); // 40 over guarantee, from shared
        assert_eq!(l.shared_used(), 40);
        assert!(!l.try_admit(1, 120), "20 over, only 10 shared left");
        assert!(l.try_admit(1, 110)); // exactly fills the shared pool
        assert_eq!(l.shared_used(), 50);
        l.release(0, 140);
        assert_eq!(l.used(0), 0);
        assert!(l.try_admit(0, 130), "released shared bytes come back");
    }

    #[test]
    fn ledger_release_saturates() {
        let mut l = TenantLedger::new(10, vec![20]);
        assert!(l.try_admit(0, 15));
        l.release(0, 100);
        assert_eq!(l.used(0), 0);
        assert_eq!(l.shared_used(), 0);
    }
}
