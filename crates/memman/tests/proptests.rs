//! Property-based tests for the eviction-policy invariants the engine
//! relies on: the storage region never exceeds its budget, LRC never
//! sacrifices a live-reference partition while a dead one is available,
//! and spill→reread round-trips byte counts exactly.

use memman::{Disposition, EvictionPolicy, InsertOutcome, MemoryManager};
use proptest::prelude::*;

/// Drive a manager through a random op sequence and assert the per-node
/// storage limit is never exceeded by resident bytes.
fn check_budget_respected(policy: EvictionPolicy, budget: u64, ops: &[(u64, u64, usize)]) {
    let nodes = 3;
    let mut m = MemoryManager::new(nodes, Some(budget), policy);
    for (i, &(id, size, refs)) in ops.iter().enumerate() {
        match i % 4 {
            0 | 1 => {
                // Spread bytes over nodes deterministically.
                let mut per_node = vec![0u64; nodes];
                per_node[(id as usize) % nodes] = size;
                per_node[(id as usize + 1) % nodes] = size / 2;
                m.insert(id, per_node, refs);
            }
            2 => m.touch(id),
            _ => {
                let reserve = vec![size % budget.max(1); nodes];
                m.set_execution_reservation(&reserve);
            }
        }
        for n in 0..nodes {
            let limit = m.storage_limit(n).unwrap();
            assert!(
                m.storage_used()[n] <= limit,
                "node {n}: resident {} exceeds storage limit {limit}",
                m.storage_used()[n]
            );
        }
    }
}

proptest! {
    /// Invariant 1: resident storage bytes never exceed the storage
    /// region limit (budget minus execution reservation), under any mix
    /// of inserts, touches, and reservation changes, for both policies.
    #[test]
    fn storage_never_exceeds_budget(
        budget in 1u64..10_000,
        ops in proptest::collection::vec(
            (0u64..16, 0u64..4_000, 0usize..4), 1..40),
    ) {
        check_budget_respected(EvictionPolicy::Lrc, budget, &ops);
        check_budget_respected(EvictionPolicy::Lru, budget, &ops);
    }

    /// Invariant 2: LRC never evicts an entry with live references while
    /// a zero-reference entry is still resident. With a single node every
    /// resident entry is an eligible victim, so within one call the
    /// eviction sequence must be nondecreasing in ref-count, and each
    /// victim's disposition must match its refs (0 → dropped, else
    /// spilled).
    #[test]
    fn lrc_prefers_dead_victims(
        inserts in proptest::collection::vec((1u64..500, 0usize..3), 2..30),
        budget in 200u64..2_000,
    ) {
        let mut m = MemoryManager::new(1, Some(budget), EvictionPolicy::Lrc);
        for (i, &(size, refs)) in inserts.iter().enumerate() {
            let out = m.insert(i as u64, vec![size], refs);
            let evicted = out.evicted();
            for pair in evicted.windows(2) {
                prop_assert!(
                    pair[0].refs <= pair[1].refs,
                    "evicted a live-ref entry (refs {}) before a deader one (refs {})",
                    pair[0].refs, pair[1].refs
                );
            }
            for ev in evicted {
                match ev.disposition {
                    Disposition::Dropped => prop_assert_eq!(ev.refs, 0),
                    Disposition::Spilled => prop_assert!(ev.refs > 0),
                }
            }
        }
    }

    /// Invariant 3: every spilled entry rereads exactly the bytes that
    /// were spilled for it, and the aggregate counters balance.
    #[test]
    fn spill_reread_round_trips_exactly(
        inserts in proptest::collection::vec((1u64..1_000, 1usize..3), 1..25),
        budget in 1u64..800,
    ) {
        let mut m = MemoryManager::new(2, Some(budget), EvictionPolicy::Lrc);
        let mut spilled: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        let mut totals: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        for (i, &(size, refs)) in inserts.iter().enumerate() {
            let id = i as u64;
            let per_node = vec![size, size / 3];
            totals.insert(id, size + size / 3);
            let out = m.insert(id, per_node, refs);
            if matches!(out, InsertOutcome::Spilled { .. }) {
                spilled.insert(id, totals[&id]);
            }
            for ev in out.evicted() {
                if ev.disposition == Disposition::Spilled {
                    spilled.insert(ev.id, totals[&ev.id]);
                }
            }
        }
        let expected_spill_bytes: u64 = spilled.values().sum();
        prop_assert_eq!(m.counters().spill_bytes, expected_spill_bytes);
        let mut reread_total = 0u64;
        for (&id, &bytes) in &spilled {
            prop_assert!(m.is_spilled(id));
            let got = m.reread(id);
            prop_assert_eq!(got, bytes, "reread bytes differ from spilled bytes");
            reread_total += got;
        }
        prop_assert_eq!(m.counters().reread_bytes, reread_total);
        prop_assert_eq!(m.counters().rereads, spilled.len() as u64);
    }
}
