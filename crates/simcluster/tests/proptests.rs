//! Property-based tests for the cluster simulator's scheduling invariants.

use proptest::prelude::*;
use simcluster::{paper_cluster, uniform_cluster, Simulation, TaskSpec};

fn arb_tasks() -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (0.01f64..50.0, 0u64..1_000_000).prop_map(|(cost, mem)| TaskSpec {
            compute_cost: cost,
            memory_bytes: mem,
            ..TaskSpec::default()
        }),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The makespan is bounded below by both the critical task and the
    /// capacity-optimal time, and bounded above by a serial execution on
    /// the fastest node.
    #[test]
    fn makespan_bounds(tasks in arb_tasks()) {
        let spec = paper_cluster();
        let overhead = spec.task_launch_overhead;
        let dispatch = spec.dispatch_interval;
        let fastest: f64 =
            spec.nodes.iter().map(|n| n.speed).fold(0.0, f64::max);
        let slowest: f64 =
            spec.nodes.iter().map(|n| n.speed).fold(f64::INFINITY, f64::min);
        let capacity: f64 = spec.nodes.iter().map(|n| n.cores as f64 * n.speed).sum();

        let mut sim = Simulation::new(spec);
        let timing = sim.run_stage(&tasks);

        let total_work: f64 = tasks.iter().map(|t| t.compute_cost).sum();
        let max_task: f64 =
            tasks.iter().map(|t| t.compute_cost).fold(0.0, f64::max);

        // Lower bounds: critical task on the slowest node it could land on
        // is not guaranteed (it may land on a fast node), so use the
        // fastest-node time; capacity bound always holds.
        prop_assert!(timing.duration() >= max_task / fastest + overhead - 1e-9);
        prop_assert!(timing.duration() >= total_work / capacity - 1e-9);

        // Upper bound: everything serial on the slowest node, plus
        // overheads and dispatch.
        let upper = total_work / slowest
            + tasks.len() as f64 * (overhead + dispatch)
            + 1e-6;
        prop_assert!(timing.duration() <= upper,
            "makespan {} exceeds serial upper bound {}", timing.duration(), upper);
    }

    /// Every task is placed on a valid node, starts after its dispatch
    /// slot, and ends after it starts.
    #[test]
    fn placements_are_well_formed(tasks in arb_tasks()) {
        let spec = uniform_cluster(4, 4, 2.0);
        let nodes = spec.num_nodes();
        let dispatch = spec.dispatch_interval;
        let mut sim = Simulation::new(spec);
        let t0 = sim.clock();
        let timing = sim.run_stage(&tasks);
        for (i, t) in timing.tasks.iter().enumerate() {
            prop_assert!(t.node < nodes);
            prop_assert!(t.end > t.start);
            prop_assert!(t.start >= t0 + i as f64 * dispatch - 1e-12,
                "task {i} started before its dispatch slot");
        }
        prop_assert!((timing.end - timing.tasks.iter().map(|t| t.end).fold(0.0, f64::max)).abs() < 1e-9);
    }

    /// No node ever runs more concurrent tasks than it has cores.
    #[test]
    fn core_capacity_is_never_exceeded(tasks in arb_tasks()) {
        let spec = uniform_cluster(3, 2, 2.0);
        let cores = 2usize;
        let mut sim = Simulation::new(spec);
        let timing = sim.run_stage(&tasks);
        // Check overlap at every task start instant.
        for probe in &timing.tasks {
            for node in 0..3 {
                let concurrent = timing
                    .tasks
                    .iter()
                    .filter(|t| {
                        t.node == node && t.start <= probe.start + 1e-12 && t.end > probe.start + 1e-9
                    })
                    .count();
                prop_assert!(concurrent <= cores,
                    "node {node} ran {concurrent} tasks at t={}", probe.start);
            }
        }
    }

    /// The virtual clock is monotone across stages and equals the last
    /// stage's end.
    #[test]
    fn clock_monotonicity(batches in proptest::collection::vec(arb_tasks(), 1..4)) {
        let mut sim = Simulation::new(uniform_cluster(2, 4, 2.0));
        let mut last_end = 0.0;
        for batch in &batches {
            let timing = sim.run_stage(batch);
            prop_assert!(timing.start >= last_end - 1e-12);
            prop_assert!(timing.end >= timing.start);
            last_end = timing.end;
            prop_assert!((sim.clock() - last_end).abs() < 1e-12);
        }
    }

    /// Identical inputs always produce identical schedules (determinism).
    #[test]
    fn schedules_are_deterministic(tasks in arb_tasks()) {
        let run = || {
            let mut sim = Simulation::new(paper_cluster());
            sim.run_stage(&tasks)
        };
        prop_assert_eq!(run(), run());
    }

    /// A uniformly slower cluster never finishes earlier.
    #[test]
    fn slower_cluster_is_never_faster(tasks in arb_tasks()) {
        let fast = {
            let mut sim = Simulation::new(uniform_cluster(3, 4, 2.5));
            sim.run_stage(&tasks).duration()
        };
        let slow = {
            let mut sim = Simulation::new(uniform_cluster(3, 4, 1.0));
            sim.run_stage(&tasks).duration()
        };
        prop_assert!(slow >= fast - 1e-9, "slow {slow} < fast {fast}");
    }

    /// CPU utilization from the trace never exceeds 100 % and total busy
    /// core-seconds equal the sum of task durations.
    #[test]
    fn trace_accounts_exact_busy_time(tasks in arb_tasks()) {
        let spec = uniform_cluster(2, 8, 2.0);
        let total_cores = spec.total_cores() as f64;
        let mut sim = Simulation::with_trace_bucket(spec, 1.0);
        let timing = sim.run_stage(&tasks);
        let busy_expected: f64 = timing.tasks.iter().map(|t| t.end - t.start).sum();
        let points = sim.trace().points();
        let busy_traced: f64 = points
            .iter()
            .map(|p| p.cpu_pct / 100.0 * total_cores * 1.0)
            .sum();
        prop_assert!((busy_traced - busy_expected).abs() < 1e-6 * busy_expected.max(1.0),
            "traced {busy_traced} vs actual {busy_expected}");
        for p in &points {
            prop_assert!(p.cpu_pct <= 100.0 + 1e-9);
        }
    }
}
