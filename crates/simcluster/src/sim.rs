//! The virtual-time cluster simulator.
//!
//! Tasks are placed with Spark-like FIFO slot scheduling: each node exposes
//! `cores` slots, tasks are assigned in submission order to the slot that
//! frees earliest, with a bounded *locality wait* that lets a task hold out
//! briefly for a node holding its input (Spark's delay scheduling), and hard
//! pins for CHOPPER's co-partition-aware placement. A stage is a barrier:
//! the virtual clock only advances past a stage once its slowest task ends —
//! exactly the straggler semantics that make data skew expensive in the
//! paper.

mod rack;

use crate::spec::{ClusterSpec, NodeId};
use crate::task::TaskSpec;
use crate::trace::UtilTrace;

/// Where and when one task ran.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Node the task executed on.
    pub node: NodeId,
    /// Virtual start time (seconds).
    pub start: f64,
    /// Virtual end time (seconds).
    pub end: f64,
}

impl TaskTiming {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Timing of one simulated stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage start (virtual seconds).
    pub start: f64,
    /// Stage end — when the last task finished (the barrier).
    pub end: f64,
    /// Per-task placements and times, in submission order.
    pub tasks: Vec<TaskTiming>,
}

impl StageTiming {
    /// Stage wall time in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Duration of the slowest task.
    pub fn max_task(&self) -> f64 {
        self.tasks
            .iter()
            .map(TaskTiming::duration)
            .fold(0.0, f64::max)
    }

    /// Mean task duration (0 for an empty stage).
    pub fn mean_task(&self) -> f64 {
        if self.tasks.is_empty() {
            0.0
        } else {
            self.tasks.iter().map(TaskTiming::duration).sum::<f64>() / self.tasks.len() as f64
        }
    }
}

/// Aggregate data-movement counters across the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoStats {
    /// Bytes fetched over the network (remote shuffle reads).
    pub remote_bytes: u64,
    /// Bytes read from node-local storage (input blocks + local shuffle).
    pub local_read_bytes: u64,
    /// Bytes written to node-local storage.
    pub write_bytes: u64,
}

/// A deterministic virtual-time simulation of a [`ClusterSpec`].
pub struct Simulation {
    spec: ClusterSpec,
    clock: f64,
    locality_wait: f64,
    slowdown: Vec<f64>,
    failed: Vec<bool>,
    resident_bytes: Vec<u64>,
    trace: UtilTrace,
    io: IoStats,
    stages_run: usize,
    speculation: Option<f64>,
    net_stats: netsim::NetworkStats,
    events: u64,
}

impl Simulation {
    /// Creates a simulation with 10-second trace buckets (the paper's
    /// figures sample at tens-of-seconds granularity).
    pub fn new(spec: ClusterSpec) -> Self {
        Self::with_trace_bucket(spec, 10.0)
    }

    /// Creates a simulation with an explicit trace bucket width.
    pub fn with_trace_bucket(spec: ClusterSpec, bucket_width: f64) -> Self {
        let n = spec.num_nodes();
        let trace = UtilTrace::new(bucket_width, spec.total_cores(), spec.total_memory());
        Simulation {
            spec,
            clock: 0.0,
            locality_wait: 0.1,
            slowdown: vec![1.0; n],
            failed: vec![false; n],
            resident_bytes: vec![0; n],
            trace,
            io: IoStats::default(),
            stages_run: 0,
            speculation: None,
            net_stats: netsim::NetworkStats::default(),
            events: 0,
        }
    }

    /// Enables Spark-style speculative execution: a task that runs longer
    /// than `multiplier` × the stage's median task duration gets a backup
    /// copy launched on another node once that threshold passes; the
    /// earlier finisher wins. This is the *reactive* straggler mitigation
    /// that CHOPPER's proactive partitioning competes with (cf. the
    /// paper's SkewTune discussion in Related Work).
    ///
    /// The backup's own core occupancy is not re-fed into the schedule —
    /// a deliberate approximation: speculation fires in the stage's tail,
    /// when cores are draining.
    pub fn enable_speculation(&mut self, multiplier: f64) {
        assert!(multiplier > 1.0, "speculation multiplier must exceed 1");
        self.speculation = Some(multiplier);
    }

    /// Disables speculative execution.
    pub fn disable_speculation(&mut self) {
        self.speculation = None;
    }

    /// The cluster description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Current virtual time in seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances the clock by `dt` seconds (driver-side work between stages).
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0, "cannot rewind the clock");
        self.clock += dt;
    }

    /// Injects a persistent slow-down on a node (e.g. 2.0 = half speed).
    pub fn set_slowdown(&mut self, node: NodeId, factor: f64) {
        assert!(factor >= 1.0, "slow-down factor must be >= 1");
        self.slowdown[node] = factor;
    }

    /// Marks a node failed: no further tasks are placed on it.
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed[node] = true;
        assert!(
            self.failed.iter().any(|f| !f),
            "cannot fail the last remaining node"
        );
    }

    /// Brings a failed node back.
    pub fn recover_node(&mut self, node: NodeId) {
        self.failed[node] = false;
    }

    /// Registers `bytes` of cached RDD data resident on `node` (counted in
    /// the memory-utilization trace until released).
    pub fn add_resident(&mut self, node: NodeId, bytes: u64) {
        self.resident_bytes[node] += bytes;
    }

    /// Releases previously registered resident bytes.
    pub fn release_resident(&mut self, node: NodeId, bytes: u64) {
        self.resident_bytes[node] = self.resident_bytes[node].saturating_sub(bytes);
    }

    /// Currently registered resident bytes per node.
    pub fn resident_bytes(&self) -> &[u64] {
        &self.resident_bytes
    }

    /// Charges a driver-coordinated disk transfer of `per_node_bytes`
    /// outside any stage (the engine's cache-spill path): the transfers
    /// run in parallel across nodes, the clock advances by the slowest
    /// one, and each node's bytes feed the disk-transaction trace that
    /// drives Fig. 14.
    pub fn charge_disk_io(&mut self, per_node_bytes: &[u64], write: bool) {
        assert_eq!(per_node_bytes.len(), self.spec.num_nodes());
        let start = self.clock;
        let mut end = start;
        for (n, &bytes) in per_node_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let node_end = start + bytes as f64 / self.spec.nodes[n].disk_bandwidth;
            end = end.max(node_end);
            let txns = (bytes as f64 / self.spec.io_transaction_bytes as f64).ceil();
            self.trace.record_transactions(start, node_end, txns);
            if write {
                self.io.write_bytes += bytes;
            } else {
                self.io.local_read_bytes += bytes;
            }
        }
        self.clock = end;
    }

    /// Cumulative data-movement counters.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Cumulative flow-network counters (all zero in flat mode, which
    /// never builds a flow network).
    pub fn network_stats(&self) -> netsim::NetworkStats {
        self.net_stats
    }

    /// Total discrete events processed across rack-mode stages (stage
    /// dispatch/completion events plus flow completions) — the quantity
    /// the perfgate throughput floor is measured over.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The utilization trace accumulated so far.
    pub fn trace(&self) -> &UtilTrace {
        &self.trace
    }

    /// Runs one stage: places every task, advances the clock to the barrier,
    /// and returns the schedule.
    ///
    /// # Panics
    /// Panics if `tasks` is empty or every node has failed.
    pub fn run_stage(&mut self, tasks: &[TaskSpec]) -> StageTiming {
        assert!(!tasks.is_empty(), "a stage needs at least one task");
        if !self.spec.topology.is_flat() {
            // Rack topologies need the event-driven engine: link
            // contention makes durations placement-dependent. The flat
            // path below stays untouched — and bit-identical.
            return self.run_stage_rack(tasks);
        }
        let stage_start = self.clock;

        // Free-at times for every core slot, grouped by node. All cores are
        // free at the barrier that starts the stage.
        let mut cores: Vec<Vec<f64>> = self
            .spec
            .nodes
            .iter()
            .map(|n| vec![stage_start; n.cores])
            .collect();

        let mut timings = Vec::with_capacity(tasks.len());
        let mut stage_end = stage_start;
        let mut assigned = vec![0usize; self.spec.num_nodes()];
        // Each stage starts its round-robin at a different node: executor
        // resource offers arrive in arbitrary per-stage order in Spark, so
        // two stages' partition placements must not align by accident.
        let salt = self.stages_run % self.spec.num_nodes();
        self.stages_run += 1;

        for (idx, task) in tasks.iter().enumerate() {
            let dispatched = stage_start + idx as f64 * self.spec.dispatch_interval;
            let node = self.choose_node(task, &cores, &assigned, dispatched, salt);
            assigned[node] += 1;
            // Earliest core on the chosen node.
            let (slot, &free) = cores[node]
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
                .expect("nodes have at least one core");
            // The driver ships task descriptors serially; task `idx` cannot
            // launch before its dispatch slot.
            let start = free.max(dispatched);
            let (duration, net_time, remote_bytes, local_bytes) = self.task_duration(task, node);
            let end = start + duration;
            cores[node][slot] = end;
            stage_end = stage_end.max(end);

            // Tracing: CPU + task memory over the span, packets over the
            // fetch window, disk transactions over the whole task.
            self.trace.record_task(start, end, task.memory_bytes);
            if remote_bytes > 0 {
                let packets = (remote_bytes as f64 / self.spec.mtu as f64).ceil();
                // Received and transmitted both count in Fig. 13.
                self.trace
                    .record_packets(start, start + net_time.max(1e-9), 2.0 * packets);
            }
            let io_bytes = local_bytes + task.write_bytes;
            if io_bytes > 0 {
                let txns = (io_bytes as f64 / self.spec.io_transaction_bytes as f64).ceil();
                self.trace.record_transactions(start, end, txns);
            }

            self.io.remote_bytes += remote_bytes;
            self.io.local_read_bytes += local_bytes;
            self.io.write_bytes += task.write_bytes;

            timings.push(TaskTiming { node, start, end });
        }

        // Speculative execution: re-run flagged stragglers elsewhere.
        if let Some(multiplier) = self.speculation {
            stage_end = self.speculate(tasks, &mut timings, &cores, multiplier, stage_end);
        }

        // Resident (cached) memory is charged for the stage's whole span.
        let resident: u64 = self.resident_bytes.iter().sum();
        if resident > 0 && stage_end > stage_start {
            self.trace.record_memory(stage_start, stage_end, resident);
        }

        self.clock = stage_end;
        StageTiming {
            start: stage_start,
            end: stage_end,
            tasks: timings,
        }
    }

    /// Launches backup copies for tasks still running `multiplier` × the
    /// median duration after their start, and returns the new stage end.
    fn speculate(
        &mut self,
        tasks: &[TaskSpec],
        timings: &mut [TaskTiming],
        cores: &[Vec<f64>],
        multiplier: f64,
        stage_end: f64,
    ) -> f64 {
        if timings.len() < 2 {
            return stage_end;
        }
        let mut durations: Vec<f64> = timings.iter().map(TaskTiming::duration).collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mid = durations.len() / 2;
        let median = if durations.len().is_multiple_of(2) {
            0.5 * (durations[mid - 1] + durations[mid])
        } else {
            durations[mid]
        };
        let threshold = multiplier * median;
        if threshold <= 0.0 {
            return stage_end;
        }

        for (task, timing) in tasks.iter().zip(timings.iter_mut()) {
            if timing.duration() <= threshold {
                continue;
            }
            // The driver notices the straggler once it has exceeded the
            // threshold; the backup starts on the earliest core of another
            // live node that is free by then.
            let flagged_at = timing.start + threshold;
            let mut best: Option<(f64, usize)> = None;
            for (node, node_cores) in cores.iter().enumerate() {
                if node == timing.node || self.failed[node] {
                    continue;
                }
                let free = node_cores.iter().copied().fold(f64::INFINITY, f64::min);
                let start = free.max(flagged_at);
                if best.is_none_or(|(bs, _)| start < bs) {
                    best = Some((start, node));
                }
            }
            let Some((backup_start, backup_node)) = best else {
                continue;
            };
            let (backup_dur, _, _, _) = self.task_duration(task, backup_node);
            let backup_end = backup_start + backup_dur;
            if backup_end < timing.end {
                // The backup wins: account for its execution and cut the
                // task's effective completion.
                self.trace
                    .record_task(backup_start, backup_end, task.memory_bytes);
                *timing = TaskTiming {
                    node: backup_node,
                    start: timing.start,
                    end: backup_end,
                };
            }
        }
        timings.iter().map(|t| t.end).fold(0.0, f64::max)
    }

    /// Spark-like placement: earliest-free node, with a bounded wait for a
    /// preferred (data-local) node, and hard pins taking precedence. Among
    /// nodes that could start the task immediately (free core at or before
    /// its dispatch time), the least-loaded one wins — Spark's round-robin
    /// resource offers — instead of always the lowest-numbered node.
    fn choose_node(
        &self,
        task: &TaskSpec,
        cores: &[Vec<f64>],
        assigned: &[usize],
        dispatched: f64,
        salt: usize,
    ) -> NodeId {
        if let Some(pin) = task.pinned_node {
            if !self.failed[pin] {
                return pin;
            }
        }

        let earliest =
            |node: NodeId| -> f64 { cores[node].iter().copied().fold(f64::INFINITY, f64::min) };

        let mut best: Option<(f64, NodeId)> = None;
        let mut best_ready: Option<(f64, NodeId)> = None;
        #[allow(clippy::needless_range_loop)] // indexes three parallel arrays
        for node in 0..self.spec.num_nodes() {
            if self.failed[node] {
                continue;
            }
            let t = earliest(node);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, node));
            }
            if t <= dispatched {
                // Ready now: balance by fraction of this stage's tasks
                // already assigned per core slot; ties rotate with the
                // per-stage salt instead of always favouring node 0.
                let n = self.spec.num_nodes();
                let rotated = (node + n - salt) % n;
                let load = assigned[node] as f64 / self.spec.nodes[node].cores as f64;
                let better = match best_ready {
                    None => true,
                    Some((bl, bn)) => {
                        let brot = (bn + n - salt) % n;
                        load < bl - 1e-12 || (load < bl + 1e-12 && rotated < brot)
                    }
                };
                if better {
                    best_ready = Some((load, node));
                }
            }
        }
        let (best_t, best_node) = match (best_ready, best) {
            (Some((_, n)), _) => (dispatched, n),
            (None, Some(b)) => b,
            (None, None) => unreachable!("at least one live node"),
        };

        // Delay scheduling: take a preferred node if it frees soon enough.
        let mut local_best: Option<(f64, NodeId)> = None;
        for &node in &task.preferred_nodes {
            if node < self.spec.num_nodes() && !self.failed[node] {
                let t = earliest(node);
                if local_best.is_none_or(|(bt, _)| t < bt) {
                    local_best = Some((t, node));
                }
            }
        }
        if let Some((lt, ln)) = local_best {
            if lt <= best_t + self.locality_wait {
                return ln;
            }
        }
        best_node
    }

    /// Returns `(total duration, network time, remote bytes, local read
    /// bytes)` of `task` when run on `node`.
    fn task_duration(&self, task: &TaskSpec, node: NodeId) -> (f64, f64, u64, u64) {
        let n = &self.spec.nodes[node];
        let speed = n.speed / self.slowdown[node];
        let compute = task.compute_cost / speed;

        // Split fetches into local (disk) and remote (network) portions.
        let mut remote_total: u64 = 0;
        let mut per_src_max = 0.0_f64;
        let mut remote_srcs = 0usize;
        let mut local_fetch: u64 = 0;
        for &(src, bytes) in &task.fetches {
            if src == node {
                local_fetch += bytes;
            } else {
                remote_total += bytes;
                remote_srcs += 1;
                let src_bw = self.spec.nodes[src].net_bandwidth;
                per_src_max = per_src_max.max(bytes as f64 / src_bw);
            }
        }
        // Receiver NIC is usually the bottleneck; a single hot sender can
        // also bound the transfer. Fetches from distinct sources overlap,
        // and so do their round trips: the fetcher keeps
        // `max_concurrent_fetches` requests in flight, so latency is paid
        // once per wave of that many sources, not once per source.
        let net_time = if remote_total > 0 {
            let waves = remote_srcs.div_ceil(self.spec.max_concurrent_fetches.max(1));
            (remote_total as f64 / n.net_bandwidth).max(per_src_max) + waves as f64 * n.net_latency
        } else {
            0.0
        };

        // Cold input reads pay disk bandwidth; local shuffle fetches are
        // freshly written map outputs served from the page cache.
        let local_bytes = task.local_read_bytes + local_fetch;
        let disk_time = (task.local_read_bytes + task.write_bytes) as f64 / n.disk_bandwidth
            + local_fetch as f64 / self.spec.cache_bandwidth;
        let chunk_time = task.fetch_chunks as f64 * self.spec.fetch_chunk_overhead;

        let total = self.spec.task_launch_overhead + compute + net_time + disk_time + chunk_time;
        (total, net_time, remote_total, local_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{paper_cluster, uniform_cluster};

    fn two_node_cluster() -> ClusterSpec {
        uniform_cluster(2, 2, 1.0) // 2 nodes x 2 cores, speed 1.0
    }

    #[test]
    fn single_task_duration_includes_overhead() {
        let spec = two_node_cluster();
        let overhead = spec.task_launch_overhead;
        let mut sim = Simulation::new(spec);
        let st = sim.run_stage(&[TaskSpec::compute(10.0)]);
        assert!((st.duration() - (10.0 + overhead)).abs() < 1e-9);
        assert!((sim.clock() - st.end).abs() < 1e-12);
    }

    #[test]
    fn tasks_fill_all_cores_before_queueing() {
        let mut sim = Simulation::new(two_node_cluster());
        // 4 cores total; 4 equal tasks should run in one wave. The last
        // task starts 3 dispatch intervals after the stage opens.
        let tasks = vec![TaskSpec::compute(5.0); 4];
        let st = sim.run_stage(&tasks);
        let overhead = sim.spec().task_launch_overhead;
        let dispatch = sim.spec().dispatch_interval;
        assert!((st.duration() - (5.0 + overhead + 3.0 * dispatch)).abs() < 1e-9);
        // A fifth task forces a second wave.
        let mut sim = Simulation::new(two_node_cluster());
        let tasks = vec![TaskSpec::compute(5.0); 5];
        let st = sim.run_stage(&tasks);
        assert!((st.duration() - 2.0 * (5.0 + overhead)).abs() < 2e-2);
    }

    #[test]
    fn short_tasks_spread_across_nodes() {
        // With dispatch pacing and short tasks, placement must still
        // round-robin across nodes rather than piling onto node 0.
        let mut sim = Simulation::new(two_node_cluster());
        let tasks = vec![TaskSpec::compute(0.001); 40];
        let st = sim.run_stage(&tasks);
        let on_node0 = st.tasks.iter().filter(|t| t.node == 0).count();
        assert!(
            (15..=25).contains(&on_node0),
            "expected balanced spread, node0 got {on_node0}/40"
        );
    }

    #[test]
    fn stage_barrier_waits_for_straggler() {
        let mut sim = Simulation::new(two_node_cluster());
        let mut tasks = vec![TaskSpec::compute(1.0); 3];
        tasks.push(TaskSpec::compute(50.0)); // straggler
        let st = sim.run_stage(&tasks);
        assert!(st.duration() > 50.0);
        assert!(st.max_task() > 25.0 * st.mean_task() / 13.0); // clearly skewed
    }

    #[test]
    fn faster_nodes_finish_sooner() {
        let mut spec = uniform_cluster(2, 1, 1.0);
        spec.nodes[1].speed = 2.0;
        let mut sim = Simulation::new(spec);
        let st = sim.run_stage(&[
            TaskSpec::compute(10.0).pin(0),
            TaskSpec::compute(10.0).pin(1),
        ]);
        assert!(st.tasks[0].duration() > st.tasks[1].duration() * 1.9);
    }

    #[test]
    fn pinning_overrides_load_balance() {
        let mut sim = Simulation::new(two_node_cluster());
        let tasks = vec![
            TaskSpec::compute(1.0).pin(1),
            TaskSpec::compute(1.0).pin(1),
            TaskSpec::compute(1.0).pin(1),
        ];
        let st = sim.run_stage(&tasks);
        assert!(st.tasks.iter().all(|t| t.node == 1));
    }

    #[test]
    fn locality_preference_is_honored_when_cheap() {
        let mut sim = Simulation::new(two_node_cluster());
        let st = sim.run_stage(&[TaskSpec::compute(1.0).prefer(1)]);
        assert_eq!(st.tasks[0].node, 1);
    }

    #[test]
    fn remote_fetch_costs_network_time() {
        let spec = two_node_cluster();
        let bw = spec.nodes[0].net_bandwidth;
        let mut sim = Simulation::new(spec);
        let bytes = (bw * 2.0) as u64; // two seconds of transfer
        let t = TaskSpec {
            compute_cost: 1.0,
            fetches: vec![(1, bytes)],
            ..TaskSpec::default()
        };
        let st = sim.run_stage(&[t.clone().pin(0)]);
        assert!(
            st.duration() > 3.0,
            "1s compute + ~2s network, got {}",
            st.duration()
        );
        assert_eq!(sim.io_stats().remote_bytes, bytes);

        // The same fetch from the task's own node is a (much faster) disk read.
        let mut sim2 = Simulation::new(two_node_cluster());
        let st2 = sim2.run_stage(&[t.pin(1)]);
        assert!(st2.duration() < st.duration());
        assert_eq!(sim2.io_stats().remote_bytes, 0);
        assert_eq!(sim2.io_stats().local_read_bytes, bytes);
    }

    #[test]
    fn fetch_latency_is_charged_per_wave_not_per_source() {
        // A reduce task fetching from many map outputs keeps
        // `max_concurrent_fetches` requests in flight: 23 sources at a
        // concurrency of 5 cost ceil(23/5) = 5 round trips, not 23.
        let spec = uniform_cluster(24, 2, 1.0);
        let latency = spec.nodes[0].net_latency;
        let bw = spec.nodes[0].net_bandwidth;
        let overhead = spec.task_launch_overhead;
        let concurrency = spec.max_concurrent_fetches;
        assert_eq!(concurrency, 5);
        let srcs = 23usize;
        let per_src: u64 = 1_000_000;
        let t = TaskSpec {
            fetches: (1..=srcs).map(|s| (s, per_src)).collect(),
            ..TaskSpec::default()
        };
        let mut sim = Simulation::new(spec);
        let st = sim.run_stage(&[t.pin(0)]);
        let waves = srcs.div_ceil(concurrency); // 5
        let expect = overhead + (srcs as u64 * per_src) as f64 / bw + waves as f64 * latency;
        assert!(
            (st.duration() - expect).abs() < 1e-9,
            "got {}, want {expect} ({waves} latency waves)",
            st.duration()
        );
        // The old per-source charge would be visibly larger.
        let old = overhead + (srcs as u64 * per_src) as f64 / bw + srcs as f64 * latency;
        assert!(st.duration() < old - 10.0 * latency);
    }

    #[test]
    fn failed_node_receives_no_tasks() {
        let mut sim = Simulation::new(two_node_cluster());
        sim.fail_node(0);
        let st = sim.run_stage(&vec![TaskSpec::compute(1.0); 6]);
        assert!(st.tasks.iter().all(|t| t.node == 1));
    }

    #[test]
    fn pinned_task_on_failed_node_falls_back() {
        let mut sim = Simulation::new(two_node_cluster());
        sim.fail_node(1);
        let st = sim.run_stage(&[TaskSpec::compute(1.0).pin(1)]);
        assert_eq!(st.tasks[0].node, 0);
    }

    #[test]
    #[should_panic(expected = "last remaining node")]
    fn cannot_fail_every_node() {
        let mut sim = Simulation::new(two_node_cluster());
        sim.fail_node(0);
        sim.fail_node(1);
    }

    #[test]
    fn slowdown_stretches_tasks() {
        let mut sim = Simulation::new(two_node_cluster());
        sim.set_slowdown(0, 4.0);
        let st = sim.run_stage(&[TaskSpec::compute(8.0).pin(0)]);
        assert!(st.duration() > 32.0, "8 units at quarter speed");
    }

    #[test]
    fn clock_accumulates_across_stages() {
        let mut sim = Simulation::new(two_node_cluster());
        let s1 = sim.run_stage(&[TaskSpec::compute(2.0)]);
        sim.advance(1.0);
        let s2 = sim.run_stage(&[TaskSpec::compute(2.0)]);
        assert!(s2.start >= s1.end + 1.0 - 1e-12);
    }

    #[test]
    fn paper_cluster_heterogeneity_creates_imbalance() {
        // With one task per core, the 2.0 GHz nodes finish later than the
        // 2.3 GHz ones.
        let mut sim = Simulation::new(paper_cluster());
        let tasks = vec![TaskSpec::compute(100.0); 112];
        let st = sim.run_stage(&tasks);
        let slow = st
            .tasks
            .iter()
            .filter(|t| t.node <= 2)
            .map(TaskTiming::duration)
            .fold(0.0, f64::max);
        let fast = st
            .tasks
            .iter()
            .filter(|t| t.node >= 3)
            .map(TaskTiming::duration)
            .fold(0.0, f64::max);
        assert!(slow > fast, "AMD nodes are slower per core");
    }

    #[test]
    fn trace_records_cpu_activity() {
        let mut sim = Simulation::with_trace_bucket(two_node_cluster(), 1.0);
        sim.run_stage(&vec![TaskSpec::compute(2.0); 4]);
        let pts = sim.trace().points();
        assert!(!pts.is_empty());
        assert!(pts[0].cpu_pct > 90.0, "all four cores busy in bucket 0");
    }

    #[test]
    fn resident_memory_shows_in_trace() {
        let mut sim = Simulation::with_trace_bucket(two_node_cluster(), 1.0);
        let total_mem = sim.spec().total_memory();
        sim.add_resident(0, total_mem / 2);
        sim.run_stage(&[TaskSpec::compute(2.0)]);
        let pts = sim.trace().points();
        assert!(pts[0].mem_pct > 45.0, "half the cluster memory is cached");
        sim.release_resident(0, total_mem / 2);
    }

    #[test]
    fn more_tasks_mean_more_overhead() {
        // Same total work split into many tiny tasks takes longer in
        // aggregate because of the per-task launch overhead — the effect
        // behind the "too many partitions" regime of Fig. 3.
        let total_work = 100.0;
        let run = |num_tasks: usize| {
            let mut sim = Simulation::new(uniform_cluster(1, 4, 1.0));
            let tasks = vec![TaskSpec::compute(total_work / num_tasks as f64); num_tasks];
            sim.run_stage(&tasks).duration()
        };
        assert!(run(4000) > run(40));
    }

    #[test]
    fn speculation_rescues_a_slow_node_straggler() {
        // One node is 10x degraded; a task landing there straggles. With
        // speculation, a backup on a healthy node cuts the stage short.
        let run = |speculate: bool| {
            let mut sim = Simulation::new(two_node_cluster());
            sim.set_slowdown(0, 10.0);
            if speculate {
                sim.enable_speculation(1.5);
            }
            // Enough tasks that node 0 receives some.
            let tasks = vec![TaskSpec::compute(10.0); 4];
            sim.run_stage(&tasks).duration()
        };
        let plain = run(false);
        let rescued = run(true);
        // The backup can only start once the straggler is *detected*
        // (threshold × median into its run), so the saving is the tail
        // beyond detection plus the healthy re-run — not the whole task.
        assert!(
            rescued < plain - 5.0,
            "speculation should cut the straggler: {rescued} vs {plain}"
        );
    }

    #[test]
    fn speculation_never_slows_a_balanced_stage() {
        let run = |speculate: bool| {
            let mut sim = Simulation::new(two_node_cluster());
            if speculate {
                sim.enable_speculation(1.5);
            }
            sim.run_stage(&vec![TaskSpec::compute(5.0); 4]).duration()
        };
        assert!(
            (run(true) - run(false)).abs() < 1e-12,
            "no stragglers, no change"
        );
    }

    #[test]
    fn speculation_cannot_help_inherently_big_tasks_much() {
        // A task that is big because its *partition* is big is just as big
        // on the backup node — the paper's argument for fixing partitioning
        // proactively instead of reacting.
        let mut sim = Simulation::new(two_node_cluster());
        sim.enable_speculation(1.5);
        let mut tasks = vec![TaskSpec::compute(1.0); 3];
        tasks.push(TaskSpec::compute(50.0)); // a genuinely fat partition
        let st = sim.run_stage(&tasks);
        assert!(
            st.duration() > 50.0,
            "the fat partition still defines the barrier"
        );
    }

    #[test]
    #[should_panic(expected = "multiplier must exceed 1")]
    fn speculation_rejects_bad_multiplier() {
        let mut sim = Simulation::new(two_node_cluster());
        sim.enable_speculation(1.0);
    }

    #[test]
    fn determinism_identical_runs_identical_schedules() {
        let mk = || {
            let mut sim = Simulation::new(paper_cluster());
            let tasks: Vec<TaskSpec> = (0..300)
                .map(|i| TaskSpec::compute(1.0 + (i % 7) as f64))
                .collect();
            sim.run_stage(&tasks)
        };
        assert_eq!(mk(), mk());
    }
}
