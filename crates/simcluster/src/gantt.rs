//! ASCII Gantt rendering of stage schedules.
//!
//! Turns a [`StageTiming`] into a per-node timeline so
//! load imbalance, stragglers, dispatch pacing, and co-partition pinning
//! are visible at a glance:
//!
//! ```text
//! t=0.0s .. 12.4s (124 cols, '·' idle)
//! A [############################################······] 42 tasks
//! B [#############################################·····] 44 tasks
//! D [##################################################] 12 tasks  ← straggler
//! ```
//!
//! Rendering aggregates each node's busy *core-seconds* per column, so a
//! node is `#` when all its cores are busy, mid-shade when partially busy,
//! and `·` when idle.

use crate::spec::ClusterSpec;
use crate::StageTiming;

/// Shade ramp from idle to fully busy.
const SHADES: [char; 5] = ['·', '░', '▒', '▓', '█'];

/// Renders a stage schedule as one timeline row per node.
///
/// `width` is the number of time columns (the stage span is divided
/// evenly). Returns a multi-line string; the slowest node is marked.
pub fn render(spec: &ClusterSpec, timing: &StageTiming, width: usize) -> String {
    assert!(width > 0, "need at least one column");
    let span = (timing.end - timing.start).max(1e-12);
    let col_w = span / width as f64;

    // Busy core-seconds per (node, column).
    let mut busy = vec![vec![0.0f64; width]; spec.num_nodes()];
    let mut counts = vec![0usize; spec.num_nodes()];
    let mut last_end = vec![0.0f64; spec.num_nodes()];
    for t in &timing.tasks {
        counts[t.node] += 1;
        last_end[t.node] = last_end[t.node].max(t.end);
        let s = t.start - timing.start;
        let e = t.end - timing.start;
        let first = ((s / col_w) as usize).min(width - 1);
        let last = ((e / col_w) as usize).min(width - 1);
        for (c, slot) in busy[t.node]
            .iter_mut()
            .enumerate()
            .take(last + 1)
            .skip(first)
        {
            let c_start = c as f64 * col_w;
            let c_end = c_start + col_w;
            let overlap = (e.min(c_end) - s.max(c_start)).max(0.0);
            *slot += overlap;
        }
    }

    let straggler = last_end
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(n, _)| n);

    let name_w = spec.nodes.iter().map(|n| n.name.len()).max().unwrap_or(1);
    let mut out = format!(
        "t={:.2}s .. {:.2}s ({} tasks, column = {:.3}s)\n",
        timing.start,
        timing.end,
        timing.tasks.len(),
        col_w
    );
    for (n, node) in spec.nodes.iter().enumerate() {
        let cores = node.cores as f64;
        let row: String = busy[n]
            .iter()
            .map(|&b| {
                let frac = (b / (cores * col_w)).clamp(0.0, 1.0);
                SHADES[(frac * (SHADES.len() - 1) as f64).round() as usize]
            })
            .collect();
        let marker = if Some(n) == straggler && spec.num_nodes() > 1 {
            "  <- last to finish"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:>name_w$} [{row}] {} tasks{marker}\n",
            node.name, counts[n],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::uniform_cluster;
    use crate::{Simulation, TaskSpec};

    fn run(tasks: Vec<TaskSpec>) -> (ClusterSpec, StageTiming) {
        let spec = uniform_cluster(2, 2, 1.0);
        let mut sim = Simulation::new(spec.clone());
        let timing = sim.run_stage(&tasks);
        (spec, timing)
    }

    #[test]
    fn renders_one_row_per_node() {
        let (spec, timing) = run(vec![TaskSpec::compute(2.0); 4]);
        let g = render(&spec, &timing, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 nodes");
        assert!(lines[0].contains("4 tasks"));
        assert!(lines[1].starts_with("n0 ["));
        assert!(lines[2].starts_with("n1 ["));
    }

    #[test]
    fn busy_nodes_show_full_shade() {
        let (spec, timing) = run(vec![TaskSpec::compute(5.0); 4]);
        let g = render(&spec, &timing, 20);
        // All cores busy nearly the whole span → mostly full blocks.
        let fulls = g.chars().filter(|&c| c == '█').count();
        assert!(fulls > 20, "expected mostly-busy timeline, got:\n{g}");
    }

    #[test]
    fn idle_node_is_dotted() {
        // Pin everything to node 0; node 1 stays idle.
        let tasks: Vec<TaskSpec> = (0..4).map(|_| TaskSpec::compute(2.0).pin(0)).collect();
        let (spec, timing) = run(tasks);
        let g = render(&spec, &timing, 30);
        let node1_line = g.lines().nth(2).expect("node 1 row");
        assert!(node1_line.contains("0 tasks"));
        let dots = node1_line.chars().filter(|&c| c == '·').count();
        assert_eq!(dots, 30, "idle node should be all idle marks:\n{g}");
    }

    #[test]
    fn straggler_is_marked() {
        let mut tasks = vec![TaskSpec::compute(1.0).pin(0); 2];
        tasks.push(TaskSpec::compute(20.0).pin(1));
        let (spec, timing) = run(tasks);
        let g = render(&spec, &timing, 20);
        let node1_line = g.lines().nth(2).expect("node 1 row");
        assert!(node1_line.contains("last to finish"), "{g}");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_width_panics() {
        let (spec, timing) = run(vec![TaskSpec::compute(1.0)]);
        let _ = render(&spec, &timing, 0);
    }
}
