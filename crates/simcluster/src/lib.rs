//! Deterministic discrete-event simulation of a heterogeneous compute
//! cluster.
//!
//! The CHOPPER paper evaluates on a 6-node heterogeneous cluster (three
//! 32-core AMD nodes on 10 GbE, two 8-core Intel nodes on 1 GbE, plus a
//! master). This crate reproduces that testbed — and arbitrary other
//! topologies — as a virtual-time simulator:
//!
//! * [`spec`] — node and cluster descriptions plus the paper's testbed as a
//!   ready-made preset ([`spec::paper_cluster`]),
//! * [`task`] — the task cost descriptor the engine submits (compute units,
//!   local input bytes, per-source shuffle fetches, output bytes, locality
//!   preferences and co-partition pins),
//! * [`sim`] — the simulator proper: per-core list scheduling with stage
//!   barriers, Spark-like FIFO slot assignment with locality preference,
//!   virtual clock, failure/slow-down injection,
//! * [`trace`] — bucketed utilization time series (CPU %, memory %,
//!   packets/s, disk transactions/s) backing the paper's Figures 11–14.
//!
//! Everything is deterministic: identical inputs produce identical schedules
//! and identical traces, which makes every experiment in the reproduction
//! exactly repeatable.

pub mod gantt;
pub mod perfetto;
pub mod sim;
pub mod spec;
pub mod task;
pub mod trace;

pub use gantt::render as render_gantt;
pub use netsim::{Topology, TopologyParseError};
pub use perfetto::emit_stage_trace;
pub use sim::{Simulation, StageTiming, TaskTiming};
pub use spec::{paper_cluster, uniform_cluster, ClusterSpec, NodeId, NodeSpec};
pub use task::TaskSpec;
pub use trace::{TracePoint, UtilTrace};
