//! Bucketed cluster-utilization time series (paper Figures 11–14).
//!
//! The paper reports, at fixed timestamps, the cluster-average CPU
//! utilization, memory utilization, packets transmitted+received per second,
//! and disk transactions per second. The simulator attributes every task's
//! resource usage to virtual-time buckets here, and the bench harness prints
//! the resulting series.

/// One row of the utilization report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Bucket start time in virtual seconds.
    pub time: f64,
    /// Cluster-average CPU utilization in percent (0–100).
    pub cpu_pct: f64,
    /// Cluster-average memory utilization in percent (0–100).
    pub mem_pct: f64,
    /// Total packets transmitted + received per second.
    pub packets_per_sec: f64,
    /// Total disk read + write transactions per second.
    pub transactions_per_sec: f64,
}

/// Accumulates resource usage into fixed-width virtual-time buckets.
#[derive(Debug, Clone)]
pub struct UtilTrace {
    bucket_width: f64,
    total_cores: f64,
    total_memory: f64,
    cpu_busy: Vec<f64>,      // core-seconds per bucket
    mem_byte_secs: Vec<f64>, // byte-seconds per bucket
    packets: Vec<f64>,       // packets per bucket
    transactions: Vec<f64>,  // disk transactions per bucket
}

impl UtilTrace {
    /// Creates a trace for a cluster with the given totals.
    ///
    /// # Panics
    /// Panics if `bucket_width`, `total_cores` or `total_memory` are not
    /// positive.
    pub fn new(bucket_width: f64, total_cores: usize, total_memory: u64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(
            total_cores > 0 && total_memory > 0,
            "cluster totals must be positive"
        );
        UtilTrace {
            bucket_width,
            total_cores: total_cores as f64,
            total_memory: total_memory as f64,
            cpu_busy: Vec::new(),
            mem_byte_secs: Vec::new(),
            packets: Vec::new(),
            transactions: Vec::new(),
        }
    }

    fn bucket_of(&self, t: f64) -> usize {
        (t / self.bucket_width) as usize
    }

    fn ensure(&mut self, bucket: usize) {
        let need = bucket + 1;
        if self.cpu_busy.len() < need {
            self.cpu_busy.resize(need, 0.0);
            self.mem_byte_secs.resize(need, 0.0);
            self.packets.resize(need, 0.0);
            self.transactions.resize(need, 0.0);
        }
    }

    /// Spreads `amount` over `[start, end)` proportionally into buckets,
    /// applying `f` to each `(bucket, share)`.
    fn spread(&mut self, start: f64, end: f64, mut add: impl FnMut(&mut Self, usize, f64)) {
        debug_assert!(end >= start, "interval must be ordered: {start}..{end}");
        if end <= start {
            // Instantaneous event: charge the full share to one bucket.
            let b = self.bucket_of(start);
            self.ensure(b);
            add(self, b, 1.0);
            return;
        }
        let total = end - start;
        let first = self.bucket_of(start);
        let last = self.bucket_of(end - 1e-12);
        self.ensure(last);
        for b in first..=last {
            let b_start = b as f64 * self.bucket_width;
            let b_end = b_start + self.bucket_width;
            let overlap = (end.min(b_end) - start.max(b_start)).max(0.0);
            add(self, b, overlap / total);
        }
    }

    /// Records a task occupying one core and `memory_bytes` of memory over
    /// `[start, end)` of virtual time.
    pub fn record_task(&mut self, start: f64, end: f64, memory_bytes: u64) {
        if end <= start {
            return;
        }
        let busy = end - start;
        let mem = memory_bytes as f64 * busy;
        self.spread(start, end, |tr, b, share| {
            tr.cpu_busy[b] += busy * share;
            tr.mem_byte_secs[b] += mem * share;
        });
    }

    /// Records `bytes` of memory held resident over `[start, end)` without
    /// any CPU usage (cached RDD partitions).
    pub fn record_memory(&mut self, start: f64, end: f64, bytes: u64) {
        if end <= start || bytes == 0 {
            return;
        }
        let mem = bytes as f64 * (end - start);
        self.spread(start, end, |tr, b, share| {
            tr.mem_byte_secs[b] += mem * share
        });
    }

    /// Records a network transfer of `packets` packets over `[start, end)`.
    pub fn record_packets(&mut self, start: f64, end: f64, packets: f64) {
        if packets <= 0.0 {
            return;
        }
        self.spread(start, end, |tr, b, share| tr.packets[b] += packets * share);
    }

    /// Records `transactions` disk transactions over `[start, end)`.
    pub fn record_transactions(&mut self, start: f64, end: f64, transactions: f64) {
        if transactions <= 0.0 {
            return;
        }
        self.spread(start, end, |tr, b, share| {
            tr.transactions[b] += transactions * share
        });
    }

    /// Renders the accumulated usage as one row per bucket.
    pub fn points(&self) -> Vec<TracePoint> {
        (0..self.cpu_busy.len())
            .map(|b| TracePoint {
                time: b as f64 * self.bucket_width,
                cpu_pct: 100.0 * self.cpu_busy[b] / (self.total_cores * self.bucket_width),
                mem_pct: 100.0 * self.mem_byte_secs[b] / (self.total_memory * self.bucket_width),
                packets_per_sec: self.packets[b] / self.bucket_width,
                transactions_per_sec: self.transactions[b] / self.bucket_width,
            })
            .collect()
    }

    /// The bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> UtilTrace {
        // 10 cores, 1000 bytes of memory, 1-second buckets.
        UtilTrace::new(1.0, 10, 1000)
    }

    #[test]
    fn single_task_fills_expected_buckets() {
        let mut t = trace();
        t.record_task(0.0, 2.0, 500);
        let pts = t.points();
        assert_eq!(pts.len(), 2);
        // One core of ten busy for the full bucket = 10 %.
        assert!((pts[0].cpu_pct - 10.0).abs() < 1e-9);
        assert!((pts[1].cpu_pct - 10.0).abs() < 1e-9);
        // 500 of 1000 bytes resident = 50 %.
        assert!((pts[0].mem_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn partial_bucket_overlap_is_proportional() {
        let mut t = trace();
        t.record_task(0.5, 1.5, 0);
        let pts = t.points();
        assert!(
            (pts[0].cpu_pct - 5.0).abs() < 1e-9,
            "half a core-second in bucket 0"
        );
        assert!((pts[1].cpu_pct - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_never_exceeds_100_when_fully_loaded() {
        let mut t = trace();
        for _ in 0..10 {
            t.record_task(0.0, 1.0, 0);
        }
        assert!((t.points()[0].cpu_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn packets_and_transactions_are_rates() {
        let mut t = trace();
        t.record_packets(0.0, 2.0, 3000.0);
        t.record_transactions(1.0, 2.0, 50.0);
        let pts = t.points();
        assert!((pts[0].packets_per_sec - 1500.0).abs() < 1e-9);
        assert!((pts[1].packets_per_sec - 1500.0).abs() < 1e-9);
        assert_eq!(pts[0].transactions_per_sec, 0.0);
        assert!((pts[1].transactions_per_sec - 50.0).abs() < 1e-9);
    }

    #[test]
    fn instantaneous_event_lands_in_one_bucket() {
        let mut t = trace();
        t.record_packets(3.25, 3.25, 10.0);
        let pts = t.points();
        assert_eq!(pts.len(), 4);
        assert!((pts[3].packets_per_sec - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_points() {
        assert!(trace().points().is_empty());
    }

    #[test]
    fn zero_length_task_ignored() {
        let mut t = trace();
        t.record_task(1.0, 1.0, 100);
        assert!(t.points().is_empty());
    }

    #[test]
    fn mass_is_conserved_across_buckets() {
        let mut t = trace();
        t.record_packets(0.3, 7.7, 1234.0);
        let total: f64 = t.points().iter().map(|p| p.packets_per_sec * 1.0).sum();
        assert!((total - 1234.0).abs() < 1e-6);
    }
}
