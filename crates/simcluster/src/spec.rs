//! Cluster topology descriptions.

use netsim::Topology;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`ClusterSpec`].
pub type NodeId = usize;

/// Description of a single worker node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable name ("A".."F" for the paper cluster).
    pub name: String,
    /// Number of executor core slots (tasks that can run concurrently).
    pub cores: usize,
    /// Relative per-core speed; compute cost units are divided by this.
    /// The paper cluster uses the clock frequency in GHz.
    pub speed: f64,
    /// Executor memory in bytes (paper: 40 GB per executor).
    pub memory_bytes: u64,
    /// NIC bandwidth in bytes/second.
    pub net_bandwidth: f64,
    /// One-way network latency to any other node, in seconds.
    pub net_latency: f64,
    /// Local disk bandwidth in bytes/second (HDFS reads, shuffle spills).
    pub disk_bandwidth: f64,
}

impl NodeSpec {
    /// Convenience constructor with the defaults shared by all presets.
    pub fn new(name: &str, cores: usize, speed_ghz: f64, mem_gb: u64, net_gbps: f64) -> Self {
        NodeSpec {
            name: name.to_string(),
            cores,
            speed: speed_ghz,
            memory_bytes: mem_gb * GB,
            net_bandwidth: net_gbps * 1e9 / 8.0,
            net_latency: 100e-6,
            disk_bandwidth: 200e6,
        }
    }
}

const GB: u64 = 1024 * 1024 * 1024;

/// A whole cluster: an ordered list of worker nodes.
///
/// The master node is not modeled explicitly — driver-side overheads are
/// charged through [`crate::Simulation::advance`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Worker nodes; `NodeId` indexes into this vector.
    pub nodes: Vec<NodeSpec>,
    /// Fixed per-task launch overhead in seconds (scheduling +
    /// serialization). This is the term that makes "too many partitions"
    /// expensive.
    pub task_launch_overhead: f64,
    /// Network MTU in bytes, used to convert transferred bytes into the
    /// packet counts of Fig. 13.
    pub mtu: u64,
    /// Storage block size in bytes, used to convert I/O volume into the disk
    /// transaction counts of Fig. 14.
    pub io_transaction_bytes: u64,
    /// Bandwidth of node-local shuffle reads in bytes/second. Map outputs
    /// are freshly written and served from the OS page cache, so this is
    /// much higher than cold-disk bandwidth — it is what makes co-located
    /// (co-partitioned) shuffle reads cheaper than any network fetch.
    pub cache_bandwidth: f64,
    /// Fixed cost per fetched map-output chunk, in seconds. A reduce task
    /// fetches one chunk per map task, so this term grows with the
    /// *producer* stage's partition count — the mechanism that makes very
    /// large partition counts expensive (the paper's 2000-partition case).
    pub fetch_chunk_overhead: f64,
    /// Serial driver dispatch interval, in seconds: task `i` of a stage
    /// cannot launch before `stage_start + i × dispatch_interval`, because
    /// the driver serializes and ships task descriptors one at a time.
    /// This is the second mechanism behind the 2000-partition blowup —
    /// with thousands of short tasks, the driver becomes the bottleneck.
    pub dispatch_interval: f64,
    /// Network topology. [`Topology::Flat`] (the default) reproduces the
    /// historical closed-form network model bit-for-bit; a rack topology
    /// switches shuffle fetches and replica transfers to flow-level
    /// simulation with contended ToR uplinks.
    #[serde(default)]
    pub topology: Topology,
    /// How many map outputs a reduce task fetches concurrently (Spark's
    /// five parallel fetch requests). Round-trip latency is charged once
    /// per *wave* of this many sources, not once per source.
    #[serde(default = "default_max_concurrent_fetches")]
    pub max_concurrent_fetches: usize,
}

fn default_max_concurrent_fetches() -> usize {
    5
}

impl ClusterSpec {
    /// Builds a spec from nodes with default overhead constants.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one worker");
        ClusterSpec {
            nodes,
            task_launch_overhead: 0.015,
            mtu: 1500,
            io_transaction_bytes: 64 * 1024,
            cache_bandwidth: 4e9,
            fetch_chunk_overhead: 1e-3,
            dispatch_interval: 8e-3,
            topology: Topology::Flat,
            max_concurrent_fetches: default_max_concurrent_fetches(),
        }
    }

    /// Replaces the topology, validating that the rack grid is big enough
    /// for the node count.
    ///
    /// # Panics
    /// Panics when the grid has fewer slots than the cluster has nodes.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert!(
            topology.covers(self.nodes.len()),
            "topology {topology} has no room for {} nodes",
            self.nodes.len()
        );
        self.topology = topology;
        self
    }

    /// Total executor core slots across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Total executor memory across the cluster.
    pub fn total_memory(&self) -> u64 {
        self.nodes.iter().map(|n| n.memory_bytes).sum()
    }

    /// Number of worker nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// The rack a node lives in (always 0 when flat).
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.topology.rack_of(node)
    }

    /// The bandwidth a shuffle fetch can realistically count on: the
    /// slowest NIC in the cluster, degraded by the topology's
    /// oversubscription for cross-rack traffic. This is what the optimizer
    /// uses to judge whether a stage's shuffle volume is significant
    /// (Eq. 3's `s/bw/t0` term).
    pub fn effective_shuffle_bandwidth(&self) -> f64 {
        let min_nic = self
            .nodes
            .iter()
            .map(|n| n.net_bandwidth)
            .fold(f64::INFINITY, f64::min);
        self.topology.cross_rack_bandwidth(min_nic)
    }
}

/// The CLUSTER'16 paper testbed (Section II-B):
///
/// * nodes A, B, C — 32 cores @ 2.0 GHz AMD, 64 GB, 10 Gbps Ethernet,
/// * nodes D, E — 8 cores @ 2.3 GHz Intel, 48 GB, 1 Gbps Ethernet,
/// * node F (8 cores @ 2.5 GHz, 64 GB, 1 Gbps) is the master and hosts no
///   executor, so it is not part of the worker list.
///
/// Every worker runs one executor with 40 GB of memory, as in the paper.
pub fn paper_cluster() -> ClusterSpec {
    let exec_mem = 40; // GB, per executor
    ClusterSpec::new(vec![
        NodeSpec::new("A", 32, 2.0, exec_mem, 10.0),
        NodeSpec::new("B", 32, 2.0, exec_mem, 10.0),
        NodeSpec::new("C", 32, 2.0, exec_mem, 10.0),
        NodeSpec::new("D", 8, 2.3, exec_mem, 1.0),
        NodeSpec::new("E", 8, 2.3, exec_mem, 1.0),
    ])
}

/// A homogeneous cluster, handy for tests and ablations.
pub fn uniform_cluster(nodes: usize, cores: usize, speed_ghz: f64) -> ClusterSpec {
    assert!(nodes > 0, "need at least one node");
    ClusterSpec::new(
        (0..nodes)
            .map(|i| NodeSpec::new(&format!("n{i}"), cores, speed_ghz, 40, 10.0))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_section_2b() {
        let c = paper_cluster();
        assert_eq!(c.num_nodes(), 5, "five workers: A-E");
        assert_eq!(c.total_cores(), 3 * 32 + 2 * 8);
        assert_eq!(c.nodes[0].speed, 2.0);
        assert_eq!(c.nodes[3].speed, 2.3);
        // 10 GbE vs 1 GbE split
        assert!(c.nodes[0].net_bandwidth > 9.0 * c.nodes[4].net_bandwidth);
        assert_eq!(c.node_by_name("D"), Some(3));
        assert_eq!(c.node_by_name("F"), None, "master hosts no executor");
    }

    #[test]
    fn uniform_cluster_shape() {
        let c = uniform_cluster(4, 8, 2.5);
        assert_eq!(c.total_cores(), 32);
        assert!(c.nodes.iter().all(|n| n.speed == 2.5));
    }

    #[test]
    fn executor_memory_is_40gb() {
        let c = paper_cluster();
        assert!(c
            .nodes
            .iter()
            .all(|n| n.memory_bytes == 40 * 1024 * 1024 * 1024));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::new(vec![]);
    }

    #[test]
    fn spec_roundtrips_through_serde() {
        let c = paper_cluster();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn rack_spec_roundtrips_through_serde() {
        let c = uniform_cluster(6, 4, 2.0).with_topology(Topology::Rack {
            racks: 3,
            hosts: 2,
            oversub: 4.0,
        });
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.rack_of(0), 0);
        assert_eq!(back.rack_of(5), 2);
    }

    #[test]
    fn topology_defaults_to_flat_in_old_specs() {
        // A spec serialized before the topology field existed must load
        // as flat with the standard fetch concurrency.
        let c = paper_cluster();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json
            .replace("\"topology\":\"flat\",", "")
            .replace(",\"topology\":\"flat\"", "")
            .replace("\"max_concurrent_fetches\":5,", "")
            .replace(",\"max_concurrent_fetches\":5", "");
        assert_ne!(stripped, json, "fields were present to strip");
        let back: ClusterSpec = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, c);
        assert!(back.topology.is_flat());
        assert_eq!(back.max_concurrent_fetches, 5);
    }

    #[test]
    #[should_panic(expected = "no room")]
    fn undersized_rack_grid_rejected() {
        let _ = uniform_cluster(6, 4, 2.0).with_topology(Topology::Rack {
            racks: 2,
            hosts: 2,
            oversub: 1.0,
        });
    }

    #[test]
    fn effective_shuffle_bandwidth_reflects_oversubscription() {
        let flat = uniform_cluster(4, 4, 2.0);
        let nic = flat.nodes[0].net_bandwidth;
        assert_eq!(flat.effective_shuffle_bandwidth(), nic);
        // The paper cluster's slowest NIC (1 GbE) is the binding one.
        let paper = paper_cluster();
        assert_eq!(paper.effective_shuffle_bandwidth(), 1e9 / 8.0);
        let racked = uniform_cluster(4, 4, 2.0).with_topology(Topology::Rack {
            racks: 2,
            hosts: 2,
            oversub: 4.0,
        });
        assert_eq!(racked.effective_shuffle_bandwidth(), nic / 4.0);
    }
}
