//! Emits a stage schedule into a [`TraceSink`](::trace::TraceSink) as
//! per-core-lane Perfetto tracks.
//!
//! This is the structured sibling of [`gantt`](crate::gantt): instead of
//! shading ASCII columns it assigns every task a *lane* on its node and
//! records one complete span per task, so Perfetto shows the same
//! timeline the ASCII Gantt approximates.
//!
//! Lane assignment is deterministic: tasks are processed in ascending
//! `(start, submission index)` order and each takes the first lane on its
//! node that is free at its start time. Because the simulator schedules
//! per core, a node never needs more lanes than it has cores. Identical
//! inputs therefore produce identical tracks — which is what lets the
//! determinism suite byte-compare exported traces.

use crate::spec::ClusterSpec;
use crate::StageTiming;
use ::trace::{pids, Clock, TraceSink, Track};

/// Emits one span per task onto per-node-core lanes of the
/// [`pids::CLUSTER`] process. `stage_label` prefixes task names
/// (`"{stage_label}.t{i}"`); `stage_id` is attached as an arg.
///
/// No-op when the sink is disabled.
pub fn emit_stage_trace(
    sink: &TraceSink,
    spec: &ClusterSpec,
    timing: &StageTiming,
    stage_label: &str,
    stage_id: usize,
) {
    if !sink.is_enabled() {
        return;
    }
    sink.name_process(pids::CLUSTER, "cluster (virtual time)");

    // Global tid base per node: lanes of node n live at
    // [base[n], base[n] + cores[n]).
    let mut base = Vec::with_capacity(spec.num_nodes());
    let mut acc = 0u32;
    for node in &spec.nodes {
        base.push(acc);
        acc += node.cores as u32;
    }

    // First free lane per node at each task's start, in (start, index)
    // order — ties broken by submission order, so assignment is total.
    let mut order: Vec<usize> = (0..timing.tasks.len()).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (&timing.tasks[a], &timing.tasks[b]);
        ta.start
            .partial_cmp(&tb.start)
            .expect("finite")
            .then(a.cmp(&b))
    });
    let mut lane_end: Vec<Vec<f64>> = spec.nodes.iter().map(|n| vec![0.0; n.cores]).collect();

    for &i in &order {
        let t = &timing.tasks[i];
        let lanes = &mut lane_end[t.node];
        let lane = lanes
            .iter()
            .position(|&end| end <= t.start)
            .unwrap_or_else(|| {
                // Overlap beyond core count (defensive: shouldn't happen
                // with per-core scheduling) — reuse the earliest lane.
                lanes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(l, _)| l)
                    .unwrap_or(0)
            });
        lanes[lane] = t.end;

        let track = Track::new(pids::CLUSTER, base[t.node] + lane as u32);
        if !sink.has_thread_name(track) {
            sink.name_thread(track, &format!("{}.c{}", spec.nodes[t.node].name, lane));
        }
        sink.span(
            Clock::Virtual,
            track,
            format!("{stage_label}.t{i}"),
            "task",
            t.start,
            t.end,
            vec![
                ("stage", stage_id.into()),
                ("task", i.into()),
                ("node", t.node.into()),
                ("dur_s", t.duration().into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::uniform_cluster;
    use crate::{Simulation, TaskSpec};
    use ::trace::{ClockFilter, Phase};

    fn run(tasks: Vec<TaskSpec>) -> (ClusterSpec, StageTiming) {
        let spec = uniform_cluster(2, 2, 1.0);
        let mut sim = Simulation::new(spec.clone());
        let timing = sim.run_stage(&tasks);
        (spec, timing)
    }

    #[test]
    fn emits_one_span_per_task() {
        let (spec, timing) = run(vec![TaskSpec::compute(2.0); 6]);
        let sink = TraceSink::enabled();
        emit_stage_trace(&sink, &spec, &timing, "s0", 0);
        let spans = sink
            .events()
            .iter()
            .filter(|e| matches!(e.phase, Phase::Span { .. }))
            .count();
        assert_eq!(spans, 6);
    }

    #[test]
    fn lanes_never_overlap() {
        let (spec, timing) = run(vec![TaskSpec::compute(1.5); 9]);
        let sink = TraceSink::enabled();
        emit_stage_trace(&sink, &spec, &timing, "s0", 0);
        // Per track, spans sorted by start must not overlap.
        let mut by_track: std::collections::BTreeMap<u32, Vec<(f64, f64)>> = Default::default();
        for e in sink.events() {
            if let Phase::Span { dur_us } = e.phase {
                by_track
                    .entry(e.track.tid)
                    .or_default()
                    .push((e.ts_us, e.ts_us + dur_us));
            }
        }
        for (tid, mut spans) in by_track {
            spans.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            for w in spans.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-6,
                    "lane {tid} overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn emission_is_deterministic() {
        let (spec, timing) = run(vec![TaskSpec::compute(2.0); 8]);
        let a = TraceSink::enabled();
        let b = TraceSink::enabled();
        emit_stage_trace(&a, &spec, &timing, "s0", 0);
        emit_stage_trace(&b, &spec, &timing, "s0", 0);
        assert_eq!(
            a.chrome_json_filtered(ClockFilter::VirtualOnly),
            b.chrome_json_filtered(ClockFilter::VirtualOnly)
        );
    }

    #[test]
    fn pinned_tasks_land_on_their_node_lanes() {
        let tasks: Vec<TaskSpec> = (0..4).map(|_| TaskSpec::compute(1.0).pin(1)).collect();
        let (spec, timing) = run(tasks);
        let sink = TraceSink::enabled();
        emit_stage_trace(&sink, &spec, &timing, "s0", 0);
        // Node 1's lanes start at tid 2 (node 0 has 2 cores).
        for e in sink.events() {
            if matches!(e.phase, Phase::Span { .. }) {
                assert!(e.track.tid >= 2, "task on node-0 lane {}", e.track.tid);
            }
        }
    }

    #[test]
    fn disabled_sink_emits_nothing() {
        let (spec, timing) = run(vec![TaskSpec::compute(1.0); 2]);
        let sink = TraceSink::disabled();
        emit_stage_trace(&sink, &spec, &timing, "s0", 0);
        assert!(sink.events().is_empty());
    }
}
