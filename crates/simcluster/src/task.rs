//! The task cost descriptor submitted by the engine.

use crate::spec::NodeId;

/// Cost description of one task (one partition of one stage).
///
/// The engine computes the *real* data for each task on the host machine and
/// summarizes its cost here; the simulator turns the summary into virtual
/// time on the modeled cluster.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskSpec {
    /// Abstract compute cost units. A node with `speed` s processes
    /// `s` units per second per core, so `compute_cost / speed` is the pure
    /// compute time of the task on that node.
    pub compute_cost: f64,
    /// Bytes read from local storage (HDFS block reads for input stages,
    /// local map-output reads for reduce tasks whose sources are co-located).
    pub local_read_bytes: u64,
    /// Shuffle fetches: `(source node, bytes)` per remote map output chunk.
    /// Fetches from the task's own node are counted as local reads instead
    /// by the simulator.
    pub fetches: Vec<(NodeId, u64)>,
    /// Bytes written locally (shuffle map outputs, result spills).
    pub write_bytes: u64,
    /// Peak memory footprint while running, for the Fig. 12 memory trace.
    pub memory_bytes: u64,
    /// Number of map-output chunks this task fetches (one per producer
    /// task); each costs `ClusterSpec::fetch_chunk_overhead` seconds.
    pub fetch_chunks: usize,
    /// Nodes where the task's input lives; the scheduler prefers these
    /// (Spark's locality preference).
    pub preferred_nodes: Vec<NodeId>,
    /// Hard placement pin used by CHOPPER's co-partition-aware scheduling:
    /// when set, the task runs on this node regardless of load.
    pub pinned_node: Option<NodeId>,
}

impl TaskSpec {
    /// A pure-compute task, the common case in tests.
    pub fn compute(cost: f64) -> Self {
        TaskSpec {
            compute_cost: cost,
            ..TaskSpec::default()
        }
    }

    /// Adds a locality preference.
    pub fn prefer(mut self, node: NodeId) -> Self {
        self.preferred_nodes.push(node);
        self
    }

    /// Pins the task to a node.
    pub fn pin(mut self, node: NodeId) -> Self {
        self.pinned_node = Some(node);
        self
    }

    /// Total bytes this task will pull over the network if placed on
    /// `node` (fetches whose source is `node` are free).
    pub fn remote_bytes_if_on(&self, node: NodeId) -> u64 {
        self.fetches
            .iter()
            .filter(|(src, _)| *src != node)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Total shuffle fetch volume regardless of placement.
    pub fn total_fetch_bytes(&self) -> u64 {
        self.fetches.iter().map(|(_, b)| *b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let t = TaskSpec::compute(5.0).prefer(1).pin(2);
        assert_eq!(t.compute_cost, 5.0);
        assert_eq!(t.preferred_nodes, vec![1]);
        assert_eq!(t.pinned_node, Some(2));
    }

    #[test]
    fn remote_bytes_excludes_own_node() {
        let t = TaskSpec {
            fetches: vec![(0, 100), (1, 200), (0, 50)],
            ..TaskSpec::default()
        };
        assert_eq!(t.remote_bytes_if_on(0), 200);
        assert_eq!(t.remote_bytes_if_on(1), 150);
        assert_eq!(t.remote_bytes_if_on(2), 350);
        assert_eq!(t.total_fetch_bytes(), 350);
    }
}
