//! Rack-mode stage execution: flow-level network simulation.
//!
//! Under a [`netsim::Topology::Rack`] topology, remote shuffle fetches no
//! longer resolve to the flat closed form (`bytes / NIC + latency`): a
//! reduce task's fetches become *flows* through a leaf/spine network —
//! source-rack uplink → destination-rack downlink → destination NIC — and
//! share those links max-min fairly with every other in-flight fetch.
//! Oversubscribed ToR uplinks therefore congest exactly when many tasks
//! pull cross-rack at once, which is what makes partition placement and
//! partition *count* interact at scale.
//!
//! Because contention makes task durations placement- and time-dependent,
//! the one-pass greedy schedule of the flat path does not work here; this
//! module runs a proper event loop (dispatch events, task completions,
//! and flow completions merged through the netsim event queue) with
//! topology-aware placement: pins first, then data-local preferences,
//! then the candidate whose rack holds the most of the task's shuffle
//! input, then least-loaded with the same salt rotation as the flat path.
//!
//! Approximations, chosen deliberately and documented here:
//!
//! * Per-task flows are aggregated per source rack (and one same-rack
//!   aggregate), not per source host, bounding queue traffic at scale;
//!   past [`MAX_PER_RACK_FLOWS`] distinct source racks they collapse
//!   further into a single cross-rack flow through the destination's
//!   downlink. Sender-side NICs are not modeled — the receiver NIC and
//!   the rack uplinks/downlinks are the contended resources.
//! * Non-network task costs (launch overhead, compute, disk, chunk and
//!   fetch-wave latency) are charged as a closed-form tail after the
//!   task's flows complete; they do not contend.
//! * Speculative execution reuses the flat-path estimator for backup
//!   copies: speculation fires in the stage tail when the network is
//!   draining, so contention-free estimates are close.
//!
//! Determinism: every queue is `(time, seq)`-ordered, ties between a
//! stage event and a flow completion at the same instant resolve to the
//! stage event, and placement scans nodes in id order with explicit
//! tie-breaks. Identical inputs replay bit-identically.

use std::collections::VecDeque;

use netsim::{EventQueue, LinkId, Network, Topology};

use super::{Simulation, StageTiming, TaskTiming};
use crate::spec::NodeId;
use crate::task::TaskSpec;

/// Above this many distinct source racks, a task's cross-rack fetches
/// collapse into one aggregate flow through the destination downlink.
const MAX_PER_RACK_FLOWS: usize = 8;

enum Ev {
    /// The driver ships task `idx`'s descriptor; it joins the ready queue.
    Dispatch(usize),
    /// Task `idx` finishes its closed-form tail and frees its core.
    TaskEnd(usize),
}

/// All per-stage state of the rack-mode event loop.
struct RackStage<'a> {
    tasks: &'a [TaskSpec],
    topo: Topology,
    racks: usize,
    salt: usize,
    net: Network,
    nic: Vec<LinkId>,
    uplink: Vec<LinkId>,
    downlink: Vec<LinkId>,
    q: EventQueue<Ev>,
    /// Per-node core slots: free-at time, `INFINITY` while occupied.
    slots: Vec<Vec<f64>>,
    assigned: Vec<usize>,
    ready: VecDeque<usize>,
    timing: Vec<TaskTiming>,
    slot_of: Vec<(NodeId, usize)>,
    pending_flows: Vec<usize>,
    /// Closed-form tail charged after the task's flows finish.
    rest: Vec<f64>,
    remote_bytes: Vec<u64>,
    txn_bytes: Vec<u64>,
    /// When the task's last flow completed (packet-trace window end).
    net_end: Vec<f64>,
    /// Per task, shuffle input bytes by source rack — the placement score.
    rack_bytes: Vec<Vec<u64>>,
    /// Flow id → owning task.
    flow_task: Vec<usize>,
    ended: usize,
    stage_end: f64,
}

impl Simulation {
    /// Event-driven stage execution under a rack topology. The caller
    /// guarantees `tasks` is non-empty.
    pub(super) fn run_stage_rack(&mut self, tasks: &[TaskSpec]) -> StageTiming {
        let stage_start = self.clock;
        let num_nodes = self.spec.num_nodes();
        let salt = self.stages_run % num_nodes;
        self.stages_run += 1;

        let mut st = RackStage::new(self, tasks, stage_start, salt);
        for idx in 0..tasks.len() {
            st.q.push(
                stage_start + idx as f64 * self.spec.dispatch_interval,
                Ev::Dispatch(idx),
            );
        }

        while st.ended < tasks.len() {
            let tq = st.q.peek_time();
            let tn = st.net.next_completion_time();
            let take_net = match (tq, tn) {
                // Equal instants resolve to the stage event: dispatches
                // and completions outrank flow completions, determinately.
                (Some(a), Some(b)) => b < a,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => unreachable!("tasks pending but no events"),
            };
            if take_net {
                let (t, flow) = st.net.pop_completion().expect("peeked completion");
                let idx = st.flow_task[flow];
                st.pending_flows[idx] -= 1;
                if st.pending_flows[idx] == 0 {
                    st.net_end[idx] = t;
                    st.q.push(t + st.rest[idx], Ev::TaskEnd(idx));
                }
            } else {
                let ev = st.q.pop().expect("peeked event");
                match ev.item {
                    Ev::Dispatch(idx) => {
                        st.ready.push_back(idx);
                        st.try_place(self, ev.time);
                    }
                    Ev::TaskEnd(idx) => {
                        st.finish_task(self, idx, ev.time);
                        st.try_place(self, ev.time);
                    }
                }
            }
        }

        let RackStage {
            net,
            q,
            slots,
            mut timing,
            mut stage_end,
            ..
        } = st;
        self.net_stats += net.stats();
        self.events += q.total_popped() + net.stats().events_processed;

        if let Some(multiplier) = self.speculation {
            stage_end = self.speculate(tasks, &mut timing, &slots, multiplier, stage_end);
        }

        let resident: u64 = self.resident_bytes.iter().sum();
        if resident > 0 && stage_end > stage_start {
            self.trace.record_memory(stage_start, stage_end, resident);
        }

        self.clock = stage_end;
        StageTiming {
            start: stage_start,
            end: stage_end,
            tasks: timing,
        }
    }

    /// Charges driver-coordinated replica transfers (`(src, dst, bytes)`)
    /// through the topology: same-rack copies contend only at the
    /// destination NIC, cross-rack copies also cross the source uplink and
    /// destination downlink. The clock advances to the last completion and
    /// the packet trace records each transfer over its actual window.
    pub fn charge_replica_transfers(&mut self, moves: &[(NodeId, NodeId, u64)]) {
        if moves.iter().all(|&(_, _, b)| b == 0) {
            return;
        }
        let start = self.clock;
        let (mut net, nic, uplink, downlink) = build_network(&self.spec);
        net.sync_to(start);
        let mut flow_move: Vec<usize> = Vec::with_capacity(moves.len());
        for (i, &(src, dst, bytes)) in moves.iter().enumerate() {
            if bytes == 0 || src == dst {
                continue;
            }
            let (sr, dr) = (self.spec.rack_of(src), self.spec.rack_of(dst));
            let path = if sr == dr {
                vec![nic[dst]]
            } else {
                vec![uplink[sr], downlink[dr], nic[dst]]
            };
            net.start_flow(path, bytes as f64);
            flow_move.push(i);
        }
        let mut end = start;
        while let Some((t, flow)) = net.pop_completion() {
            let &(_, _, bytes) = &moves[flow_move[flow]];
            let packets = (bytes as f64 / self.spec.mtu as f64).ceil();
            self.trace
                .record_packets(start, t.max(start + 1e-9), 2.0 * packets);
            self.io.remote_bytes += bytes;
            end = end.max(t);
        }
        self.net_stats += net.stats();
        self.events += net.stats().events_processed;
        self.clock = end;
    }
}

/// Builds the leaf/spine link set for a spec: one receive-direction link
/// per NIC, one uplink + one downlink per rack (capacity `hosts × fastest
/// NIC in the rack / oversub`; infinite for empty racks and flat specs,
/// where they never constrain anything).
fn build_network(
    spec: &crate::spec::ClusterSpec,
) -> (Network, Vec<LinkId>, Vec<LinkId>, Vec<LinkId>) {
    let topo = spec.topology;
    let racks = topo.num_racks();
    let mut net = Network::new();
    let nic: Vec<LinkId> = spec
        .nodes
        .iter()
        .map(|n| net.add_link(n.net_bandwidth))
        .collect();
    let mut rack_nic = vec![0.0f64; racks];
    for (i, n) in spec.nodes.iter().enumerate() {
        let r = topo.rack_of(i);
        rack_nic[r] = rack_nic[r].max(n.net_bandwidth);
    }
    let cap = |b: f64| {
        let c = topo.uplink_capacity(b);
        if c > 0.0 {
            c
        } else {
            f64::INFINITY
        }
    };
    let uplink: Vec<LinkId> = rack_nic.iter().map(|&b| net.add_link(cap(b))).collect();
    let downlink: Vec<LinkId> = rack_nic.iter().map(|&b| net.add_link(cap(b))).collect();
    (net, nic, uplink, downlink)
}

impl<'a> RackStage<'a> {
    fn new(sim: &Simulation, tasks: &'a [TaskSpec], stage_start: f64, salt: usize) -> Self {
        let topo = sim.spec.topology;
        let racks = topo.num_racks();
        let (mut net, nic, uplink, downlink) = build_network(&sim.spec);
        net.sync_to(stage_start);

        let rack_bytes: Vec<Vec<u64>> = tasks
            .iter()
            .map(|t| {
                let mut by_rack = vec![0u64; racks];
                for &(src, bytes) in &t.fetches {
                    by_rack[topo.rack_of(src)] += bytes;
                }
                by_rack
            })
            .collect();

        RackStage {
            tasks,
            topo,
            racks,
            salt,
            net,
            nic,
            uplink,
            downlink,
            q: EventQueue::with_capacity(tasks.len() * 2),
            slots: sim
                .spec
                .nodes
                .iter()
                .map(|n| vec![stage_start; n.cores])
                .collect(),
            assigned: vec![0; sim.spec.num_nodes()],
            ready: VecDeque::new(),
            timing: vec![
                TaskTiming {
                    node: 0,
                    start: 0.0,
                    end: 0.0
                };
                tasks.len()
            ],
            slot_of: vec![(0, 0); tasks.len()],
            pending_flows: vec![0; tasks.len()],
            rest: vec![0.0; tasks.len()],
            remote_bytes: vec![0; tasks.len()],
            txn_bytes: vec![0; tasks.len()],
            net_end: vec![0.0; tasks.len()],
            rack_bytes,
            flow_task: Vec::new(),
            ended: 0,
            stage_end: stage_start,
        }
    }

    /// Whether `node` has a core free at `now`.
    fn has_free_core(&self, node: NodeId, now: f64) -> bool {
        self.slots[node].iter().any(|&t| t <= now + 1e-12)
    }

    /// Topology-aware placement. `None` means the task cannot start now —
    /// for a pinned task, "its node is busy"; for anything else, "no node
    /// has a free core".
    fn pick_node(&self, sim: &Simulation, idx: usize, now: f64) -> Option<NodeId> {
        let task = &self.tasks[idx];
        let n = sim.spec.num_nodes();
        if let Some(pin) = task.pinned_node {
            if !sim.failed[pin] {
                return self.has_free_core(pin, now).then_some(pin);
            }
        }
        // Data-local preference: a preferred node with a free core wins
        // outright (the flat path's delay scheduling, without the wait —
        // under contention a busy preference is not worth stalling for).
        for &p in &task.preferred_nodes {
            if p < n && !sim.failed[p] && self.has_free_core(p, now) {
                return Some(p);
            }
        }
        // Otherwise: the free node whose rack holds the most of this
        // task's shuffle input — cross-rack bytes are the contended
        // resource — then least-loaded, then salt-rotated id.
        let mut best: Option<(u64, f64, usize, NodeId)> = None;
        for node in 0..n {
            if sim.failed[node] || !self.has_free_core(node, now) {
                continue;
            }
            let score = self.rack_bytes[idx][self.topo.rack_of(node)];
            let load = self.assigned[node] as f64 / sim.spec.nodes[node].cores as f64;
            let rotated = (node + n - self.salt) % n;
            let better = match best {
                None => true,
                Some((bs, bl, br, _)) => {
                    score > bs
                        || (score == bs
                            && (load < bl - 1e-12 || (load < bl + 1e-12 && rotated < br)))
                }
            };
            if better {
                best = Some((score, load, rotated, node));
            }
        }
        best.map(|(_, _, _, node)| node)
    }

    /// Drains the ready queue in FIFO order, skipping (but keeping)
    /// pinned tasks whose node is busy; stops at the first task that
    /// cannot place because the whole cluster is out of cores.
    fn try_place(&mut self, sim: &mut Simulation, now: f64) {
        let mut i = 0;
        while i < self.ready.len() {
            let idx = self.ready[i];
            match self.pick_node(sim, idx, now) {
                Some(node) => {
                    self.ready.remove(i);
                    self.start_task(sim, idx, node, now);
                }
                None => {
                    let pinned_wait = self.tasks[idx].pinned_node.is_some_and(|p| !sim.failed[p]);
                    if pinned_wait {
                        i += 1; // waiting for its pin; let others pass
                    } else {
                        break; // no free core anywhere — nobody can place
                    }
                }
            }
        }
    }

    fn start_task(&mut self, sim: &mut Simulation, idx: usize, node: NodeId, now: f64) {
        let task = &self.tasks[idx];
        self.assigned[node] += 1;
        let slot = self.slots[node]
            .iter()
            .position(|&t| t <= now + 1e-12)
            .expect("pick_node guarantees a free core");
        self.slots[node][slot] = f64::INFINITY;
        self.slot_of[idx] = (node, slot);
        self.timing[idx].node = node;
        self.timing[idx].start = now;

        // Cost decomposition — identical constants to the flat path; only
        // the transfer time itself moves into the flow network.
        let n = &sim.spec.nodes[node];
        let speed = n.speed / sim.slowdown[node];
        let my_rack = self.topo.rack_of(node);
        let mut local_fetch = 0u64;
        let mut same_rack = 0u64;
        let mut remote_total = 0u64;
        let mut remote_srcs = 0usize;
        let mut cross: Vec<u64> = vec![0; self.racks];
        for &(src, bytes) in &task.fetches {
            if src == node {
                local_fetch += bytes;
            } else {
                remote_total += bytes;
                remote_srcs += 1;
                let r = self.topo.rack_of(src);
                if r == my_rack {
                    same_rack += bytes;
                } else {
                    cross[r] += bytes;
                }
            }
        }
        let waves = remote_srcs.div_ceil(sim.spec.max_concurrent_fetches.max(1));
        let disk = (task.local_read_bytes + task.write_bytes) as f64 / n.disk_bandwidth
            + local_fetch as f64 / sim.spec.cache_bandwidth;
        let chunk = task.fetch_chunks as f64 * sim.spec.fetch_chunk_overhead;
        self.rest[idx] = sim.spec.task_launch_overhead
            + task.compute_cost / speed
            + disk
            + chunk
            + waves as f64 * n.net_latency;
        self.remote_bytes[idx] = remote_total;
        self.txn_bytes[idx] = task.local_read_bytes + local_fetch + task.write_bytes;

        sim.io.remote_bytes += remote_total;
        sim.io.local_read_bytes += task.local_read_bytes + local_fetch;
        sim.io.write_bytes += task.write_bytes;

        // Launch the task's flows: one same-rack aggregate through the
        // receiver NIC, one per source rack through uplink → downlink →
        // NIC, collapsing to a single cross-rack aggregate when the rack
        // fan-in is large.
        self.net.sync_to(now);
        let mut flows = 0usize;
        if same_rack > 0 {
            self.net.start_flow(vec![self.nic[node]], same_rack as f64);
            self.flow_task.push(idx);
            flows += 1;
        }
        let active_racks = cross.iter().filter(|&&b| b > 0).count();
        if active_racks > MAX_PER_RACK_FLOWS {
            let total: u64 = cross.iter().sum();
            self.net
                .start_flow(vec![self.downlink[my_rack], self.nic[node]], total as f64);
            self.flow_task.push(idx);
            flows += 1;
        } else {
            for (r, &bytes) in cross.iter().enumerate() {
                if bytes > 0 {
                    self.net.start_flow(
                        vec![self.uplink[r], self.downlink[my_rack], self.nic[node]],
                        bytes as f64,
                    );
                    self.flow_task.push(idx);
                    flows += 1;
                }
            }
        }
        self.pending_flows[idx] = flows;
        if flows == 0 {
            self.net_end[idx] = now;
            self.q.push(now + self.rest[idx], Ev::TaskEnd(idx));
        }
    }

    fn finish_task(&mut self, sim: &mut Simulation, idx: usize, now: f64) {
        let task = &self.tasks[idx];
        self.timing[idx].end = now;
        let (node, slot) = self.slot_of[idx];
        self.slots[node][slot] = now;
        self.ended += 1;
        self.stage_end = self.stage_end.max(now);

        let start = self.timing[idx].start;
        sim.trace.record_task(start, now, task.memory_bytes);
        if self.remote_bytes[idx] > 0 {
            let packets = (self.remote_bytes[idx] as f64 / sim.spec.mtu as f64).ceil();
            sim.trace
                .record_packets(start, self.net_end[idx].max(start + 1e-9), 2.0 * packets);
        }
        if self.txn_bytes[idx] > 0 {
            let txns = (self.txn_bytes[idx] as f64 / sim.spec.io_transaction_bytes as f64).ceil();
            sim.trace.record_transactions(start, now, txns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::uniform_cluster;

    fn racked(nodes: usize, cores: usize, racks: usize, hosts: usize, oversub: f64) -> Simulation {
        Simulation::new(
            uniform_cluster(nodes, cores, 1.0).with_topology(Topology::Rack {
                racks,
                hosts,
                oversub,
            }),
        )
    }

    #[test]
    fn uncontended_rack_fetch_matches_the_flat_closed_form() {
        // One task, one remote same-rack fetch, nobody else on the wire:
        // the flow runs at full NIC rate, so the duration must equal the
        // flat path's `overhead + bytes/NIC + latency`.
        let spec = uniform_cluster(2, 2, 1.0);
        let bw = spec.nodes[0].net_bandwidth;
        let bytes = (2.0 * bw) as u64;
        let t = TaskSpec {
            fetches: vec![(1, bytes)],
            ..TaskSpec::default()
        }
        .pin(0);

        let mut flat = Simulation::new(spec.clone());
        let flat_d = flat.run_stage(std::slice::from_ref(&t)).duration();

        let mut rack = Simulation::new(spec.with_topology(Topology::Rack {
            racks: 1,
            hosts: 2,
            oversub: 1.0,
        }));
        let rack_d = rack.run_stage(std::slice::from_ref(&t)).duration();
        assert!(
            (rack_d - flat_d).abs() < 1e-9,
            "uncontended rack {rack_d} vs flat {flat_d}"
        );
        assert_eq!(rack.network_stats().flows_completed, 1);
        assert!(rack.events_processed() > 0);
        assert_eq!(flat.network_stats().flows_completed, 0);
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_rack_stages() {
        // Two reduce tasks in rack 1, each pulling from both rack-0 hosts.
        // At oversub 4 the shared uplink carries half a NIC, so the stage
        // runs ~4x longer than at full bisection.
        let bw = uniform_cluster(1, 1, 1.0).nodes[0].net_bandwidth;
        let bytes = bw as u64; // one NIC-second per source
        let tasks: Vec<TaskSpec> = [2usize, 3]
            .iter()
            .map(|&dst| {
                TaskSpec {
                    fetches: vec![(0, bytes), (1, bytes)],
                    ..TaskSpec::default()
                }
                .pin(dst)
            })
            .collect();
        let fast = racked(4, 1, 2, 2, 1.0).run_stage(&tasks).duration();
        let slow = racked(4, 1, 2, 2, 4.0).run_stage(&tasks).duration();
        assert!(
            slow > 3.0 * fast,
            "oversub 4 should be ~4x slower: {slow} vs {fast}"
        );
        // Transfer math: 2 NIC-seconds of bytes per task, two tasks on an
        // uplink of 2·NIC/4 → 8 seconds of transfer at oversub 4.
        assert!(
            (slow - fast - 6.0).abs() < 0.1,
            "got slow={slow} fast={fast}"
        );
    }

    #[test]
    fn placement_prefers_the_rack_holding_the_shuffle_input() {
        // All of the task's input sits in rack 0; with free cores
        // everywhere the scheduler must not send it cross-rack.
        let mut sim = racked(6, 2, 3, 2, 4.0);
        let t = TaskSpec {
            fetches: vec![(0, 1 << 20), (1, 1 << 20)],
            ..TaskSpec::default()
        };
        let st = sim.run_stage(&[t]);
        assert!(
            st.tasks[0].node < 2,
            "placed on node {} outside rack 0",
            st.tasks[0].node
        );
    }

    #[test]
    fn rack_stages_replay_bit_identically() {
        let run = || {
            let mut sim = racked(8, 2, 4, 2, 4.0);
            let tasks: Vec<TaskSpec> = (0..24)
                .map(|i| TaskSpec {
                    compute_cost: 0.5 + (i % 5) as f64 * 0.3,
                    fetches: vec![((i * 3) % 8, 1_000_000 + i as u64 * 7_000)],
                    write_bytes: 500_000,
                    ..TaskSpec::default()
                })
                .collect();
            let a = sim.run_stage(&tasks);
            let b = sim.run_stage(&tasks);
            (a, b, sim.events_processed())
        };
        let (a1, b1, e1) = run();
        let (a2, b2, e2) = run();
        assert_eq!(e1, e2);
        for (x, y) in [(a1, a2), (b1, b2)] {
            assert_eq!(x.end.to_bits(), y.end.to_bits());
            for (tx, ty) in x.tasks.iter().zip(&y.tasks) {
                assert_eq!(tx.node, ty.node);
                assert_eq!(tx.start.to_bits(), ty.start.to_bits());
                assert_eq!(tx.end.to_bits(), ty.end.to_bits());
            }
        }
    }

    #[test]
    fn pinned_tasks_wait_for_their_node_without_blocking_others() {
        // Node 0 has one core; two tasks pinned there must serialize while
        // an unpinned task slips past to another node.
        let mut sim = racked(4, 1, 2, 2, 1.0);
        let tasks = vec![
            TaskSpec::compute(2.0).pin(0),
            TaskSpec::compute(2.0).pin(0),
            TaskSpec::compute(1.0),
        ];
        let st = sim.run_stage(&tasks);
        assert_eq!(st.tasks[0].node, 0);
        assert_eq!(st.tasks[1].node, 0);
        assert!(st.tasks[1].start >= st.tasks[0].end - 1e-9, "serialized");
        assert_ne!(st.tasks[2].node, 0, "unpinned task skipped ahead");
        assert!(st.tasks[2].end < st.tasks[1].end);
    }

    #[test]
    fn replica_transfers_contend_on_the_uplink() {
        // Two same-source-rack transfers share one uplink; clock advances
        // by the max-min completion, not the naive per-NIC time.
        let mut sim = racked(4, 1, 2, 2, 2.0);
        let bw = sim.spec().nodes[0].net_bandwidth;
        let uplink = 2.0 * bw / 2.0; // hosts × NIC / oversub = one NIC
        let bytes = bw as u64;
        let t0 = sim.clock();
        sim.charge_replica_transfers(&[(0, 2, bytes), (1, 3, bytes)]);
        // 2 NIC-seconds of bytes through a one-NIC uplink: 2 seconds.
        let took = sim.clock() - t0;
        let expect = 2.0 * bytes as f64 / uplink;
        assert!((took - expect).abs() < 1e-9, "took {took}, want {expect}");
        assert_eq!(sim.io_stats().remote_bytes, 2 * bytes);
        // Same-node and zero-byte moves are free.
        let t1 = sim.clock();
        sim.charge_replica_transfers(&[(0, 0, 123), (1, 2, 0)]);
        assert_eq!(sim.clock(), t1);
    }

    #[test]
    fn speculation_runs_in_rack_mode() {
        let mut sim = racked(4, 2, 2, 2, 1.0);
        sim.set_slowdown(0, 10.0);
        sim.enable_speculation(1.5);
        let tasks: Vec<TaskSpec> = (0..8).map(|_| TaskSpec::compute(5.0)).collect();
        let st = sim.run_stage(&tasks);
        // The straggling copies on node 0 must have been rescued: no task
        // ends anywhere near the 10x-slowed duration.
        assert!(
            st.max_task() < 25.0,
            "straggler not rescued: {}",
            st.max_task()
        );
    }
}
