//! Adaptive execution must be deterministic and data-preserving:
//!
//! * `--adaptive on` (splitter + replan hook) must produce bit-identical
//!   virtual results — job/stage metrics, per-task durations, the
//!   virtual-clock trace slice — at any host worker count, pipelined or
//!   barrier, row or columnar. Adaptive decisions key on data-plane byte
//!   tables and the virtual clock only, so nothing host-side may leak in.
//! * `--adaptive off` must do the same (the static engine is already
//!   pinned by the pipeline/batch suites; this adds the flag's own
//!   off-state to the matrix).
//! * The two modes must agree on every output *value*: hot-partition
//!   splitting is key-preserving and aggregation is order-insensitive per
//!   key, so the sorted output tables are equal bit-for-bit — only
//!   simulated timings may differ.
//! * On the skewed workload the adaptive run must actually split (and
//!   re-plan), and must be faster on the virtual clock — otherwise the
//!   layer silently degraded to a no-op and this suite is vacuous.

use engine::{ClockFilter, Context, EngineOptions, TraceSink, WorkloadConf};
use simcluster::uniform_cluster;
use workloads::{SkewAgg, SkewAggConfig, SkewAggResult};

fn options(adaptive: bool, pipeline: bool, batch: bool, workers: usize) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(3, 4, 2.0),
        default_parallelism: 8,
        workers,
        trace: TraceSink::enabled(),
        pipeline,
        batch,
        adaptive,
        // The replan hook is part of `--adaptive on`: its inputs are
        // data-plane bytes and virtual durations, so installing it must
        // not break worker-count or engine-mode bit-identity.
        replan: adaptive.then(|| {
            chopper::replan_hook(chopper::ReplanOptions {
                slots: 12,
                ..chopper::ReplanOptions::default()
            })
        }),
        ..EngineOptions::default()
    }
}

/// Everything virtual-clock observable about a finished run, in
/// comparable form (f64 `Debug` renders distinct bit patterns
/// distinctly), plus the output tables.
type Table = Vec<(i64, f64, u64)>;

struct Observed {
    tables: (Table, Table),
    fingerprint: u64,
    jobs_debug: String,
    stages_debug: String,
    virtual_trace: String,
    clock_bits: u64,
}

fn observe(adaptive: bool, pipeline: bool, batch: bool, workers: usize) -> Observed {
    let w = SkewAgg::new(SkewAggConfig::small());
    let res: SkewAggResult = w.execute(
        &options(adaptive, pipeline, batch, workers),
        &WorkloadConf::new(),
        1.0,
    );
    let ctx: &Context = &res.ctx;
    Observed {
        fingerprint: res.fingerprint(),
        jobs_debug: format!("{:?}", ctx.jobs()),
        stages_debug: format!("{:?}", ctx.all_stages()),
        virtual_trace: ctx
            .trace_sink()
            .chrome_json_filtered(ClockFilter::VirtualOnly),
        clock_bits: ctx.clock().to_bits(),
        tables: (res.hot_table, res.freq_table),
    }
}

fn assert_matrix_bit_identical(adaptive: bool) {
    let reference = observe(adaptive, false, true, 1);
    assert!(
        !reference.virtual_trace.is_empty(),
        "traced run produced no events"
    );
    for workers in [1, 8] {
        for pipeline in [false, true] {
            for batch in [false, true] {
                if !pipeline && batch && workers == 1 {
                    continue; // the reference itself
                }
                let what = format!(
                    "adaptive {adaptive}, pipeline {pipeline}, batch {batch}, workers {workers}"
                );
                let got = observe(adaptive, pipeline, batch, workers);
                assert_eq!(reference.tables, got.tables, "{what}: output tables");
                assert_eq!(
                    reference.fingerprint, got.fingerprint,
                    "{what}: fingerprint"
                );
                assert_eq!(reference.jobs_debug, got.jobs_debug, "{what}: job metrics");
                assert_eq!(
                    reference.stages_debug, got.stages_debug,
                    "{what}: stage metrics"
                );
                assert_eq!(
                    reference.virtual_trace, got.virtual_trace,
                    "{what}: virtual trace slice"
                );
                assert_eq!(reference.clock_bits, got.clock_bits, "{what}: clock");
            }
        }
    }
}

#[test]
fn adaptive_on_is_bit_identical_across_the_matrix() {
    assert_matrix_bit_identical(true);
}

#[test]
fn adaptive_off_is_bit_identical_across_the_matrix() {
    assert_matrix_bit_identical(false);
}

#[test]
fn on_and_off_agree_on_outputs_and_diverge_on_time() {
    let on = observe(true, true, true, 4);
    let off = observe(false, true, true, 4);
    assert_eq!(on.tables, off.tables, "splitting must preserve every value");
    assert_eq!(on.fingerprint, off.fingerprint);
    let t_on = f64::from_bits(on.clock_bits);
    let t_off = f64::from_bits(off.clock_bits);
    assert!(
        t_on < t_off,
        "the adaptive run must be strictly faster on the virtual clock \
         (on={t_on:.4}s off={t_off:.4}s) — otherwise the layer is a no-op"
    );
}

#[test]
fn adaptive_run_actually_splits_and_replans() {
    let w = SkewAgg::new(SkewAggConfig::small());
    let res = w.execute(&options(true, true, true, 4), &WorkloadConf::new(), 1.0);
    let stages = res.ctx.all_stages();
    assert!(
        stages[1].num_tasks > w.config.partitions,
        "hot range partition must split into sub-tasks"
    );
    assert_eq!(
        stages[5].scheme.map(|s| s.kind),
        Some(engine::PartitionerKind::Range),
        "round two of the hash aggregation must run under the re-planned scheme"
    );
    let trace = res
        .ctx
        .trace_sink()
        .chrome_json_filtered(ClockFilter::VirtualOnly);
    assert!(
        trace.contains("adaptive split"),
        "split decisions must be recorded as trace instants"
    );
    assert!(
        trace.contains("adaptive replan"),
        "replan decisions must be recorded as trace instants"
    );
}
