//! An explicit `--topology flat` must be a no-op: for every paper
//! workload, a cluster spec carrying `Topology::Flat` must produce
//! bit-identical simulated results to the default spec — job/stage
//! metrics, per-task virtual durations, and the virtual-clock slice of
//! the Chrome trace — at any host worker count, with pipelining or
//! batching on or off. The netsim fabric only engages for rack specs;
//! flat keeps the closed-form fetch model byte-for-byte.

use chopper::Workload;
use engine::{ClockFilter, Context, EngineOptions, JobMetrics, TraceSink, WorkloadConf};
use simcluster::{uniform_cluster, Topology};
use workloads::{KMeans, KMeansConfig, LogReg, LogRegConfig, Pca, PcaConfig, Sql, SqlConfig};

fn options(explicit_flat: bool, pipeline: bool, batch: bool, workers: usize) -> EngineOptions {
    let mut cluster = uniform_cluster(3, 4, 2.0);
    if explicit_flat {
        cluster = cluster.with_topology(Topology::Flat);
    }
    EngineOptions {
        cluster,
        default_parallelism: 8,
        workers,
        trace: TraceSink::enabled(),
        pipeline,
        batch,
        ..EngineOptions::default()
    }
}

fn assert_jobs_bit_identical(a: &[JobMetrics], b: &[JobMetrics], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: job count");
    for (ja, jb) in a.iter().zip(b) {
        assert!(
            ja.start.to_bits() == jb.start.to_bits() && ja.end.to_bits() == jb.end.to_bits(),
            "{what}: job {} timing diverged",
            ja.name
        );
        assert_eq!(ja.stages.len(), jb.stages.len(), "{what}: stage count");
        for (sa, sb) in ja.stages.iter().zip(&jb.stages) {
            assert!(
                sa.start.to_bits() == sb.start.to_bits() && sa.end.to_bits() == sb.end.to_bits(),
                "{what}: stage {} timing diverged",
                sa.name
            );
            assert_eq!(
                sa.task_durations.len(),
                sb.task_durations.len(),
                "{what}: stage {} task count",
                sa.name
            );
            for (da, db) in sa.task_durations.iter().zip(&sb.task_durations) {
                assert!(
                    da.to_bits() == db.to_bits(),
                    "{what}: stage {} task duration diverged",
                    sa.name
                );
            }
        }
    }
}

/// Everything virtual-clock observable about a finished context, in a
/// comparable form. `StageMetrics` carries no `PartialEq`, so stages are
/// compared through their `Debug` rendering (f64 `Debug` is a shortest
/// round-trip form: distinct bit patterns render distinctly).
struct Observed {
    jobs: Vec<JobMetrics>,
    stages_debug: String,
    virtual_trace: String,
    summary_stages: String,
    total_s_bits: u64,
}

fn observe(
    w: &dyn Workload,
    explicit_flat: bool,
    pipeline: bool,
    batch: bool,
    workers: usize,
) -> Observed {
    let ctx: Context = w.run(
        &options(explicit_flat, pipeline, batch, workers),
        &WorkloadConf::new(),
        1.0,
    );
    let summary = ctx.trace_summary();
    Observed {
        jobs: ctx.jobs().to_vec(),
        stages_debug: format!("{:?}", ctx.all_stages()),
        virtual_trace: ctx
            .trace_sink()
            .chrome_json_filtered(ClockFilter::VirtualOnly),
        // Pool counters are wall-clock diagnostics and legitimately differ
        // between modes; stage rows are virtual-clock data and must not.
        summary_stages: format!("{:?}", summary.stages),
        total_s_bits: summary.total_s.to_bits(),
    }
}

fn assert_flat_topology_equivalent(w: &dyn Workload) {
    // Reference: the default spec (no topology stated), barrier mode,
    // single worker — exactly what every figure before netsim observed.
    let reference = observe(w, false, false, false, 1);
    assert!(
        !reference.virtual_trace.is_empty(),
        "{}: traced run produced no events",
        w.name()
    );
    for workers in [1, 8] {
        for pipeline in [false, true] {
            for batch in [false, true] {
                let what = format!(
                    "{}: explicit flat, pipeline {pipeline}, batch {batch}, workers {workers}",
                    w.name()
                );
                let got = observe(w, true, pipeline, batch, workers);
                assert_jobs_bit_identical(&reference.jobs, &got.jobs, &what);
                assert_eq!(
                    reference.stages_debug, got.stages_debug,
                    "{what}: stage metrics diverged"
                );
                assert_eq!(
                    reference.virtual_trace, got.virtual_trace,
                    "{what}: virtual trace slice diverged"
                );
                assert_eq!(
                    reference.summary_stages, got.summary_stages,
                    "{what}: summary stage rows diverged"
                );
                assert_eq!(
                    reference.total_s_bits, got.total_s_bits,
                    "{what}: total virtual time diverged"
                );
            }
        }
    }
}

#[test]
fn kmeans_flat_topology_matches_default() {
    assert_flat_topology_equivalent(&KMeans::new(KMeansConfig::small()));
}

#[test]
fn pca_flat_topology_matches_default() {
    assert_flat_topology_equivalent(&Pca::new(PcaConfig::small()));
}

#[test]
fn sql_flat_topology_matches_default() {
    assert_flat_topology_equivalent(&Sql::new(SqlConfig::small()));
}

#[test]
fn logreg_flat_topology_matches_default() {
    assert_flat_topology_equivalent(&LogReg::new(LogRegConfig::small()));
}
