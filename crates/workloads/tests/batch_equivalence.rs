//! The columnar data plane must be a pure host-side optimization: for
//! every paper workload, `--batch on` and `--batch off` must produce
//! bit-identical simulated results — job/stage metrics, per-task virtual
//! durations, and the virtual-clock slice of the Chrome trace — at any
//! host worker count, in both the barrier and pipelined engines. Only
//! wall-clock changes.

use chopper::Workload;
use engine::{ClockFilter, Context, EngineOptions, JobMetrics, TraceSink, WorkloadConf};
use simcluster::uniform_cluster;
use workloads::{KMeans, KMeansConfig, LogReg, LogRegConfig, Pca, PcaConfig, Sql, SqlConfig};

fn options(batch: bool, pipeline: bool, workers: usize) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(3, 4, 2.0),
        default_parallelism: 8,
        workers,
        trace: TraceSink::enabled(),
        pipeline,
        batch,
        ..EngineOptions::default()
    }
}

fn assert_jobs_bit_identical(a: &[JobMetrics], b: &[JobMetrics], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: job count");
    for (ja, jb) in a.iter().zip(b) {
        assert!(
            ja.start.to_bits() == jb.start.to_bits() && ja.end.to_bits() == jb.end.to_bits(),
            "{what}: job {} timing diverged",
            ja.name
        );
        assert_eq!(ja.stages.len(), jb.stages.len(), "{what}: stage count");
        for (sa, sb) in ja.stages.iter().zip(&jb.stages) {
            assert!(
                sa.start.to_bits() == sb.start.to_bits() && sa.end.to_bits() == sb.end.to_bits(),
                "{what}: stage {} timing diverged",
                sa.name
            );
            assert_eq!(
                sa.task_durations.len(),
                sb.task_durations.len(),
                "{what}: stage {} task count",
                sa.name
            );
            for (da, db) in sa.task_durations.iter().zip(&sb.task_durations) {
                assert!(
                    da.to_bits() == db.to_bits(),
                    "{what}: stage {} task duration diverged",
                    sa.name
                );
            }
        }
    }
}

/// Everything virtual-clock observable about a finished context, in a
/// comparable form. `StageMetrics` carries no `PartialEq`, so stages are
/// compared through their `Debug` rendering (f64 `Debug` is a shortest
/// round-trip form: distinct bit patterns render distinctly).
struct Observed {
    jobs: Vec<JobMetrics>,
    stages_debug: String,
    virtual_trace: String,
    summary_stages: String,
    total_s_bits: u64,
}

fn observe(w: &dyn Workload, batch: bool, pipeline: bool, workers: usize) -> Observed {
    let ctx: Context = w.run(
        &options(batch, pipeline, workers),
        &WorkloadConf::new(),
        1.0,
    );
    let summary = ctx.trace_summary();
    Observed {
        jobs: ctx.jobs().to_vec(),
        stages_debug: format!("{:?}", ctx.all_stages()),
        virtual_trace: ctx
            .trace_sink()
            .chrome_json_filtered(ClockFilter::VirtualOnly),
        // Pool counters are wall-clock diagnostics and legitimately differ
        // between modes; stage rows are virtual-clock data and must not.
        summary_stages: format!("{:?}", summary.stages),
        total_s_bits: summary.total_s.to_bits(),
    }
}

fn assert_batch_equivalent(w: &dyn Workload) {
    // Reference: the row-at-a-time barrier engine on one worker — the
    // slowest, simplest configuration every other mode must reproduce.
    let reference = observe(w, false, false, 1);
    assert!(
        !reference.virtual_trace.is_empty(),
        "{}: traced run produced no events",
        w.name()
    );
    for workers in [1, 8] {
        for pipeline in [false, true] {
            for batch in [false, true] {
                if !batch && !pipeline && workers == 1 {
                    continue; // that's the reference itself
                }
                let what = format!(
                    "{}: batch {batch}, pipeline {pipeline}, workers {workers}",
                    w.name()
                );
                let got = observe(w, batch, pipeline, workers);
                assert_jobs_bit_identical(&reference.jobs, &got.jobs, &what);
                assert_eq!(
                    reference.stages_debug, got.stages_debug,
                    "{what}: stage metrics diverged"
                );
                assert_eq!(
                    reference.virtual_trace, got.virtual_trace,
                    "{what}: virtual trace slice diverged"
                );
                assert_eq!(
                    reference.summary_stages, got.summary_stages,
                    "{what}: summary stage rows diverged"
                );
                assert_eq!(
                    reference.total_s_bits, got.total_s_bits,
                    "{what}: total virtual time diverged"
                );
            }
        }
    }
}

#[test]
fn kmeans_batched_matches_rows() {
    assert_batch_equivalent(&KMeans::new(KMeansConfig::small()));
}

#[test]
fn pca_batched_matches_rows() {
    assert_batch_equivalent(&Pca::new(PcaConfig::small()));
}

#[test]
fn sql_batched_matches_rows() {
    assert_batch_equivalent(&Sql::new(SqlConfig::small()));
}

#[test]
fn logreg_batched_matches_rows() {
    assert_batch_equivalent(&LogReg::new(LogRegConfig::small()));
}
