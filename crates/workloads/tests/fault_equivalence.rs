//! Fault injection must never change what a workload computes. For every
//! paper workload and every shipped fault plan, a faulted run must
//! produce the same results and the same placement-independent byte
//! tables as the fault-free run — only simulated timings, placements,
//! and the recovery trace may differ. On top of that, faulted execution
//! itself must stay deterministic: the same plan and seed must replay
//! the same injected faults and the same virtual-clock trace across
//! pipeline on/off and any host worker count.

use chopper::Workload;
use engine::{ClockFilter, Context, EngineOptions, FaultPlan, NodeLoss, TraceSink, WorkloadConf};
use simcluster::uniform_cluster;
use std::fmt::Write as _;
use workloads::{KMeans, KMeansConfig, LogReg, LogRegConfig, Pca, PcaConfig, Sql, SqlConfig};

const SMOKE: &str = include_str!("../../../plans/plan_smoke.plan");
const LOSSY: &str = include_str!("../../../plans/plan_lossy.plan");

fn plan(text: &str) -> FaultPlan {
    FaultPlan::from_text(text).expect("shipped plan parses")
}

fn small_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(KMeans::new(KMeansConfig::small())),
        Box::new(Pca::new(PcaConfig::small())),
        Box::new(Sql::new(SqlConfig::small())),
        Box::new(LogReg::new(LogRegConfig::small())),
    ]
}

fn options(pipeline: bool, workers: usize, faults: Option<FaultPlan>) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(3, 4, 2.0),
        default_parallelism: 8,
        workers,
        trace: TraceSink::enabled(),
        pipeline,
        faults,
        ..EngineOptions::default()
    }
}

fn run(w: &dyn Workload, pipeline: bool, workers: usize, faults: Option<FaultPlan>) -> Context {
    w.run(
        &options(pipeline, workers, faults),
        &WorkloadConf::new(),
        1.0,
    )
}

/// The placement- and timing-independent view of a finished run: job and
/// stage structure plus every byte/record table. This is exactly the set
/// of quantities a fault plan must not move — durations, placements, and
/// remote-read splits legitimately change under faults.
fn byte_table(ctx: &Context) -> String {
    let mut s = String::new();
    for j in ctx.jobs() {
        writeln!(s, "job {} ({} stages)", j.name, j.stages.len()).unwrap();
        for m in &j.stages {
            writeln!(
                s,
                "  {} kind={:?} tasks={} in={}r/{}B out={}r/{}B shuffle_r={}B shuffle_w={}B",
                m.name,
                m.kind,
                m.num_tasks,
                m.input_records,
                m.input_bytes,
                m.output_records,
                m.output_bytes,
                m.shuffle_read_bytes,
                m.shuffle_write_bytes
            )
            .unwrap();
        }
    }
    s
}

/// Everything virtual-clock observable, for faulted-vs-faulted bit
/// comparisons (same plan, different engine mode / worker count).
fn virtual_view(ctx: &Context) -> (String, String) {
    (
        format!("{:?}", ctx.all_stages()),
        ctx.trace_sink()
            .chrome_json_filtered(ClockFilter::VirtualOnly),
    )
}

/// Shared matrix check for one shipped plan: every faulted configuration
/// must (a) match the fault-free run's byte tables and (b) be bit-equal
/// to the faulted reference on every virtual-clock observable.
fn assert_plan_equivalent(text: &str) {
    let p = plan(text);
    for w in small_workloads() {
        let clean = byte_table(&run(w.as_ref(), false, 1, None));
        let reference = run(w.as_ref(), false, 1, Some(p.clone()));
        assert_eq!(
            clean,
            byte_table(&reference),
            "{}: faults changed a byte table",
            w.name()
        );
        let (ref_stages, ref_trace) = virtual_view(&reference);
        assert!(!ref_trace.is_empty(), "{}: no trace events", w.name());
        for workers in [1, 8] {
            for pipeline in [false, true] {
                if !pipeline && workers == 1 {
                    continue; // that's the reference itself
                }
                let what = format!("{}: pipeline {pipeline}, workers {workers}", w.name());
                let got = run(w.as_ref(), pipeline, workers, Some(p.clone()));
                assert_eq!(clean, byte_table(&got), "{what}: byte table diverged");
                let (stages, trace) = virtual_view(&got);
                assert_eq!(ref_stages, stages, "{what}: stage metrics diverged");
                assert_eq!(ref_trace, trace, "{what}: virtual trace diverged");
                assert_eq!(
                    reference.fault_counters(),
                    got.fault_counters(),
                    "{what}: injected faults diverged"
                );
            }
        }
    }
}

#[test]
fn plan_smoke_preserves_results_across_modes_and_workers() {
    assert_plan_equivalent(SMOKE);
}

#[test]
fn plan_smoke_injects_retries_and_corruption() {
    let p = plan(SMOKE);
    let ctx = run(&Sql::new(SqlConfig::small()), true, 8, Some(p));
    let fc = ctx.fault_counters();
    assert!(fc.retried_tasks > 0, "8% failure rate must retry: {fc:?}");
    assert!(fc.corrupt_chunks > 0, "3% corruption must trigger: {fc:?}");
    assert_eq!(fc.stragglers_applied, 1);
    assert_eq!(fc.nodes_lost, 0);
}

#[test]
fn plan_lossy_preserves_results_across_modes_and_workers() {
    assert_plan_equivalent(LOSSY);
}

#[test]
fn plan_lossy_blacklists_the_node_on_every_workload() {
    let p = plan(LOSSY);
    for w in small_workloads() {
        let ctx = run(w.as_ref(), false, 1, Some(p.clone()));
        let fc = ctx.fault_counters();
        assert_eq!(fc.nodes_lost, 1, "{}: {fc:?}", w.name());
        assert!(fc.retried_tasks > 0, "{}: {fc:?}", w.name());
    }
}

#[test]
fn plan_lossy_mid_shuffle_recomputes_lost_map_outputs() {
    // Derive a loss time inside the last shuffle-producing stage from the
    // fault-free timeline, so the loss is applied at the consumer's stage
    // boundary while the producer's map outputs are still live — forcing
    // lineage recomputation rather than mere rescheduling.
    for w in small_workloads() {
        let clean = run(w.as_ref(), false, 1, None);
        let clean_table = byte_table(&clean);
        let target = clean
            .jobs()
            .iter()
            .flat_map(|j| j.stages.iter())
            .rfind(|s| s.shuffle_write_bytes > 0)
            .unwrap_or_else(|| panic!("{}: no shuffle-writing stage", w.name()));
        let at = 0.5 * (target.start + target.end);
        // Lose node 0: with 8 tasks on a 3×4-core cluster the scheduler
        // packs nodes 0 and 1, so node 0 always holds map outputs.
        let p = FaultPlan {
            node_loss: vec![NodeLoss { node: 0, at }],
            ..FaultPlan::default()
        };
        let ctx = run(w.as_ref(), false, 1, Some(p));
        let fc = ctx.fault_counters();
        assert_eq!(fc.nodes_lost, 1, "{}: {fc:?}", w.name());
        assert!(
            fc.recomputed_map_tasks > 0,
            "{}: map outputs on node 0 at t={at:.2} must be recomputed: {fc:?}",
            w.name()
        );
        assert_eq!(
            clean_table,
            byte_table(&ctx),
            "{}: recovery changed a byte table",
            w.name()
        );
    }
}

#[test]
fn invariants_inert_plan_is_bit_identical_to_no_plan() {
    let inert = FaultPlan::default();
    assert!(inert.is_inert());
    for w in small_workloads() {
        let clean = run(w.as_ref(), true, 2, None);
        let faulted = run(w.as_ref(), true, 2, Some(inert.clone()));
        let (clean_stages, clean_trace) = virtual_view(&clean);
        let (stages, trace) = virtual_view(&faulted);
        assert_eq!(
            clean_stages,
            stages,
            "{}: inert plan moved metrics",
            w.name()
        );
        assert_eq!(
            clean_trace,
            trace,
            "{}: inert plan moved the trace",
            w.name()
        );
    }
}

#[test]
fn invariants_speculation_never_double_counts_shuffle_bytes() {
    // A straggler plus speculative re-execution must not inflate any
    // shuffle byte table: speculative copies race, but only the winner's
    // output is committed.
    let straggler_only = FaultPlan::from_text("seed 9\nslow-node 1 6 1\n").unwrap();
    let with_speculation =
        FaultPlan::from_text("seed 9\nslow-node 1 6 1\nspeculation 1.5\n").unwrap();
    for w in small_workloads() {
        let base = run(w.as_ref(), false, 2, Some(straggler_only.clone()));
        let spec = run(w.as_ref(), false, 2, Some(with_speculation.clone()));
        assert_eq!(
            byte_table(&base),
            byte_table(&spec),
            "{}: speculation changed a byte table",
            w.name()
        );
    }
}
