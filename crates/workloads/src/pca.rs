//! The PCA workload (SparkBench analog, paper Section IV).
//!
//! "Both computation and network-intensive … involves multiple iterations
//! to compute a linearly uncorrelated set of vectors." The distributed
//! part follows the standard covariance decomposition:
//!
//! * **stage 0** — parse the input points from block storage and cache,
//! * **stages 1–2** — mean vector: map each point to a single-key partial
//!   sum, reduce, collect (one shuffle),
//! * **stages 3–4** — covariance matrix by row blocks: each centered point
//!   `x` flat-maps to `dim` records `(row r, x[r]·x)`, reduced per row
//!   (the shuffle-heavy phase),
//! * **stage 5** — a validation scan over an input sample,
//!
//! after which the driver runs power iteration with deflation on the
//! collected `dim × dim` covariance to extract the top components — real
//! math, verified against the generator's anisotropy in tests.

use crate::datagen::PointGen;
use chopper::Workload;
use engine::{Context, EngineOptions, GenFn, Key, Record, ReduceFn, Value, WorkloadConf};
use std::sync::Arc;

/// PCA workload parameters.
#[derive(Debug, Clone)]
pub struct PcaConfig {
    /// Total points at full scale.
    pub points: u64,
    /// Point dimensionality.
    pub dim: usize,
    /// Top components to extract.
    pub components: usize,
    /// Power-iteration sweeps per component.
    pub power_iters: usize,
    /// Data seed.
    pub seed: u64,
}

impl PcaConfig {
    /// Paper-shaped instance (input ratio vs. KMeans preserved from
    /// Table I: 27.6 GB vs 21.8 GB).
    pub fn paper() -> Self {
        PcaConfig {
            points: 360_000,
            dim: 16,
            components: 3,
            power_iters: 12,
            seed: 1606,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        PcaConfig {
            points: 6_000,
            dim: 5,
            components: 2,
            power_iters: 10,
            seed: 13,
        }
    }
}

/// Units per parsed record (stage 0; PCA's input is denser than KMeans').
const PARSE_COST: f64 = 0.10;
/// Units per record for the mean partial-sum map.
const MEAN_COST: f64 = 0.01;
/// Units per input record for the covariance row-block flat-map, per dim².
const COV_COST_PER_DIM2: f64 = 3.0e-4;
/// Units per record for covariance row merges, per dim.
const COV_MERGE_PER_DIM: f64 = 3.0e-4;
/// Units per record for the validation scan.
const SCAN_COST: f64 = 0.02;
/// Virtual serialized bytes per input record. Each generated record stands
/// in for a row group of the paper's 27.6 GB input; this constant keeps
/// Table I's PCA/KMeans input ratio (27.6/21.8 ≈ 1.27) at our scale.
const VIRTUAL_RECORD_BYTES: u64 = 257;

/// The PCA workload.
pub struct Pca {
    /// Parameters.
    pub config: PcaConfig,
}

/// Final state of a PCA run.
pub struct PcaResult {
    /// The finished engine context.
    pub ctx: Context,
    /// Mean vector.
    pub mean: Vec<f64>,
    /// Top principal components (unit vectors), strongest first.
    pub components: Vec<Vec<f64>>,
    /// Eigenvalues corresponding to the components.
    pub eigenvalues: Vec<f64>,
}

impl Pca {
    /// Creates the workload.
    pub fn new(config: PcaConfig) -> Self {
        Pca { config }
    }

    /// Runs the pipeline and extracts principal components.
    pub fn execute(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> PcaResult {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let cfg = &self.config;
        let n = ((cfg.points as f64 * scale) as u64).max(64);
        let dim = cfg.dim;
        // Anisotropic cloud: one dominant center direction plus noise, so
        // the top component is predictable.
        let gen = PointGen::new(3, dim, 1.0, cfg.seed);

        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        // ---- stage 0: parse + cache ---------------------------------------
        let g = gen.clone();
        let gen_full: GenFn = Arc::new(move |i, parts| g.partition(n, i, parts));
        let src = ctx.text_file(
            "pca.data",
            n * VIRTUAL_RECORD_BYTES,
            gen_full,
            PARSE_COST,
            "parse-points",
        );
        let points = ctx.maybe_insert_repartition(src);
        ctx.cache(points);
        ctx.count(points, "load");

        // ---- stages 1–2: mean vector --------------------------------------
        let sum_vectors: ReduceFn = Arc::new(|a: &Value, b: &Value| match (a, b) {
            (Value::Pair(sa, ca), Value::Pair(sb, cb)) => {
                let s: Vec<f64> = sa
                    .as_vector()
                    .iter()
                    .zip(sb.as_vector())
                    .map(|(x, y)| x + y)
                    .collect();
                Value::Pair(
                    Box::new(Value::vector(s)),
                    Box::new(Value::Int(ca.as_int() + cb.as_int())),
                )
            }
            other => panic!("malformed mean accumulator {other:?}"),
        });
        // A few pseudo-keys keep the reduce parallel without a full
        // shuffle of the raw points.
        let mean_map = ctx.map(
            points,
            Arc::new(|r: &Record| {
                let k = match r.key {
                    Key::Int(i) => i % 4,
                    _ => 0,
                };
                Record::new(
                    Key::Int(k),
                    Value::Pair(
                        Box::new(Value::vector(r.value.as_vector().to_vec())),
                        Box::new(Value::Int(1)),
                    ),
                )
            }),
            MEAN_COST,
            "mean-partials",
        );
        let mean_red = ctx.reduce_by_key(mean_map, sum_vectors, None, MEAN_COST, "mean-reduce");
        let partials = ctx.collect(mean_red, "mean");
        let mut mean = vec![0.0; dim];
        let mut count = 0i64;
        for r in &partials {
            if let Value::Pair(s, c) = &r.value {
                for (m, v) in mean.iter_mut().zip(s.as_vector()) {
                    *m += v;
                }
                count += c.as_int();
            }
        }
        for m in &mut mean {
            *m /= count.max(1) as f64;
        }

        // ---- stages 3–4: covariance row blocks ----------------------------
        let mean_arc = Arc::new(mean.clone());
        let cov_cost = COV_COST_PER_DIM2 * (dim * dim) as f64;
        let cov_map = ctx.flat_map(
            points,
            {
                let mean = Arc::clone(&mean_arc);
                Arc::new(move |r: &Record| {
                    let x: Vec<f64> = r
                        .value
                        .as_vector()
                        .iter()
                        .zip(mean.iter())
                        .map(|(a, b)| a - b)
                        .collect();
                    (0..x.len())
                        .map(|row| {
                            let scaled: Vec<f64> = x.iter().map(|&v| v * x[row]).collect();
                            Record::new(Key::Int(row as i64), Value::vector(scaled))
                        })
                        .collect()
                })
            },
            cov_cost,
            "cov-rows",
        );
        let add_rows: ReduceFn = Arc::new(|a: &Value, b: &Value| {
            let s: Vec<f64> = a
                .as_vector()
                .iter()
                .zip(b.as_vector())
                .map(|(x, y)| x + y)
                .collect();
            Value::vector(s)
        });
        let cov_red = ctx.reduce_by_key(
            cov_map,
            add_rows,
            None,
            COV_MERGE_PER_DIM * dim as f64,
            "cov-reduce",
        );
        let rows = ctx.collect(cov_red, "covariance");
        let mut cov = vec![vec![0.0; dim]; dim];
        for r in &rows {
            if let Key::Int(row) = r.key {
                cov[row as usize] = r.value.as_vector().to_vec();
            }
        }
        for row in &mut cov {
            for v in row.iter_mut() {
                *v /= count.max(1) as f64;
            }
        }

        // ---- stage 5: validation scan over a sample ------------------------
        let sample_n = (n / 20).max(1);
        let g = gen.clone();
        let gen_sample: GenFn = Arc::new(move |i, parts| g.partition(sample_n, i, parts));
        let sample = ctx.text_file(
            "pca.sample",
            sample_n * VIRTUAL_RECORD_BYTES,
            gen_sample,
            PARSE_COST,
            "validate",
        );
        let checked = ctx.filter(
            sample,
            Arc::new(|r: &Record| r.value.as_vector().iter().all(|v| v.is_finite())),
            SCAN_COST,
            "validate",
        );
        ctx.count(checked, "validate");

        // ---- driver: power iteration with deflation ------------------------
        let (components, eigenvalues) =
            power_iteration(&cov, cfg.components, cfg.power_iters, cfg.seed);

        PcaResult {
            ctx,
            mean,
            components,
            eigenvalues,
        }
    }
}

/// Power iteration with deflation over a symmetric matrix.
fn power_iteration(
    matrix: &[Vec<f64>],
    components: usize,
    iters: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let dim = matrix.len();
    let mut m: Vec<Vec<f64>> = matrix.to_vec();
    let mut comps = Vec::new();
    let mut eigs = Vec::new();
    let mut rng = numeric::XorShift64::new(seed | 1);
    for _ in 0..components.min(dim) {
        let mut v: Vec<f64> = (0..dim).map(|_| rng.next_f64() - 0.5).collect();
        normalize(&mut v);
        for _ in 0..iters {
            let mut next = vec![0.0; dim];
            for (r, row) in m.iter().enumerate() {
                next[r] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
            }
            normalize(&mut next);
            v = next;
        }
        // Rayleigh quotient.
        let mv: Vec<f64> = m
            .iter()
            .map(|row| row.iter().zip(&v).map(|(a, b)| a * b).sum())
            .collect();
        let lambda: f64 = mv.iter().zip(&v).map(|(a, b)| a * b).sum();
        // Deflate: m -= λ v vᵀ.
        for r in 0..dim {
            for c in 0..dim {
                m[r][c] -= lambda * v[r] * v[c];
            }
        }
        comps.push(v);
        eigs.push(lambda);
    }
    (comps, eigs)
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

impl Workload for Pca {
    fn name(&self) -> &str {
        "pca"
    }

    fn full_input_bytes(&self) -> u64 {
        self.config.points * VIRTUAL_RECORD_BYTES
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        self.execute(opts, conf, scale).ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::uniform_cluster;

    fn opts() -> EngineOptions {
        EngineOptions {
            cluster: uniform_cluster(3, 8, 2.0),
            default_parallelism: 12,
            workers: 2,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn pipeline_runs_six_stages() {
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        // load, mean map+reduce, cov map+reduce, validate = 6 stages.
        assert_eq!(res.ctx.all_stages().len(), 6);
    }

    #[test]
    fn covariance_shuffle_is_the_heavy_one() {
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        let mean_shuffle = stages[1].shuffle_data();
        let cov_shuffle = stages[3].shuffle_data();
        assert!(cov_shuffle > mean_shuffle, "row-block shuffle dominates");
    }

    #[test]
    fn mean_matches_direct_computation() {
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let gen = PointGen::new(3, w.config.dim, 1.0, w.config.seed);
        let n = w.config.points;
        let mut direct = vec![0.0; w.config.dim];
        for i in 0..n {
            for (d, v) in direct.iter_mut().zip(gen.point(i)) {
                *d += v;
            }
        }
        for d in &mut direct {
            *d /= n as f64;
        }
        for (a, b) in res.mean.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-9, "mean mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn components_are_orthonormal() {
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert_eq!(res.components.len(), w.config.components);
        for (i, a) in res.components.iter().enumerate() {
            let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} not unit: {norm}");
            for b in res.components.iter().skip(i + 1) {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-3, "components not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_and_positive() {
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        for win in res.eigenvalues.windows(2) {
            assert!(
                win[0] >= win[1] - 1e-9,
                "eigenvalues must be non-increasing"
            );
        }
        assert!(res.eigenvalues[0] > 0.0);
    }

    #[test]
    fn top_component_captures_center_spread() {
        // The mixture's centers are far apart relative to the 1.0 spread,
        // so the top eigenvalue must exceed the isotropic noise variance.
        let w = Pca::new(PcaConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert!(
            res.eigenvalues[0] > 2.0,
            "top eigenvalue should reflect between-center variance, got {}",
            res.eigenvalues[0]
        );
    }

    #[test]
    fn deterministic_runs() {
        let w = Pca::new(PcaConfig::small());
        let a = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let b = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert_eq!(a.components, b.components);
        assert_eq!(a.ctx.clock().to_bits(), b.ctx.clock().to_bits());
    }
}
