//! SparkBench-style workloads over the mini DAG engine.
//!
//! The three workloads the CHOPPER paper evaluates (Section IV / Table I),
//! rebuilt on the reproduction engine with the same stage structure the
//! paper reports:
//!
//! * [`kmeans`] — 20 stages: heavy parse (stage 0), eleven light prep
//!   passes (1–11), three shuffling Lloyd iterations (12–17), final
//!   histogram (18–19).
//! * [`pca`] — mean + covariance row-block shuffles, driver-side power
//!   iteration; computation- and network-intensive.
//! * [`sql`] — scan/aggregate/join over Zipf-skewed tables; the join is
//!   narrow over two cached co-partitionable aggregates (Figs. 9–10).
//! * [`logreg`] — logistic regression by distributed gradient descent, an
//!   extra iterative subject beyond the paper's three.
//! * [`skewagg`] — byte- and count-skewed group-by aggregations, the
//!   demonstration subject for the adaptive execution layer (in-job
//!   hot-partition splitting and between-job re-planning).
//!
//! All input data comes from the deterministic generators in [`datagen`];
//! rerunning any workload with the same seed reproduces results, shuffle
//! volumes, and virtual timings bit-for-bit.

pub mod datagen;
pub mod kmeans;
pub mod logreg;
pub mod pca;
pub mod skewagg;
pub mod sql;

pub use datagen::{HotTableGen, PointGen, TableGen};
pub use kmeans::{KMeans, KMeansConfig, KMeansResult};
pub use logreg::{LogReg, LogRegConfig, LogRegResult};
pub use pca::{Pca, PcaConfig, PcaResult};
pub use skewagg::{SkewAgg, SkewAggConfig, SkewAggResult};
pub use sql::{Sql, SqlConfig, SqlResult};
