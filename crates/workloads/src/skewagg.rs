//! The skewed-aggregation workload — the adaptive execution layer's
//! demonstration subject.
//!
//! Three jobs over two deterministic tables:
//!
//! * **job 0 — `hot-agg`**: a group-by aggregation over a byte-skewed
//!   table ([`crate::datagen::HotTableGen`]: uniform key frequencies, a
//!   contiguous low key range carrying `fat_factor ×` payloads) under a
//!   user-fixed **range** partitioner. Sampled range bounds equalize
//!   record *counts*, so the partition holding the fat key range is
//!   byte-hot — with `--adaptive on` the engine detects it from the
//!   published per-bucket byte columns and splits it into key-preserving
//!   sub-tasks; with `--adaptive off` the hot task serializes the stage.
//! * **jobs 1–2 — `freq-agg` ×2**: the same group-by aggregation, twice,
//!   over a Zipf count-skewed table with no explicit scheme (engine
//!   default: hash). The two rounds build structurally identical DAGs, so
//!   they share a stage signature — after round one, the installed replan
//!   hook sees the hash shuffle's hot write buckets and retunes the
//!   signature's scheme (hash → range, observed-cost partition count) for
//!   round two.
//!
//! Aggregates are order-insensitive per key and splitting is
//! key-preserving, so the sorted output tables — and [`SkewAggResult`]'s
//! fingerprint — are bit-identical between `--adaptive on` and `off`;
//! only the simulated timings differ.

use crate::datagen::{HotTableGen, TableGen};
use chopper::Workload;
use engine::{Context, EngineOptions, GenFn, Key, PartitionerSpec, Record, Value, WorkloadConf};
use std::sync::Arc;

/// Skewed-aggregation workload parameters.
#[derive(Debug, Clone)]
pub struct SkewAggConfig {
    /// Rows of the byte-skewed table at full scale.
    pub rows_hot: u64,
    /// Rows of the count-skewed table at full scale (per round).
    pub rows_freq: u64,
    /// Distinct keys in both tables.
    pub keys: usize,
    /// Contiguous low keys carrying the fat payload.
    pub fat_keys: usize,
    /// Thin-row payload bytes.
    pub payload: usize,
    /// Fat-row payload multiplier.
    pub fat_factor: usize,
    /// Zipf exponent of the count-skewed table.
    pub zipf: f64,
    /// User-fixed range partitions of the `hot-agg` job.
    pub partitions: usize,
    /// Data seed.
    pub seed: u64,
    /// Compute units per scanned row.
    pub scan_cost: f64,
    /// Compute units per grouped row (reduce-side collection). Charged
    /// per *record*, so count-balanced range partitions have balanced
    /// compute — the hot partition's excess is pure byte time.
    pub group_cost: f64,
    /// Compute units per group for the narrow summarization pass.
    pub agg_cost: f64,
}

impl SkewAggConfig {
    /// Full-size instance for the `fig_adaptive` benchmark: cheap
    /// per-row compute and very fat payloads, so on a bandwidth-scaled
    /// cluster the byte-hot partition's fetch time dominates its reduce
    /// stage and splitting it pays off end to end.
    pub fn paper() -> Self {
        SkewAggConfig {
            rows_hot: 60_000,
            rows_freq: 30_000,
            keys: 4096,
            fat_keys: 320,
            payload: 64,
            fat_factor: 192,
            zipf: 1.15,
            partitions: 16,
            seed: 71,
            scan_cost: 0.005,
            group_cost: 0.004,
            agg_cost: 0.001,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        SkewAggConfig {
            rows_hot: 6_000,
            rows_freq: 3_000,
            keys: 512,
            fat_keys: 48,
            payload: 8,
            fat_factor: 24,
            zipf: 1.25,
            partitions: 8,
            seed: 71,
            scan_cost: 0.12,
            group_cost: 0.02,
            agg_cost: 0.004,
        }
    }
}

/// The skewed-aggregation workload.
pub struct SkewAgg {
    /// Parameters.
    pub config: SkewAggConfig,
}

/// Final state of a run.
pub struct SkewAggResult {
    /// The finished engine context.
    pub ctx: Context,
    /// `(key, amount sum, row count)` of the byte-skew aggregation,
    /// sorted by key.
    pub hot_table: Vec<(i64, f64, u64)>,
    /// The same for the final count-skew aggregation round.
    pub freq_table: Vec<(i64, f64, u64)>,
}

impl SkewAggResult {
    /// FNV-1a fingerprint over both sorted tables — bit-identical results
    /// produce equal fingerprints, any divergence (values, order, counts)
    /// changes it.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for table in [&self.hot_table, &self.freq_table] {
            eat(table.len() as u64);
            for &(k, sum, n) in table.iter() {
                eat(k as u64);
                eat(sum.to_bits());
                eat(n);
            }
        }
        h
    }
}

/// Collapses a grouped record `(key, List(Pair(amount, payload), …))`
/// into `(key, Pair(sum, count))`.
fn summarize(r: &Record) -> Record {
    let Value::List(vals) = &r.value else {
        panic!("expected grouped values, got {:?}", r.value);
    };
    let mut sum = 0.0;
    for v in vals.iter() {
        match v {
            Value::Pair(amount, _) => sum += amount.as_float(),
            other => panic!("malformed row {other:?}"),
        }
    }
    Record::new(
        r.key.clone(),
        Value::Pair(
            Box::new(Value::Float(sum)),
            Box::new(Value::Int(vals.len() as i64)),
        ),
    )
}

/// Decodes a collected summary row.
fn summary_row(r: &Record) -> (i64, f64, u64) {
    match (&r.key, &r.value) {
        (Key::Int(k), Value::Pair(sum, n)) => (*k, sum.as_float(), n.as_int() as u64),
        other => panic!("malformed summary row {other:?}"),
    }
}

impl SkewAgg {
    /// Creates the workload.
    pub fn new(config: SkewAggConfig) -> Self {
        SkewAgg { config }
    }

    /// Runs the three jobs.
    pub fn execute(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> SkewAggResult {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let cfg = &self.config;
        let n_hot = ((cfg.rows_hot as f64 * scale) as u64).max(64);
        let n_freq = ((cfg.rows_freq as f64 * scale) as u64).max(64);

        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        // ---- job 0: byte-skewed aggregation under a fixed range scheme ----
        let hot_gen = HotTableGen::new(
            cfg.keys,
            cfg.fat_keys,
            cfg.payload,
            cfg.fat_factor,
            cfg.seed,
        );
        let g = hot_gen.clone();
        let gen_hot: GenFn = Arc::new(move |i, parts| g.partition(n_hot, i, parts));
        let hot = ctx.text_file(
            "skewagg.hot",
            hot_gen.bytes(n_hot),
            gen_hot,
            cfg.scan_cost,
            "scan-hot",
        );
        let grouped = ctx.group_by_key(
            hot,
            Some(PartitionerSpec::range(cfg.partitions)),
            cfg.group_cost,
            "group-hot",
        );
        let summarized = ctx.map_values(grouped, Arc::new(summarize), cfg.agg_cost, "sum-hot");
        let mut hot_table: Vec<(i64, f64, u64)> = ctx
            .collect(summarized, "hot-agg")
            .iter()
            .map(summary_row)
            .collect();
        hot_table.sort_by_key(|r| r.0);

        // ---- jobs 1–2: count-skewed aggregation, hash → adaptive retune ----
        let freq_gen = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed ^ 0xBEEF);
        let mut freq_table = Vec::new();
        for _round in 0..2 {
            let g = freq_gen.clone();
            let gen_freq: GenFn = Arc::new(move |i, parts| g.partition(n_freq, i, parts));
            // Identical tags each round → identical structural signatures,
            // so a scheme retuned after round one applies to round two.
            let freq = ctx.text_file(
                "skewagg.freq",
                freq_gen.bytes(n_freq),
                gen_freq,
                cfg.scan_cost,
                "scan-freq",
            );
            let grouped = ctx.group_by_key(freq, None, cfg.group_cost, "group-freq");
            let summarized = ctx.map_values(grouped, Arc::new(summarize), cfg.agg_cost, "sum-freq");
            let mut rows: Vec<(i64, f64, u64)> = ctx
                .collect(summarized, "freq-agg")
                .iter()
                .map(summary_row)
                .collect();
            rows.sort_by_key(|r| r.0);
            freq_table = rows;
        }

        SkewAggResult {
            ctx,
            hot_table,
            freq_table,
        }
    }
}

impl Workload for SkewAgg {
    fn name(&self) -> &str {
        "skewagg"
    }

    fn full_input_bytes(&self) -> u64 {
        let cfg = &self.config;
        let hot = HotTableGen::new(
            cfg.keys,
            cfg.fat_keys,
            cfg.payload,
            cfg.fat_factor,
            cfg.seed,
        );
        let freq = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed ^ 0xBEEF);
        hot.bytes(cfg.rows_hot) + 2 * freq.bytes(cfg.rows_freq)
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        self.execute(opts, conf, scale).ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::StageKind;
    use simcluster::uniform_cluster;

    fn opts(adaptive: bool) -> EngineOptions {
        EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: 8,
            workers: 2,
            adaptive,
            replan: adaptive.then(|| {
                chopper::replan_hook(chopper::ReplanOptions {
                    slots: 12,
                    ..chopper::ReplanOptions::default()
                })
            }),
            ..EngineOptions::default()
        }
    }

    #[test]
    fn three_jobs_six_stages() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let res = w.execute(&opts(false), &WorkloadConf::new(), 1.0);
        assert_eq!(res.ctx.jobs().len(), 3, "hot-agg + two freq-agg rounds");
        let stages = res.ctx.all_stages();
        assert_eq!(stages.len(), 6, "each job is a map + reduce pair");
        for pair in stages.chunks(2) {
            assert_eq!(pair[0].kind, StageKind::Source);
            assert_eq!(pair[1].kind, StageKind::Shuffle);
        }
    }

    #[test]
    fn aggregation_matches_direct_computation() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let res = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let cfg = &w.config;
        let gen = HotTableGen::new(
            cfg.keys,
            cfg.fat_keys,
            cfg.payload,
            cfg.fat_factor,
            cfg.seed,
        );
        let mut sums = std::collections::HashMap::new();
        for i in 0..cfg.rows_hot {
            let r = gen.record(i);
            if let (Key::Int(k), Value::Pair(a, _)) = (&r.key, &r.value) {
                let e = sums.entry(*k).or_insert((0.0, 0u64));
                e.0 += a.as_float();
                e.1 += 1;
            }
        }
        assert_eq!(res.hot_table.len(), sums.len());
        for (k, sum, n) in &res.hot_table {
            let (want_sum, want_n) = sums[k];
            assert_eq!(*n, want_n, "row count mismatch for key {k}");
            assert!((sum - want_sum).abs() < 1e-6, "sum mismatch for key {k}");
        }
    }

    #[test]
    fn adaptive_on_and_off_agree_bit_for_bit() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let on = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let off = w.execute(&opts(false), &WorkloadConf::new(), 1.0);
        assert_eq!(on.hot_table, off.hot_table);
        assert_eq!(on.freq_table, off.freq_table);
        assert_eq!(on.fingerprint(), off.fingerprint());
    }

    #[test]
    fn adaptive_beats_static_on_the_virtual_clock() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let on = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let off = w.execute(&opts(false), &WorkloadConf::new(), 1.0);
        let t_on = on.ctx.clock();
        let t_off = off.ctx.clock();
        assert!(
            t_on < t_off,
            "splitting the hot partition must shorten the simulated run: \
             on={t_on:.4}s off={t_off:.4}s"
        );
    }

    #[test]
    fn split_fires_on_the_hot_range_stage() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let on = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let stages = on.ctx.all_stages();
        // Stage 1 is the range group-by reduce: with adaptive on it runs
        // more virtual tasks than its physical partition count.
        assert!(
            stages[1].num_tasks > w.config.partitions,
            "hot partition should split: {} tasks over {} partitions",
            stages[1].num_tasks,
            w.config.partitions
        );
        let off = w.execute(&opts(false), &WorkloadConf::new(), 1.0);
        assert_eq!(off.ctx.all_stages()[1].num_tasks, w.config.partitions);
    }

    #[test]
    fn replan_retunes_the_freq_rounds() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let on = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let stages = on.ctx.all_stages();
        // Stage 3 is round one's hash group-by; stage 5 is round two's
        // after the replan hook saw round one's hot buckets.
        let round1 = &stages[3];
        let round2 = &stages[5];
        assert_eq!(
            round1.scheme.map(|s| s.kind),
            Some(engine::PartitionerKind::Hash)
        );
        assert_eq!(
            round2.scheme.map(|s| s.kind),
            Some(engine::PartitionerKind::Range),
            "replan should flip the hot hash stage to range"
        );
    }

    #[test]
    fn deterministic_runs() {
        let w = SkewAgg::new(SkewAggConfig::small());
        let a = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        let b = w.execute(&opts(true), &WorkloadConf::new(), 1.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.ctx.clock().to_bits(), b.ctx.clock().to_bits());
    }
}
