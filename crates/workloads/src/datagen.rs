//! Deterministic data generators (the SparkBench data-generator analog).
//!
//! Every generator is a pure function of `(seed, global record index)` —
//! crucially **independent of the partition count**, so retuning the number
//! of partitions never changes the data itself, only how it is split. All
//! randomness comes from a seeded xorshift generator; runs are exactly
//! reproducible.

use engine::{Key, Record, Value};
use numeric::XorShift64;

/// Monotone warp of `[0, 1]` used to make partition sizes uneven the way
/// real input splits are: `x + A·sin(2πmx)/(2πm)` has derivative
/// `1 + A·cos(2πmx)`, so with `|A| < 1` it stays strictly increasing while
/// split sizes vary between `(1−A)×` and `(1+A)×` the mean. This is what
/// gives small partition counts their straggler penalty (paper Fig. 3):
/// with one task per core, the fattest split defines the stage makespan,
/// while larger counts let the scheduler smooth the imbalance out.
fn warp(x: f64) -> f64 {
    const A: f64 = 0.7;
    const M: f64 = 13.0;
    x + A * (std::f64::consts::TAU * M * x).sin() / (std::f64::consts::TAU * M)
}

/// The record-index range `[start, end)` of partition `part` of `parts`
/// over `n` records, with realistic split-size variance. Consecutive
/// partitions tile `0..n` exactly; the union over all partitions is the
/// whole dataset regardless of `parts`.
pub fn skewed_range(n: u64, part: usize, parts: usize) -> (u64, u64) {
    assert!(part < parts, "partition index out of range");
    let lo = (warp(part as f64 / parts as f64) * n as f64).round() as u64;
    let hi = (warp((part + 1) as f64 / parts as f64) * n as f64).round() as u64;
    (lo.min(n), hi.min(n))
}

/// Per-record RNG: decorrelates consecutive indices via splitmix-style
/// scrambling of the seed.
fn record_rng(seed: u64, index: u64) -> XorShift64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    XorShift64::new(z ^ (z >> 31))
}

/// Standard-normal sample via Box–Muller.
fn normal(rng: &mut XorShift64) -> f64 {
    let u1 = rng.next_f64().max(1e-12);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gaussian-mixture generator for KMeans/PCA: `centers` cluster centers in
/// `dim` dimensions, isotropic `spread` around each.
#[derive(Debug, Clone)]
pub struct PointGen {
    /// Cluster centers.
    pub centers: Vec<Vec<f64>>,
    /// Standard deviation around each center.
    pub spread: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl PointGen {
    /// `k` deterministic centers on a scaled lattice in `dim` dimensions.
    pub fn new(k: usize, dim: usize, spread: f64, seed: u64) -> Self {
        assert!(k > 0 && dim > 0, "need at least one center and dimension");
        let mut rng = XorShift64::new(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1);
        let centers = (0..k)
            .map(|_| (0..dim).map(|_| (rng.next_f64() - 0.5) * 20.0).collect())
            .collect();
        PointGen {
            centers,
            spread,
            seed,
        }
    }

    /// The dimensionality of generated points.
    pub fn dim(&self) -> usize {
        self.centers[0].len()
    }

    /// The point at global index `i`: a sample around center `i % k`.
    pub fn point(&self, i: u64) -> Vec<f64> {
        let mut rng = record_rng(self.seed, i);
        let center = &self.centers[(i % self.centers.len() as u64) as usize];
        center
            .iter()
            .map(|&c| c + self.spread * normal(&mut rng))
            .collect()
    }

    /// The record at global index `i`: keyless vector payload.
    pub fn record(&self, i: u64) -> Record {
        Record::new(Key::Int(i as i64), Value::vector(self.point(i)))
    }

    /// Records for partition `part` of `parts` over `n` total points,
    /// with realistic split-size variance (see [`skewed_range`]).
    pub fn partition(&self, n: u64, part: usize, parts: usize) -> Vec<Record> {
        let (start, end) = skewed_range(n, part, parts);
        (start..end).map(|i| self.record(i)).collect()
    }

    /// Approximate serialized bytes of `n` points (for block-store sizing).
    pub fn bytes(&self, n: u64) -> u64 {
        n * (self.dim() as u64 * 8 + 22)
    }
}

/// Zipf-distributed keyed-row generator for the SQL workload.
#[derive(Debug, Clone)]
pub struct TableGen {
    cdf: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Bytes of string payload per row.
    pub payload: usize,
}

impl TableGen {
    /// A table whose keys follow a Zipf(`exponent`) law over `keys`
    /// distinct values. `exponent = 0` is uniform; ~1 is web-like skew.
    pub fn new(keys: usize, exponent: f64, payload: usize, seed: u64) -> Self {
        assert!(keys > 0, "need at least one key");
        let mut cdf = Vec::with_capacity(keys);
        let mut acc = 0.0;
        for k in 1..=keys {
            acc += 1.0 / (k as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        TableGen { cdf, seed, payload }
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.cdf.len()
    }

    /// The key of row `i` (Zipf-sampled).
    pub fn key(&self, i: u64) -> i64 {
        let mut rng = record_rng(self.seed, i);
        let u = rng.next_f64();
        // First CDF entry >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as i64
    }

    /// The row at global index `i`: `(key, Pair(amount, payload))`.
    pub fn record(&self, i: u64) -> Record {
        let mut rng = record_rng(self.seed ^ 0xABCD, i);
        let amount = (rng.next_f64() * 1000.0 * 100.0).round() / 100.0;
        let payload: String = "x".repeat(self.payload);
        Record::new(
            Key::Int(self.key(i)),
            Value::Pair(
                Box::new(Value::Float(amount)),
                Box::new(Value::str(&payload)),
            ),
        )
    }

    /// Records for partition `part` of `parts` over `n` rows, with
    /// realistic split-size variance (see [`skewed_range`]).
    pub fn partition(&self, n: u64, part: usize, parts: usize) -> Vec<Record> {
        let (start, end) = skewed_range(n, part, parts);
        (start..end).map(|i| self.record(i)).collect()
    }

    /// Approximate serialized bytes of `n` rows.
    pub fn bytes(&self, n: u64) -> u64 {
        n * (self.payload as u64 + 40)
    }
}

/// Byte-skewed keyed-row generator for the adaptive-execution workload:
/// key *frequencies* are uniform, but a contiguous low range of keys
/// carries a payload `fat_factor ×` larger than the rest. Count-based
/// partitioning (and sampled range bounds, which equalize record counts)
/// cannot see the imbalance — the partition holding the fat key range is
/// byte-hot, which is exactly the condition the engine's hot-partition
/// splitter detects from published per-bucket byte columns.
#[derive(Debug, Clone)]
pub struct HotTableGen {
    /// Distinct keys (uniformly likely).
    pub keys: usize,
    /// Keys `0..fat_keys` carry the fat payload.
    pub fat_keys: usize,
    /// String payload bytes of a thin row.
    pub payload: usize,
    /// Fat-row payload multiplier.
    pub fat_factor: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl HotTableGen {
    /// A table over `keys` uniform keys where keys `0..fat_keys` carry
    /// `fat_factor × payload` bytes.
    pub fn new(keys: usize, fat_keys: usize, payload: usize, fat_factor: usize, seed: u64) -> Self {
        assert!(
            keys > 0 && fat_keys <= keys,
            "fat range must fit the key space"
        );
        assert!(fat_factor >= 1, "fat rows cannot be thinner than thin rows");
        HotTableGen {
            keys,
            fat_keys,
            payload,
            fat_factor,
            seed,
        }
    }

    /// The key of row `i` (uniform over `0..keys`).
    pub fn key(&self, i: u64) -> i64 {
        let mut rng = record_rng(self.seed, i);
        rng.next_below(self.keys as u64) as i64
    }

    /// The row at global index `i`: `(key, Pair(amount, payload))` where
    /// the payload is fat iff the key falls in the hot range.
    pub fn record(&self, i: u64) -> Record {
        let key = self.key(i);
        let mut rng = record_rng(self.seed ^ 0xF00D, i);
        let amount = (rng.next_f64() * 1000.0 * 100.0).round() / 100.0;
        let bytes = if (key as u64) < self.fat_keys as u64 {
            self.payload * self.fat_factor
        } else {
            self.payload
        };
        Record::new(
            Key::Int(key),
            Value::Pair(
                Box::new(Value::Float(amount)),
                Box::new(Value::str(&"x".repeat(bytes))),
            ),
        )
    }

    /// Records for partition `part` of `parts` over `n` rows, with
    /// realistic split-size variance (see [`skewed_range`]).
    pub fn partition(&self, n: u64, part: usize, parts: usize) -> Vec<Record> {
        let (start, end) = skewed_range(n, part, parts);
        (start..end).map(|i| self.record(i)).collect()
    }

    /// Approximate serialized bytes of `n` rows (expected payload mix).
    pub fn bytes(&self, n: u64) -> u64 {
        let fat_share = self.fat_keys as f64 / self.keys as f64;
        let mean_payload = self.payload as f64 * (1.0 + fat_share * (self.fat_factor as f64 - 1.0));
        n * (mean_payload as u64 + 40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_deterministic() {
        let g = PointGen::new(5, 8, 1.0, 42);
        assert_eq!(g.point(17), g.point(17));
        assert_ne!(g.point(17), g.point(18));
        let g2 = PointGen::new(5, 8, 1.0, 43);
        assert_ne!(g.point(17), g2.point(17), "seed changes data");
    }

    #[test]
    fn partitioning_does_not_change_the_data() {
        let g = PointGen::new(3, 4, 0.5, 7);
        let n = 100;
        let coarse: Vec<Record> = (0..4).flat_map(|p| g.partition(n, p, 4)).collect();
        let fine: Vec<Record> = (0..10).flat_map(|p| g.partition(n, p, 10)).collect();
        assert_eq!(coarse, fine, "same records regardless of split count");
        assert_eq!(coarse.len(), 100);
    }

    #[test]
    fn points_cluster_around_centers() {
        let g = PointGen::new(2, 4, 0.1, 11);
        // Point 0 belongs to center 0, point 1 to center 1.
        let p0 = g.point(0);
        let d0: f64 = p0
            .iter()
            .zip(&g.centers[0])
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        let d1: f64 = p0
            .iter()
            .zip(&g.centers[1])
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        assert!(d0 < d1, "point 0 is near its own center");
    }

    #[test]
    fn zipf_keys_are_skewed_toward_small_ids() {
        let g = TableGen::new(100, 1.2, 8, 3);
        let mut counts = vec![0u64; 100];
        for i in 0..20_000 {
            counts[g.key(i) as usize] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[90..].iter().sum();
        assert!(head > 5 * tail, "zipf head must dominate: {head} vs {tail}");
        assert!(counts.iter().all(|&c| c < 20_000), "but not a single key");
    }

    #[test]
    fn uniform_exponent_is_flat() {
        let g = TableGen::new(50, 0.0, 8, 5);
        let mut counts = vec![0u64; 50];
        for i in 0..20_000 {
            counts[g.key(i) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 20_000.0 / 50.0;
        assert!(max / mean < 1.5, "uniform keys should be balanced");
    }

    #[test]
    fn table_rows_have_expected_shape() {
        let g = TableGen::new(10, 1.0, 16, 9);
        let r = g.record(5);
        match (&r.key, &r.value) {
            (Key::Int(k), Value::Pair(amount, payload)) => {
                assert!((0..10).contains(k));
                assert!(amount.as_float() >= 0.0);
                assert!(matches!(&**payload, Value::Str(s) if s.len() == 16));
            }
            other => panic!("unexpected row shape {other:?}"),
        }
    }

    #[test]
    fn skewed_ranges_tile_exactly() {
        for parts in [1usize, 3, 7, 100] {
            let n = 10_000u64;
            let mut expected_start = 0u64;
            for p in 0..parts {
                let (lo, hi) = skewed_range(n, p, parts);
                assert_eq!(lo, expected_start, "partitions must tile contiguously");
                assert!(hi >= lo);
                expected_start = hi;
            }
            assert_eq!(expected_start, n, "last partition ends at n");
        }
    }

    #[test]
    fn skewed_ranges_vary_in_size() {
        let n = 100_000u64;
        let parts = 50;
        let sizes: Vec<u64> = (0..parts)
            .map(|p| {
                let (lo, hi) = skewed_range(n, p, parts);
                hi - lo
            })
            .collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        let mean = n as f64 / parts as f64;
        assert!(max / mean > 1.2, "fat splits exist: max={max} mean={mean}");
        assert!(min / mean < 0.8, "thin splits exist: min={min} mean={mean}");
    }

    #[test]
    fn hot_table_keys_are_uniform_but_bytes_are_not() {
        let g = HotTableGen::new(64, 8, 8, 16, 77);
        let mut counts = vec![0u64; 64];
        let mut bytes = vec![0u64; 64];
        for i in 0..20_000 {
            let r = g.record(i);
            let k = match &r.key {
                Key::Int(k) => *k as usize,
                other => panic!("unexpected key {other:?}"),
            };
            counts[k] += 1;
            if let Value::Pair(_, payload) = &r.value {
                if let Value::Str(s) = &**payload {
                    bytes[k] += s.len() as u64;
                }
            }
        }
        let max_count = *counts.iter().max().unwrap() as f64;
        let mean_count = 20_000.0 / 64.0;
        assert!(max_count / mean_count < 1.5, "key frequencies stay uniform");
        let fat: u64 = bytes[..8].iter().sum();
        let thin: u64 = bytes[8..].iter().sum();
        assert!(
            fat > 2 * thin,
            "fat key range dominates bytes: {fat} vs {thin}"
        );
    }

    #[test]
    fn hot_table_is_deterministic_and_partition_invariant() {
        let g = HotTableGen::new(32, 4, 8, 8, 5);
        let coarse: Vec<Record> = (0..2).flat_map(|p| g.partition(200, p, 2)).collect();
        let fine: Vec<Record> = (0..7).flat_map(|p| g.partition(200, p, 7)).collect();
        assert_eq!(coarse, fine, "same rows regardless of split count");
        assert_eq!(coarse.len(), 200);
    }

    #[test]
    fn byte_estimates_scale_linearly() {
        let g = PointGen::new(2, 10, 1.0, 1);
        assert_eq!(g.bytes(200), 2 * g.bytes(100));
        let t = TableGen::new(10, 1.0, 32, 1);
        assert!(t.bytes(1000) > 32_000);
    }
}
