//! The SQL workload (SparkBench analog, paper Sections IV and IV-C).
//!
//! "SQL is compute intensive for count and aggregation operations and
//! shuffle intensive in the join phase." The pipeline is the paper's
//! five-stage layout (Figs. 9–10):
//!
//! * **stages 0–1** — scan the `orders` table, aggregate revenue per key
//!   (map stage + reduce stage); the aggregate is cached,
//! * **stages 2–3** — the same for the `returns` table,
//! * **stage 4** — join the two aggregates. Both sides are cached under
//!   the same scheme, so the join is narrow (no third shuffle) — under
//!   CHOPPER's co-partition-aware scheduling both sides of each partition
//!   live on the same node and the join reads everything locally, which is
//!   exactly the stage-4 behaviour of Fig. 10.
//!
//! Keys are Zipf-skewed: hot keys make the hash partitioner's buckets
//! uneven while the sampled range partitioner adapts its bounds — giving
//! CHOPPER's partitioner *choice* (Algorithm 1) something real to decide.

use crate::datagen::TableGen;
use chopper::Workload;
use engine::{Context, EngineOptions, GenFn, Key, Record, ReduceFn, Value, WorkloadConf};
use std::sync::Arc;

/// SQL workload parameters.
#[derive(Debug, Clone)]
pub struct SqlConfig {
    /// Rows in the `orders` table at full scale.
    pub orders: u64,
    /// Rows in the `returns` table at full scale.
    pub returns: u64,
    /// Distinct join keys.
    pub keys: usize,
    /// Zipf exponent of the key distribution (0 = uniform).
    pub zipf: f64,
    /// String payload bytes per row.
    pub payload: usize,
    /// Data seed.
    pub seed: u64,
}

impl SqlConfig {
    /// Paper-shaped instance (input ratio vs. KMeans preserved from
    /// Table I: 34.5 GB vs 21.8 GB).
    pub fn paper() -> Self {
        SqlConfig {
            orders: 500_000,
            returns: 250_000,
            keys: 40_000,
            zipf: 0.9,
            payload: 24,
            seed: 3405,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        SqlConfig {
            orders: 8_000,
            returns: 4_000,
            keys: 500,
            zipf: 1.3,
            payload: 8,
            seed: 5,
        }
    }
}

/// Units per scanned row (parse + predicate evaluation).
const SCAN_COST: f64 = 0.12;
/// Units per row for aggregate merges.
const AGG_COST: f64 = 0.008;
/// Units per row pair for the join probe.
const JOIN_COST: f64 = 0.002;
/// Virtual serialized bytes per table row, keeping Table I's SQL/KMeans
/// input ratio (34.5/21.8 ≈ 1.58) at our scale.
const VIRTUAL_RECORD_BYTES: u64 = 154;

/// The SQL workload.
pub struct Sql {
    /// Parameters.
    pub config: SqlConfig,
}

/// Final state of a SQL run.
pub struct SqlResult {
    /// The finished engine context.
    pub ctx: Context,
    /// `(key, orders revenue, returns revenue)` rows of the join output.
    pub joined: Vec<(i64, f64, f64)>,
}

impl Sql {
    /// Creates the workload.
    pub fn new(config: SqlConfig) -> Self {
        Sql { config }
    }

    fn sum_amounts() -> ReduceFn {
        Arc::new(|a: &Value, b: &Value| Value::Float(a.as_float() + b.as_float()))
    }

    /// Runs the five-stage pipeline.
    pub fn execute(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> SqlResult {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let cfg = &self.config;
        let n_orders = ((cfg.orders as f64 * scale) as u64).max(16);
        let n_returns = ((cfg.returns as f64 * scale) as u64).max(16);

        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        // ---- stages 0–1: aggregate orders ---------------------------------
        let orders_gen = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed);
        let g = orders_gen.clone();
        let gen_orders: GenFn = Arc::new(move |i, parts| g.partition(n_orders, i, parts));
        let orders = ctx.text_file(
            "sql.orders",
            n_orders * VIRTUAL_RECORD_BYTES,
            gen_orders,
            SCAN_COST,
            "scan-orders",
        );
        // Project rows to (key, amount) — the aggregation input.
        let order_amounts = ctx.map_values(
            orders,
            Arc::new(|r: &Record| {
                let amount = match &r.value {
                    Value::Pair(a, _) => a.as_float(),
                    other => panic!("malformed row {other:?}"),
                };
                Record::new(r.key.clone(), Value::Float(amount))
            }),
            AGG_COST,
            "project-orders",
        );
        let order_totals = ctx.reduce_by_key(
            order_amounts,
            Self::sum_amounts(),
            None,
            AGG_COST,
            "agg-orders",
        );
        ctx.cache(order_totals);
        ctx.count(order_totals, "orders-aggregate");

        // ---- stages 2–3: aggregate returns --------------------------------
        let returns_gen = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed ^ 0xDEAD);
        let g = returns_gen.clone();
        let gen_returns: GenFn = Arc::new(move |i, parts| g.partition(n_returns, i, parts));
        let returns = ctx.text_file(
            "sql.returns",
            n_returns * VIRTUAL_RECORD_BYTES,
            gen_returns,
            SCAN_COST,
            "scan-returns",
        );
        let return_amounts = ctx.map_values(
            returns,
            Arc::new(|r: &Record| {
                let amount = match &r.value {
                    Value::Pair(a, _) => a.as_float(),
                    other => panic!("malformed row {other:?}"),
                };
                Record::new(r.key.clone(), Value::Float(amount))
            }),
            AGG_COST,
            "project-returns",
        );
        let return_totals = ctx.reduce_by_key(
            return_amounts,
            Self::sum_amounts(),
            None,
            AGG_COST,
            "agg-returns",
        );
        ctx.cache(return_totals);
        ctx.count(return_totals, "returns-aggregate");

        // ---- stage 4: join -------------------------------------------------
        let joined_rdd = ctx.join(order_totals, return_totals, None, JOIN_COST, "join-revenue");
        let out = ctx.collect(joined_rdd, "join");
        let mut joined: Vec<(i64, f64, f64)> = out
            .iter()
            .map(|r| match (&r.key, &r.value) {
                (Key::Int(k), Value::Pair(o, ret)) => (*k, o.as_float(), ret.as_float()),
                other => panic!("malformed join row {other:?}"),
            })
            .collect();
        joined.sort_by_key(|a| a.0);

        SqlResult { ctx, joined }
    }
}

impl Workload for Sql {
    fn name(&self) -> &str {
        "sql"
    }

    fn full_input_bytes(&self) -> u64 {
        (self.config.orders + self.config.returns) * VIRTUAL_RECORD_BYTES
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        self.execute(opts, conf, scale).ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::StageKind;
    use simcluster::uniform_cluster;

    fn opts() -> EngineOptions {
        EngineOptions {
            cluster: uniform_cluster(3, 8, 2.0),
            default_parallelism: 12,
            workers: 2,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn pipeline_is_five_stages_with_narrow_join() {
        let w = Sql::new(SqlConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        assert_eq!(stages.len(), 5, "scan+agg ×2 plus the join");
        assert_eq!(stages[4].kind, StageKind::Join);
        // Narrow join: stage 4 fetches the cached sides but writes no
        // shuffle and triggers no extra map stages.
        assert_eq!(stages[4].shuffle_write_bytes, 0);
        assert!(stages[4].shuffle_read_bytes > 0);
    }

    #[test]
    fn stages_zero_to_three_shuffle() {
        let w = Sql::new(SqlConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        for s in &stages[..4] {
            assert!(s.shuffle_data() > 0, "stage {} should shuffle", s.stage_id);
        }
    }

    #[test]
    fn join_matches_direct_aggregation() {
        let w = Sql::new(SqlConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        // Direct computation.
        let cfg = &w.config;
        let og = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed);
        let rg = TableGen::new(cfg.keys, cfg.zipf, cfg.payload, cfg.seed ^ 0xDEAD);
        let mut o_tot = std::collections::HashMap::new();
        for i in 0..cfg.orders {
            let r = og.record(i);
            if let (Key::Int(k), Value::Pair(a, _)) = (&r.key, &r.value) {
                *o_tot.entry(*k).or_insert(0.0) += a.as_float();
            }
        }
        let mut r_tot = std::collections::HashMap::new();
        for i in 0..cfg.returns {
            let r = rg.record(i);
            if let (Key::Int(k), Value::Pair(a, _)) = (&r.key, &r.value) {
                *r_tot.entry(*k).or_insert(0.0) += a.as_float();
            }
        }
        let expected: usize = o_tot.keys().filter(|k| r_tot.contains_key(k)).count();
        assert_eq!(res.joined.len(), expected);
        for (k, o, r) in &res.joined {
            assert!(
                (o - o_tot[k]).abs() < 1e-6,
                "orders total mismatch for key {k}"
            );
            assert!(
                (r - r_tot[k]).abs() < 1e-6,
                "returns total mismatch for key {k}"
            );
        }
    }

    #[test]
    fn zipf_skew_shows_in_task_durations() {
        let w = Sql::new(SqlConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        // The orders aggregation reduce (stage 1) sees the hot keys.
        let skew = stages[1].task_skew();
        assert!(
            skew > 1.2,
            "zipf keys should skew hash buckets, skew={skew}"
        );
    }

    #[test]
    fn copartitioning_localizes_the_join() {
        let run = |copart: bool| {
            let mut o = opts();
            o.copartition_scheduling = copart;
            // More partitions than cores → multi-wave placement, so the two
            // aggregation stages land differently without anchoring.
            o.default_parallelism = 60;
            let w = Sql::new(SqlConfig::small());
            let res = w.execute(&o, &WorkloadConf::new(), 1.0);
            let stages: Vec<_> = res.ctx.all_stages().into_iter().cloned().collect();
            stages[4].remote_read_bytes
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with, 0, "anchored sides make the join fully local");
        assert!(without > 0, "vanilla placement pays network on the join");
    }

    #[test]
    fn deterministic_runs() {
        let w = Sql::new(SqlConfig::small());
        let a = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let b = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert_eq!(a.joined, b.joined);
        assert_eq!(a.ctx.clock().to_bits(), b.ctx.clock().to_bits());
    }

    #[test]
    fn scale_reduces_rows() {
        let w = Sql::new(SqlConfig::small());
        let full = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let half = w.execute(&opts(), &WorkloadConf::new(), 0.5);
        assert!(half.ctx.all_stages()[0].input_records < full.ctx.all_stages()[0].input_records);
    }
}
