//! The KMeans workload (SparkBench analog, paper Sections II-B and IV).
//!
//! Reproduces the paper's 20-stage layout:
//!
//! * **stage 0** — parse the full input from block storage and cache the
//!   point RDD (the dominant stage: 372 s under vanilla Spark, Table II),
//! * **stages 1–11** — eleven light preparation passes, each a separate
//!   scan of a small input sample (statistics/initialization work). These
//!   are narrow, shuffle-free stages with individually tunable split
//!   counts — matching Table III, where CHOPPER assigns stages 1–11 their
//!   own partition counts,
//! * **stages 12–17** — three Lloyd iterations, each a map ("assign",
//!   over the cached points) plus a reduce-by-key ("update"): the only
//!   shuffle stages, as in Fig. 4. All iterations share stage signatures,
//!   so one configuration entry retunes them all,
//! * **stages 18–19** — final cluster-assignment histogram (map + reduce).
//!
//! The clustering itself is real: Lloyd iterations run on actual
//! Gaussian-mixture data and converge; the returned [`KMeansResult`]
//! carries the final centers for verification.

use crate::datagen::PointGen;
use chopper::Workload;
use engine::{Context, EngineOptions, GenFn, Key, MapFn, Record, ReduceFn, Value, WorkloadConf};
use std::sync::Arc;

/// Distinct tags for the prep passes so each gets its own stage signature
/// (and thus its own Table III row).
const PREP_TAGS: [&str; 11] = [
    "prep-00", "prep-01", "prep-02", "prep-03", "prep-04", "prep-05", "prep-06", "prep-07",
    "prep-08", "prep-09", "prep-10",
];

/// KMeans workload parameters.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Total points at full scale.
    pub points: u64,
    /// Point dimensionality.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations (paper layout: 3 → stages 12–17).
    pub iterations: usize,
    /// Preparation passes (paper layout: 11 → stages 1–11).
    pub prep_passes: usize,
    /// Fraction of the input scanned by each prep pass.
    pub sample_fraction: f64,
    /// Data seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// The paper-shaped instance: 20 stages, input scaled down from the
    /// paper's 21.8 GB to a volume a single build machine materializes
    /// comfortably (virtual task costs are calibrated so the simulated
    /// times land in the paper's range).
    pub fn paper() -> Self {
        KMeansConfig {
            points: 400_000,
            dim: 20,
            k: 10,
            iterations: 3,
            prep_passes: 11,
            sample_fraction: 0.03,
            seed: 20160926,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        KMeansConfig {
            points: 8_000,
            dim: 6,
            k: 4,
            iterations: 2,
            prep_passes: 2,
            sample_fraction: 0.05,
            seed: 7,
        }
    }

    /// Number of stages this configuration executes.
    pub fn expected_stages(&self) -> usize {
        1 + self.prep_passes + 2 * self.iterations + 2
    }
}

/// Virtual compute units charged per parsed record. Each generated record
/// stands in for a row group of the paper's 21.8 GB input, so this is the
/// knob that puts stage 0 at the paper's ~6-minute scale.
const PARSE_COST: f64 = 0.2;
/// Units per record for the prep-pass predicates.
const PREP_COST: f64 = 0.02;
/// Units per record per (cluster × dimension) for nearest-center search.
const ASSIGN_COST_PER_KDIM: f64 = 7.5e-5;
/// Units per record per dimension for center accumulation merges.
const UPDATE_COST_PER_DIM: f64 = 5.0e-5;

/// The KMeans workload.
pub struct KMeans {
    /// Parameters.
    pub config: KMeansConfig,
}

/// Final state of a KMeans run.
pub struct KMeansResult {
    /// The finished engine context (metrics, traces, store counters).
    pub ctx: Context,
    /// Cluster centers after the last iteration.
    pub centers: Vec<Vec<f64>>,
    /// Points per cluster from the final histogram.
    pub histogram: Vec<(i64, i64)>,
}

impl KMeans {
    /// Creates the workload.
    pub fn new(config: KMeansConfig) -> Self {
        KMeans { config }
    }

    fn assign_fn(centers: Arc<Vec<Vec<f64>>>) -> MapFn {
        Arc::new(move |r: &Record| {
            let x = r.value.as_vector();
            let c = nearest(x, &centers);
            // Emit (cluster, (sum vector, count)) for the center update.
            let mut sum = x.to_vec();
            sum.shrink_to_fit();
            Record::new(
                Key::Int(c as i64),
                Value::Pair(Box::new(Value::vector(sum)), Box::new(Value::Int(1))),
            )
        })
    }

    fn merge_fn() -> ReduceFn {
        Arc::new(|a: &Value, b: &Value| match (a, b) {
            (Value::Pair(sa, ca), Value::Pair(sb, cb)) => {
                let sum: Vec<f64> = sa
                    .as_vector()
                    .iter()
                    .zip(sb.as_vector())
                    .map(|(x, y)| x + y)
                    .collect();
                Value::Pair(
                    Box::new(Value::vector(sum)),
                    Box::new(Value::Int(ca.as_int() + cb.as_int())),
                )
            }
            other => panic!("malformed accumulator {other:?}"),
        })
    }

    /// Runs the full 20-stage pipeline, returning clustering results.
    pub fn execute(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> KMeansResult {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let cfg = &self.config;
        let n = ((cfg.points as f64 * scale) as u64).max(cfg.k as u64 * 10);
        let gen = PointGen::new(cfg.k, cfg.dim, 2.0, cfg.seed);

        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        // ---- stage 0: parse + cache the full input -----------------------
        let g = gen.clone();
        let gen_full: GenFn = Arc::new(move |i, parts| g.partition(n, i, parts));
        let src = ctx.text_file(
            "kmeans.data",
            gen.bytes(n),
            gen_full,
            PARSE_COST,
            "parse-points",
        );
        let points = ctx.maybe_insert_repartition(src);
        ctx.cache(points);
        ctx.count(points, "load");

        // ---- stages 1..=prep: light sample scans --------------------------
        let sample_n = ((n as f64 * cfg.sample_fraction) as u64).max(1);
        for (j, tag) in PREP_TAGS.iter().enumerate().take(cfg.prep_passes) {
            let g = gen.clone();
            let gen_sample: GenFn = Arc::new(move |i, parts| g.partition(sample_n, i, parts));
            let sample = ctx.text_file(
                "kmeans.sample",
                gen.bytes(sample_n),
                gen_sample,
                PARSE_COST,
                tag,
            );
            let dim = j % cfg.dim;
            let pass = ctx.filter(
                sample,
                Arc::new(move |r: &Record| r.value.as_vector()[dim] > 0.0),
                PREP_COST,
                tag,
            );
            ctx.count(pass, tag);
        }

        // ---- stages 12..: Lloyd iterations --------------------------------
        let assign_cost = ASSIGN_COST_PER_KDIM * cfg.k as f64 * cfg.dim as f64;
        let update_cost = UPDATE_COST_PER_DIM * cfg.dim as f64;
        let mut centers: Vec<Vec<f64>> = (0..cfg.k as u64).map(|i| gen.point(i)).collect();
        for _ in 0..cfg.iterations {
            let mapped = ctx.map(
                points,
                Self::assign_fn(Arc::new(centers.clone())),
                assign_cost,
                "assign",
            );
            let reduced = ctx.reduce_by_key(mapped, Self::merge_fn(), None, update_cost, "update");
            let out = ctx.collect(reduced, "iteration");
            for r in &out {
                let c = match r.key {
                    Key::Int(c) => c as usize,
                    _ => unreachable!("cluster keys are ints"),
                };
                if let Value::Pair(sum, count) = &r.value {
                    let cnt = count.as_int().max(1) as f64;
                    centers[c] = sum.as_vector().iter().map(|s| s / cnt).collect();
                }
            }
        }

        // ---- stages 18–19: final assignment histogram ---------------------
        let final_map = ctx.map(
            points,
            {
                let centers = Arc::new(centers.clone());
                Arc::new(move |r: &Record| {
                    let c = nearest(r.value.as_vector(), &centers);
                    Record::new(Key::Int(c as i64), Value::Int(1))
                })
            },
            assign_cost,
            "final-assign",
        );
        let hist_rdd = ctx.reduce_by_key(
            final_map,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-4,
            "histogram",
        );
        let hist = ctx.collect(hist_rdd, "final-histogram");
        // The driver is done with the cached input: release the pin so
        // the storage layer frees it (memory or spill files) right away.
        ctx.uncache(points);
        let mut histogram: Vec<(i64, i64)> = hist
            .iter()
            .map(|r| match (&r.key, &r.value) {
                (Key::Int(c), v) => (*c, v.as_int()),
                other => unreachable!("malformed histogram row {other:?}"),
            })
            .collect();
        histogram.sort_unstable();

        KMeansResult {
            ctx,
            centers,
            histogram,
        }
    }
}

/// Index of the nearest center to `x` (squared Euclidean distance).
fn nearest(x: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d: f64 = x.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

impl Workload for KMeans {
    fn name(&self) -> &str {
        "kmeans"
    }

    fn full_input_bytes(&self) -> u64 {
        PointGen::new(self.config.k, self.config.dim, 2.0, self.config.seed)
            .bytes(self.config.points)
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        self.execute(opts, conf, scale).ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::uniform_cluster;

    fn opts() -> EngineOptions {
        EngineOptions {
            cluster: uniform_cluster(3, 8, 2.0),
            default_parallelism: 12,
            workers: 2,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn stage_layout_matches_paper_structure() {
        let w = KMeans::new(KMeansConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages: Vec<_> = res.ctx.all_stages().into_iter().cloned().collect();
        assert_eq!(stages.len(), w.config.expected_stages());
        // Stage 0 is the heavy parse.
        assert_eq!(stages[0].stage_id, 0);
        assert!(stages[0].shuffle_write_bytes == 0);
        // Prep stages are shuffle-free.
        for s in &stages[1..=w.config.prep_passes] {
            assert_eq!(
                s.shuffle_data(),
                0,
                "prep stage {} must not shuffle",
                s.stage_id
            );
        }
        // Iteration stages shuffle.
        let first_iter = 1 + w.config.prep_passes;
        for s in &stages[first_iter..first_iter + 2 * w.config.iterations] {
            assert!(
                s.shuffle_data() > 0,
                "iteration stage {} must shuffle",
                s.stage_id
            );
        }
    }

    #[test]
    fn iterations_share_signatures() {
        let w = KMeans::new(KMeansConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        let first_iter = 1 + w.config.prep_passes;
        let sig_map_0 = stages[first_iter].root_signature;
        let sig_red_0 = stages[first_iter + 1].root_signature;
        let sig_map_1 = stages[first_iter + 2].root_signature;
        let sig_red_1 = stages[first_iter + 3].root_signature;
        assert_eq!(sig_map_0, sig_map_1, "assign stages share a signature");
        assert_eq!(sig_red_0, sig_red_1, "update stages share a signature");
        assert_ne!(sig_map_0, sig_red_0);
    }

    #[test]
    fn prep_stages_have_distinct_signatures() {
        let w = KMeans::new(KMeansConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages = res.ctx.all_stages();
        let s1 = stages[1].root_signature;
        let s2 = stages[2].root_signature;
        assert_ne!(s1, s2, "each prep pass is separately tunable");
    }

    #[test]
    fn clustering_actually_converges() {
        // Well-separated mixture: the final centers must each sit close to
        // a distinct true center.
        let w = KMeans::new(KMeansConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let truth = PointGen::new(w.config.k, w.config.dim, 2.0, w.config.seed).centers;
        for c in &res.centers {
            let min_d = truth
                .iter()
                .map(|t| {
                    t.iter()
                        .zip(c)
                        .map(|(a, b)| (a - b).powi(2))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_d < 2.0,
                "center {c:?} too far from any true center ({min_d})"
            );
        }
    }

    #[test]
    fn histogram_accounts_for_every_point() {
        let w = KMeans::new(KMeansConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let total: i64 = res.histogram.iter().map(|(_, n)| n).sum();
        assert_eq!(total as u64, w.config.points);
        // Balanced mixture → roughly balanced clusters.
        for &(_, n) in &res.histogram {
            assert!(n > 0, "no empty clusters on well-separated data");
        }
    }

    #[test]
    fn scale_shrinks_input_proportionally() {
        let w = KMeans::new(KMeansConfig::small());
        let full = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let half = w.execute(&opts(), &WorkloadConf::new(), 0.5);
        let f0 = full.ctx.all_stages()[0].input_records;
        let h0 = half.ctx.all_stages()[0].input_records;
        assert!((h0 as f64 - f0 as f64 / 2.0).abs() <= 1.0);
    }

    #[test]
    fn runs_deterministically() {
        let w = KMeans::new(KMeansConfig::small());
        let a = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let b = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.histogram, b.histogram);
        assert_eq!(a.ctx.clock().to_bits(), b.ctx.clock().to_bits());
    }

    #[test]
    fn workload_trait_reports_consistent_bytes() {
        let w = KMeans::new(KMeansConfig::small());
        assert!(w.full_input_bytes() > 0);
        assert_eq!(w.name(), "kmeans");
    }
}
