//! Logistic regression by distributed gradient descent — the fourth
//! workload. The paper cites logistic regression as a consumer of PCA
//! (Section IV); it is also the canonical iterative Spark example and a
//! natural extra subject for CHOPPER: every iteration is a map
//! ("gradient") + reduce ("sum-gradients") pair whose stages repeat with
//! identical signatures, exactly like KMeans' Lloyd iterations.
//!
//! Stage layout: stage 0 parses and caches the labelled points; stages
//! 1..=2·iterations are the gradient map/reduce pairs; the final two
//! stages evaluate training accuracy.

use crate::datagen::PointGen;
use chopper::Workload;
use engine::{Context, EngineOptions, GenFn, Key, Record, ReduceFn, Value, WorkloadConf};
use std::sync::Arc;

/// Logistic-regression workload parameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// Labelled points at full scale.
    pub points: u64,
    /// Feature dimensionality.
    pub dim: usize,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Data seed.
    pub seed: u64,
}

impl LogRegConfig {
    /// Evaluation-scale instance.
    pub fn paper() -> Self {
        LogRegConfig {
            points: 300_000,
            dim: 12,
            iterations: 5,
            learning_rate: 4.0,
            seed: 77,
        }
    }

    /// A small instance for tests.
    pub fn small() -> Self {
        LogRegConfig {
            points: 6_000,
            dim: 6,
            iterations: 30,
            learning_rate: 6.0,
            seed: 3,
        }
    }
}

/// Units per parsed record.
const PARSE_COST: f64 = 0.12;
/// Units per record per dimension for gradient evaluation.
const GRAD_COST_PER_DIM: f64 = 2.0e-4;
/// Units per record for gradient merges, per dimension.
const MERGE_COST_PER_DIM: f64 = 4.0e-5;
/// Virtual bytes per record (ratio-free; logreg is an extra workload).
const VIRTUAL_RECORD_BYTES: u64 = 170;

/// The logistic-regression workload.
pub struct LogReg {
    /// Parameters.
    pub config: LogRegConfig,
}

/// Final state of a run.
pub struct LogRegResult {
    /// The finished engine context.
    pub ctx: Context,
    /// Learned weights (including bias as the last element).
    pub weights: Vec<f64>,
    /// Training accuracy in `[0, 1]`.
    pub accuracy: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Feature scaling applied inside the model (the generator emits features
/// in roughly ±10; gradient descent conditions far better on ±1).
const FEATURE_SCALE: f64 = 0.1;

/// The model's linear response for features `x` under `w` (weights plus
/// trailing bias).
fn response(x: &[f64], w: &[f64]) -> f64 {
    x.iter()
        .zip(w.iter())
        .map(|(a, b)| a * FEATURE_SCALE * b)
        .sum::<f64>()
        + w[x.len()]
}

/// The label of point `i`: a separating hyperplane with deterministic
/// noise, derived from the same generator as the features.
fn label(x: &[f64]) -> f64 {
    let s: f64 = x
        .iter()
        .enumerate()
        .map(|(j, v)| if j % 2 == 0 { *v } else { -*v })
        .sum();
    if s > 0.0 {
        1.0
    } else {
        0.0
    }
}

impl LogReg {
    /// Creates the workload.
    pub fn new(config: LogRegConfig) -> Self {
        LogReg { config }
    }

    /// Runs the full pipeline, returning the learned model.
    pub fn execute(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> LogRegResult {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let cfg = &self.config;
        let n = ((cfg.points as f64 * scale) as u64).max(64);
        let dim = cfg.dim;
        let gen = PointGen::new(2, dim, 1.5, cfg.seed);

        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());

        // ---- stage 0: parse + cache --------------------------------------
        let g = gen.clone();
        let gen_full: GenFn = Arc::new(move |i, parts| g.partition(n, i, parts));
        let src = ctx.text_file(
            "logreg.data",
            n * VIRTUAL_RECORD_BYTES,
            gen_full,
            PARSE_COST,
            "parse-labelled",
        );
        let points = ctx.maybe_insert_repartition(src);
        ctx.cache(points);
        ctx.count(points, "load");

        // ---- gradient-descent iterations ---------------------------------
        let sum_grads: ReduceFn = Arc::new(|a: &Value, b: &Value| {
            let s: Vec<f64> = a
                .as_vector()
                .iter()
                .zip(b.as_vector())
                .map(|(x, y)| x + y)
                .collect();
            Value::vector(s)
        });
        let grad_cost = GRAD_COST_PER_DIM * dim as f64;
        // weights has dim+1 entries; the last is the bias.
        let mut weights = vec![0.0; dim + 1];
        for _ in 0..cfg.iterations {
            let w = Arc::new(weights.clone());
            let grad_map = ctx.map(
                points,
                {
                    let w = Arc::clone(&w);
                    Arc::new(move |r: &Record| {
                        let x = r.value.as_vector();
                        let y = label(x);
                        let z = response(x, &w);
                        let err = sigmoid(z) - y;
                        // Partial gradient, 8 pseudo-keys for parallel sums.
                        let mut grad: Vec<f64> =
                            x.iter().map(|v| err * v * FEATURE_SCALE).collect();
                        grad.push(err); // bias term
                        grad.push(1.0); // count, for averaging
                        let k = match r.key {
                            Key::Int(i) => i % 8,
                            _ => 0,
                        };
                        Record::new(Key::Int(k), Value::vector(grad))
                    })
                },
                grad_cost,
                "gradient",
            );
            let grad_red = ctx.reduce_by_key(
                grad_map,
                Arc::clone(&sum_grads),
                None,
                MERGE_COST_PER_DIM * dim as f64,
                "sum-gradients",
            );
            let partials = ctx.collect(grad_red, "iteration");
            let mut total = vec![0.0; dim + 2];
            for r in &partials {
                for (t, v) in total.iter_mut().zip(r.value.as_vector()) {
                    *t += v;
                }
            }
            let count = total[dim + 1].max(1.0);
            for (j, w) in weights.iter_mut().enumerate() {
                *w -= cfg.learning_rate * total[j] / count;
            }
        }

        // ---- final evaluation: training accuracy --------------------------
        let w = Arc::new(weights.clone());
        let correct = ctx.filter(
            points,
            {
                let w = Arc::clone(&w);
                Arc::new(move |r: &Record| {
                    let x = r.value.as_vector();
                    (sigmoid(response(x, &w)) > 0.5) == (label(x) > 0.5)
                })
            },
            grad_cost,
            "evaluate",
        );
        let hits = ctx.count(correct, "accuracy");
        let accuracy = hits as f64 / n as f64;

        LogRegResult {
            ctx,
            weights,
            accuracy,
        }
    }
}

impl Workload for LogReg {
    fn name(&self) -> &str {
        "logreg"
    }

    fn full_input_bytes(&self) -> u64 {
        self.config.points * VIRTUAL_RECORD_BYTES
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        self.execute(opts, conf, scale).ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcluster::uniform_cluster;

    fn opts() -> EngineOptions {
        EngineOptions {
            cluster: uniform_cluster(3, 8, 2.0),
            default_parallelism: 12,
            workers: 2,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn model_learns_the_separating_plane() {
        let w = LogReg::new(LogRegConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert!(
            res.accuracy > 0.9,
            "separable data should be learned to >90%, got {:.3}",
            res.accuracy
        );
        assert_eq!(res.weights.len(), w.config.dim + 1);
        // Weight signs should alternate like the generating hyperplane.
        assert!(res.weights[0] > 0.0);
        assert!(res.weights[1] < 0.0);
    }

    #[test]
    fn stage_layout_is_iterative() {
        let w = LogReg::new(LogRegConfig::small());
        let res = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let stages: Vec<_> = res.ctx.all_stages().into_iter().cloned().collect();
        // load + 2 per iteration + evaluate.
        assert_eq!(stages.len(), 1 + 2 * w.config.iterations + 1);
        // Iteration stages share signatures.
        let sig_map = stages[1].root_signature;
        let sig_red = stages[2].root_signature;
        for i in 0..w.config.iterations {
            assert_eq!(stages[1 + 2 * i].root_signature, sig_map);
            assert_eq!(stages[2 + 2 * i].root_signature, sig_red);
        }
    }

    #[test]
    fn accuracy_improves_with_iterations() {
        let mut one = LogRegConfig::small();
        one.iterations = 1;
        let acc1 = LogReg::new(one)
            .execute(&opts(), &WorkloadConf::new(), 1.0)
            .accuracy;
        let acc4 = LogReg::new(LogRegConfig::small())
            .execute(&opts(), &WorkloadConf::new(), 1.0)
            .accuracy;
        assert!(
            acc4 >= acc1,
            "more iterations must not hurt: {acc4} vs {acc1}"
        );
    }

    #[test]
    fn deterministic() {
        let w = LogReg::new(LogRegConfig::small());
        let a = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        let b = w.execute(&opts(), &WorkloadConf::new(), 1.0);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.ctx.clock().to_bits(), b.ctx.clock().to_bits());
    }

    #[test]
    fn tunable_via_conf() {
        let mut ctx_probe = LogReg::new(LogRegConfig::small());
        let probe = ctx_probe.execute(&opts(), &WorkloadConf::new(), 1.0);
        let reduce_sig = probe.ctx.all_stages()[2].root_signature;
        let mut conf = WorkloadConf::new();
        conf.set_stage(reduce_sig, engine::PartitionerSpec::hash(3));
        ctx_probe.config = LogRegConfig::small();
        let tuned = ctx_probe.execute(&opts(), &conf, 1.0);
        assert_eq!(tuned.ctx.all_stages()[2].num_tasks, 3);
        // Results agree regardless of partitioning (up to float summation
        // order, which legitimately differs across bucketings).
        for (a, b) in tuned.weights.iter().zip(&probe.weights) {
            assert!((a - b).abs() < 1e-9, "weights diverged: {a} vs {b}");
        }
    }
}
