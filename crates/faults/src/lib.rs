//! Deterministic, seeded fault-injection plans.
//!
//! A [`FaultPlan`] describes every fault a run will suffer — per-task
//! failure probabilities, executor/node loss at a virtual time, slow-node
//! straggler multipliers, shuffle-block corruption — as a pure function of
//! a seed. The engine consults the plan at fixed, schedule-independent
//! decision points (stage id, task index, attempt number), so the same
//! plan injects the *same* faults regardless of worker count, pipelining,
//! or host timing: failure behaviour becomes as reproducible as the rest
//! of the virtual cluster.
//!
//! The plan carries no state. Every query ([`FaultPlan::attempts`],
//! [`FaultPlan::corrupt_chunk`]) derives its verdict by hashing the seed
//! with the query coordinates, so callers may ask in any order, from any
//! thread, and replays are exact. [`FaultCounters`] aggregates what the
//! recovery machinery actually did.

use numeric::XorShift64;

/// Loss of one node (executor + its local shuffle files) at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoss {
    /// Node index in the cluster spec.
    pub node: usize,
    /// Virtual time (seconds) at which the node dies. The engine applies
    /// the loss at the next stage boundary whose clock has passed `at`.
    pub at: f64,
}

/// A slow-node (straggler) event: from `at` on, `node` runs `factor`×
/// slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Node index in the cluster spec.
    pub node: usize,
    /// Slowdown multiplier (≥ 1).
    pub factor: f64,
    /// Virtual time (seconds) at which the slowdown begins.
    pub at: f64,
}

/// A deterministic, seeded fault-injection plan.
///
/// Parsed from a small line-based text format (see [`FaultPlan::from_text`])
/// or built directly. [`FaultPlan::default`] is inert: no failures, no
/// events — running under it is bit-identical to running without a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw. Same seed ⇒ same injected faults.
    pub seed: u64,
    /// Per-attempt probability that a task attempt fails, in `[0, 1)`.
    pub task_fail_prob: f64,
    /// Retry budget per task. A task makes at most `max_task_retries + 1`
    /// attempts; the final attempt succeeds deterministically so jobs
    /// always complete (the recovery invariant requires results to exist).
    pub max_task_retries: u32,
    /// Base backoff (virtual seconds) before retry `k`, doubled each
    /// attempt: retry `k` waits `retry_backoff_s · 2^(k-1)`.
    pub retry_backoff_s: f64,
    /// Per-fetch-chunk probability that a shuffle block arrives corrupt
    /// and must be refetched, in `[0, 1)`.
    pub corrupt_prob: f64,
    /// Node-loss events.
    pub node_loss: Vec<NodeLoss>,
    /// Slow-node events.
    pub stragglers: Vec<Straggler>,
    /// Enable speculative re-execution with this straggler threshold
    /// multiplier (> 1), as a plan-level alternative to the engine's
    /// speculation option.
    pub speculation: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5EED_FA17,
            task_fail_prob: 0.0,
            max_task_retries: 3,
            retry_backoff_s: 0.25,
            corrupt_prob: 0.0,
            node_loss: Vec::new(),
            stragglers: Vec::new(),
            speculation: None,
        }
    }
}

/// Domain-separation tags so the per-purpose draw streams never collide.
const TAG_RETRY: u64 = 0x51;
const TAG_CORRUPT: u64 = 0x52;

/// One round of seed/coordinate mixing (splitmix-style).
fn mix(h: u64, v: u64) -> u64 {
    let x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let x = x.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Parses the line-based plan format:
    ///
    /// ```text
    /// # comment
    /// seed 42
    /// task-fail-prob 0.05
    /// max-task-retries 3
    /// retry-backoff 0.25
    /// corrupt-prob 0.01
    /// lose-node 2 30.0          # node 2 dies at t=30s
    /// slow-node 1 4.0 10.0      # node 1 runs 4x slower from t=10s
    /// speculation 1.5
    /// ```
    ///
    /// Unknown keywords and malformed numbers are errors; unset keys keep
    /// their [`FaultPlan::default`] values.
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = parts.collect();
            let bad = |what: &str| format!("fault plan line {}: {what}: '{raw}'", lineno + 1);
            let num = |idx: usize, what: &str| -> Result<f64, String> {
                rest.get(idx)
                    .ok_or_else(|| bad(&format!("missing {what}")))?
                    .parse::<f64>()
                    .map_err(|_| bad(&format!("bad {what}")))
            };
            let int = |idx: usize, what: &str| -> Result<u64, String> {
                rest.get(idx)
                    .ok_or_else(|| bad(&format!("missing {what}")))?
                    .parse::<u64>()
                    .map_err(|_| bad(&format!("bad {what}")))
            };
            let arity = |n: usize| -> Result<(), String> {
                if rest.len() == n {
                    Ok(())
                } else {
                    Err(bad(&format!("expected {n} value(s) after '{key}'")))
                }
            };
            match key {
                "seed" => {
                    arity(1)?;
                    plan.seed = int(0, "seed")?;
                }
                "task-fail-prob" => {
                    arity(1)?;
                    plan.task_fail_prob = num(0, "probability")?;
                }
                "max-task-retries" => {
                    arity(1)?;
                    plan.max_task_retries = int(0, "retry count")? as u32;
                }
                "retry-backoff" => {
                    arity(1)?;
                    plan.retry_backoff_s = num(0, "backoff seconds")?;
                }
                "corrupt-prob" => {
                    arity(1)?;
                    plan.corrupt_prob = num(0, "probability")?;
                }
                "lose-node" => {
                    arity(2)?;
                    plan.node_loss.push(NodeLoss {
                        node: int(0, "node id")? as usize,
                        at: num(1, "virtual time")?,
                    });
                }
                "slow-node" => {
                    arity(3)?;
                    plan.stragglers.push(Straggler {
                        node: int(0, "node id")? as usize,
                        factor: num(1, "slowdown factor")?,
                        at: num(2, "virtual time")?,
                    });
                }
                "speculation" => {
                    arity(1)?;
                    plan.speculation = Some(num(0, "multiplier")?);
                }
                other => return Err(bad(&format!("unknown keyword '{other}'"))),
            }
        }
        Ok(plan)
    }

    /// Renders the plan in the [`FaultPlan::from_text`] format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("task-fail-prob {}\n", self.task_fail_prob));
        s.push_str(&format!("max-task-retries {}\n", self.max_task_retries));
        s.push_str(&format!("retry-backoff {}\n", self.retry_backoff_s));
        s.push_str(&format!("corrupt-prob {}\n", self.corrupt_prob));
        for l in &self.node_loss {
            s.push_str(&format!("lose-node {} {}\n", l.node, l.at));
        }
        for st in &self.stragglers {
            s.push_str(&format!("slow-node {} {} {}\n", st.node, st.factor, st.at));
        }
        if let Some(m) = self.speculation {
            s.push_str(&format!("speculation {m}\n"));
        }
        s
    }

    /// Checks the plan against a cluster of `num_nodes` nodes.
    pub fn validate(&self, num_nodes: usize) -> Result<(), String> {
        let prob = |p: f64, what: &str| {
            if (0.0..1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("fault plan: {what} must be in [0, 1), got {p}"))
            }
        };
        prob(self.task_fail_prob, "task-fail-prob")?;
        prob(self.corrupt_prob, "corrupt-prob")?;
        // NaN fails every check below on purpose: a plan with a NaN knob
        // must be rejected, not silently treated as zero.
        if self.retry_backoff_s.is_nan() || self.retry_backoff_s < 0.0 {
            return Err(format!(
                "fault plan: retry-backoff must be >= 0, got {}",
                self.retry_backoff_s
            ));
        }
        for l in &self.node_loss {
            if l.node >= num_nodes {
                return Err(format!(
                    "fault plan: lose-node {} out of range (cluster has {num_nodes} nodes)",
                    l.node
                ));
            }
            if l.at.is_nan() || l.at < 0.0 {
                return Err(format!(
                    "fault plan: lose-node time must be >= 0, got {}",
                    l.at
                ));
            }
        }
        let mut lost: Vec<usize> = self.node_loss.iter().map(|l| l.node).collect();
        lost.sort_unstable();
        lost.dedup();
        if lost.len() >= num_nodes {
            return Err(format!(
                "fault plan: losing all {num_nodes} nodes leaves no survivor to recover on"
            ));
        }
        for s in &self.stragglers {
            if s.node >= num_nodes {
                return Err(format!(
                    "fault plan: slow-node {} out of range (cluster has {num_nodes} nodes)",
                    s.node
                ));
            }
            if s.factor.is_nan() || s.factor < 1.0 {
                return Err(format!(
                    "fault plan: slow-node factor must be >= 1, got {}",
                    s.factor
                ));
            }
            if s.at.is_nan() || s.at < 0.0 {
                return Err(format!(
                    "fault plan: slow-node time must be >= 0, got {}",
                    s.at
                ));
            }
        }
        if let Some(m) = self.speculation {
            if m.is_nan() || m <= 1.0 {
                return Err(format!(
                    "fault plan: speculation multiplier must be > 1, got {m}"
                ));
            }
        }
        Ok(())
    }

    /// Whether the plan injects nothing at all.
    pub fn is_inert(&self) -> bool {
        self.task_fail_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.node_loss.is_empty()
            && self.stragglers.is_empty()
            && self.speculation.is_none()
    }

    /// Uniform draw in `[0, 1)` for the given coordinates.
    fn draw(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        let state = mix(mix(mix(mix(self.seed, tag), a), b), c);
        XorShift64::new(state).next_f64()
    }

    /// Number of attempts task `task` of stage `stage` makes before
    /// succeeding: `1 + consecutive failed draws`, capped at
    /// `max_task_retries + 1` (the final attempt succeeds
    /// deterministically, so every task completes).
    pub fn attempts(&self, stage: u64, task: u64) -> u32 {
        if self.task_fail_prob <= 0.0 {
            return 1;
        }
        let mut attempts = 1u32;
        while attempts <= self.max_task_retries
            && self.draw(TAG_RETRY, stage, task, attempts as u64) < self.task_fail_prob
        {
            attempts += 1;
        }
        attempts
    }

    /// Total backoff (virtual seconds) a task waited after `failures`
    /// failed attempts: `retry_backoff_s · (2^failures − 1)`.
    pub fn backoff(&self, failures: u32) -> f64 {
        if failures == 0 {
            return 0.0;
        }
        self.retry_backoff_s * ((1u64 << failures.min(62)) - 1) as f64
    }

    /// Whether fetch chunk `chunk` of task `task` in stage `stage` arrives
    /// corrupt and must be refetched.
    pub fn corrupt_chunk(&self, stage: u64, task: u64, chunk: u64) -> bool {
        self.corrupt_prob > 0.0 && self.draw(TAG_CORRUPT, stage, task, chunk) < self.corrupt_prob
    }
}

/// What the recovery machinery actually did over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultCounters {
    /// Task attempts that failed (every failure triggers a retry).
    pub injected_failures: u64,
    /// Tasks that needed at least one retry.
    pub retried_tasks: u64,
    /// Tasks that exhausted the retry budget (final attempt forced
    /// through deterministically).
    pub exhausted_retries: u64,
    /// Total virtual backoff charged to retried tasks, in seconds.
    pub backoff_s: f64,
    /// Nodes lost to `lose-node` events.
    pub nodes_lost: u64,
    /// Slow-node events applied.
    pub stragglers_applied: u64,
    /// Lost shuffle map outputs recomputed through lineage.
    pub recomputed_map_tasks: u64,
    /// Cached partitions re-homed to a surviving replica holder.
    pub replica_rehomed_partitions: u64,
    /// Bytes read back from replicas while re-homing.
    pub replica_read_bytes: u64,
    /// Corrupt shuffle chunks detected and refetched.
    pub corrupt_chunks: u64,
    /// Bytes refetched due to corruption.
    pub refetched_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(prob: f64) -> FaultPlan {
        FaultPlan {
            seed: 7,
            task_fail_prob: prob,
            ..FaultPlan::default()
        }
    }

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert_eq!(FaultPlan::default().attempts(3, 9), 1);
        assert!(!FaultPlan::default().corrupt_chunk(3, 9, 0));
    }

    #[test]
    fn text_round_trips() {
        let p = FaultPlan {
            seed: 99,
            task_fail_prob: 0.05,
            max_task_retries: 2,
            retry_backoff_s: 0.5,
            corrupt_prob: 0.01,
            node_loss: vec![NodeLoss { node: 2, at: 30.0 }],
            stragglers: vec![Straggler {
                node: 1,
                factor: 4.0,
                at: 10.0,
            }],
            speculation: Some(1.5),
        };
        assert_eq!(FaultPlan::from_text(&p.to_text()), Ok(p));
    }

    #[test]
    fn parser_ignores_comments_and_blank_lines() {
        let p = FaultPlan::from_text("# a comment\n\nseed 5   # trailing\n").unwrap();
        assert_eq!(p.seed, 5);
        assert!(p.is_inert());
    }

    #[test]
    fn parser_rejects_unknown_keyword_and_bad_numbers() {
        assert!(FaultPlan::from_text("frobnicate 1").is_err());
        assert!(FaultPlan::from_text("seed banana").is_err());
        assert!(FaultPlan::from_text("lose-node 1").is_err());
        assert!(FaultPlan::from_text("slow-node 1 2.0").is_err());
        assert!(FaultPlan::from_text("seed 1 2").is_err());
    }

    #[test]
    fn validate_catches_bad_plans() {
        let mut p = plan(1.5);
        assert!(p.validate(3).is_err(), "probability >= 1");
        p.task_fail_prob = 0.1;
        p.node_loss.push(NodeLoss { node: 3, at: 1.0 });
        assert!(p.validate(3).is_err(), "node out of range");
        p.node_loss.clear();
        for n in 0..3 {
            p.node_loss.push(NodeLoss { node: n, at: 1.0 });
        }
        assert!(p.validate(3).is_err(), "losing every node");
        p.node_loss.truncate(1);
        p.stragglers.push(Straggler {
            node: 0,
            factor: 0.5,
            at: 0.0,
        });
        assert!(p.validate(3).is_err(), "slowdown factor < 1");
        p.stragglers[0].factor = 2.0;
        assert!(p.validate(3).is_ok());
        p.speculation = Some(1.0);
        assert!(p.validate(3).is_err(), "speculation multiplier must be > 1");
    }

    #[test]
    fn draws_are_deterministic_and_order_free() {
        let p = plan(0.3);
        let a: Vec<u32> = (0..64).map(|t| p.attempts(5, t)).collect();
        let b: Vec<u32> = (0..64).rev().map(|t| p.attempts(5, t)).collect();
        let b: Vec<u32> = b.into_iter().rev().collect();
        assert_eq!(a, b);
        assert_eq!(
            a,
            (0..64)
                .map(|t| plan(0.3).attempts(5, t))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u32> = (0..256).map(|t| plan(0.3).attempts(1, t)).collect();
        let b: Vec<u32> = (0..256)
            .map(|t| {
                FaultPlan {
                    seed: 8,
                    ..plan(0.3)
                }
                .attempts(1, t)
            })
            .collect();
        assert_ne!(a, b, "seed must steer the draws");
    }

    #[test]
    fn attempts_respect_the_cap() {
        // With failure probability ~1 every draw fails; the cap must hold.
        let p = FaultPlan {
            task_fail_prob: 0.999_999,
            max_task_retries: 4,
            ..plan(0.0)
        };
        for t in 0..128 {
            assert_eq!(p.attempts(0, t), 5);
        }
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let p = plan(0.25);
        let retried = (0..4000).filter(|&t| p.attempts(9, t) > 1).count();
        let rate = retried as f64 / 4000.0;
        assert!(
            (rate - 0.25).abs() < 0.03,
            "empirical first-attempt failure rate {rate} far from 0.25"
        );
    }

    #[test]
    fn backoff_doubles_per_retry() {
        let p = FaultPlan {
            retry_backoff_s: 0.25,
            ..FaultPlan::default()
        };
        assert_eq!(p.backoff(0), 0.0);
        assert_eq!(p.backoff(1), 0.25);
        assert_eq!(p.backoff(2), 0.75);
        assert_eq!(p.backoff(3), 1.75);
    }

    #[test]
    fn corruption_draws_are_chunk_granular() {
        let p = FaultPlan {
            corrupt_prob: 0.5,
            ..plan(0.0)
        };
        let hits = (0..256).filter(|&c| p.corrupt_chunk(2, 3, c)).count();
        assert!(
            hits > 64 && hits < 192,
            "corruption rate wildly off: {hits}/256"
        );
        // Deterministic replay.
        assert_eq!(
            (0..256)
                .map(|c| p.corrupt_chunk(2, 3, c))
                .collect::<Vec<_>>(),
            (0..256)
                .map(|c| p.corrupt_chunk(2, 3, c))
                .collect::<Vec<_>>()
        );
    }
}
