//! Property tests for the retry bookkeeping: however the seed, failure
//! probability, and retry budget are chosen, a task never makes more than
//! `max_task_retries + 1` attempts, and the draws are pure functions of
//! their coordinates.

use faults::FaultPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn attempts_never_exceed_budget(
        seed in any::<u64>(),
        prob in 0.0f64..1.0,
        max_retries in 0u32..8,
        stage in 0u64..64,
        task in 0u64..512,
    ) {
        let plan = FaultPlan {
            seed,
            task_fail_prob: prob,
            max_task_retries: max_retries,
            ..FaultPlan::default()
        };
        let attempts = plan.attempts(stage, task);
        prop_assert!(attempts >= 1);
        prop_assert!(
            attempts <= max_retries + 1,
            "attempts {} exceeded budget {} + 1",
            attempts,
            max_retries
        );
    }

    #[test]
    fn attempts_are_replayable(
        seed in any::<u64>(),
        prob in 0.0f64..1.0,
        stage in 0u64..64,
        task in 0u64..512,
    ) {
        let plan = FaultPlan { seed, task_fail_prob: prob, ..FaultPlan::default() };
        prop_assert_eq!(plan.attempts(stage, task), plan.attempts(stage, task));
    }

    #[test]
    fn zero_probability_means_one_attempt(
        seed in any::<u64>(),
        stage in 0u64..64,
        task in 0u64..512,
    ) {
        let plan = FaultPlan { seed, task_fail_prob: 0.0, ..FaultPlan::default() };
        prop_assert_eq!(plan.attempts(stage, task), 1);
        prop_assert!(!plan.corrupt_chunk(stage, task, 0));
    }

    #[test]
    fn backoff_is_monotone(
        backoff in 0.0f64..10.0,
        failures in 0u32..10,
    ) {
        let plan = FaultPlan { retry_backoff_s: backoff, ..FaultPlan::default() };
        prop_assert!(plan.backoff(failures) <= plan.backoff(failures + 1));
        if failures > 0 && backoff > 0.0 {
            prop_assert!(plan.backoff(failures) > 0.0);
        }
    }
}
