//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!`, [`prelude::any`], range / tuple / string-pattern
//! strategies, [`collection::vec`], [`option::of`], `prop_map`, and
//! [`prop_oneof!`].
//!
//! Differences from the real crate, acceptable for this repo's suites:
//! cases are generated from a fixed per-test seed (deterministic across
//! runs), failures panic immediately with the offending inputs instead of
//! shrinking, and `proptest-regressions` files are ignored.

pub mod test_runner {
    /// xorshift64* generator; the seed is derived from the test name so a
    /// failure reproduces on every run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator keyed to a test name.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Fair coin.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Per-suite configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value, as in the real
    /// crate's `Just`.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // -- integer / float ranges (exclusive upper bound) --------------------

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.range_u64(0, span.max(1)) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(usize, u64, u32, i64, i32, u8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // -- `any::<T>()` ------------------------------------------------------

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value, biased toward edge cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`](super::prelude::any).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn make_any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // One draw in eight lands on an edge case.
                    if rng.next_u64() % 8 == 0 {
                        match rng.next_u64() % 5 {
                            0 => 0 as $t,
                            1 => 1 as $t,
                            2 => <$t>::MAX,
                            3 => <$t>::MIN,
                            _ => (42 as u8) as $t,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    // -- string patterns ---------------------------------------------------

    /// `&str` acts as a regex-subset strategy: `[class]{min,max}` with
    /// literal chars and `a-z` ranges inside the class.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_pattern(self)
                .unwrap_or_else(|| panic!("unsupported string pattern '{self}'"));
            let len = rng.range_u64(min as u64, max as u64 + 1) as usize;
            (0..len)
                .map(|_| chars[rng.range_u64(0, chars.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
                for c in lo..=hi {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match counts.split_once(',') {
            Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
            None => {
                let n = counts.parse().ok()?;
                (n, n)
            }
        };
        Some((chars, min, max))
    }

    // -- tuples ------------------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A:0);
    impl_tuple_strategy!(A:0, B:1);
    impl_tuple_strategy!(A:0, B:1, C:2);
    impl_tuple_strategy!(A:0, B:1, C:2, D:3);
    impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
    impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);

    // -- unions (prop_oneof!) ---------------------------------------------

    /// Object-safe view of a strategy, for heterogeneous unions.
    pub trait DynStrategy<V> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice between boxed strategies with a common value type.
    pub struct Union<V> {
        options: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; used by `prop_oneof!`.
        pub fn new(options: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }

        /// Boxes one arm; used by `prop_oneof!`.
        pub fn boxed<S>(s: S) -> Box<dyn DynStrategy<V>>
        where
            S: Strategy<Value = V> + 'static,
        {
            Box::new(s)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.range_u64(0, self.options.len() as u64) as usize;
            self.options[i].generate_dyn(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Sizes accepted by [`vec`]: an exact `usize` or an exclusive range.
    pub trait IntoSizeRange {
        /// Lower/upper bounds as `(min, max_exclusive)`.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::Range<i32> {
        fn bounds(&self) -> (usize, usize) {
            (self.start as usize, self.end as usize)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                min: self.min,
                max: self.max,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u64(self.min as u64, self.max.max(self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<T>` values.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Mostly Some, as in the real crate's default weighting.
            if rng.range_u64(0, 4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` one time in four, otherwise `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use super::strategy::{Arbitrary, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> super::strategy::Any<T> {
        super::strategy::make_any()
    }
}

/// Defines a block of property tests; see the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..2000 {
            let u = (1usize..64).generate(&mut rng);
            assert!((1..64).contains(&u));
            let f = (0.25f64..2.0).generate(&mut rng);
            assert!((0.25..2.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..500 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::for_test("det");
            crate::collection::vec((any::<i64>(), 0.0f64..1.0), 1..20).generate(&mut rng)
        };
        assert_eq!(format!("{:?}", draw()), format!("{:?}", draw()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_compiles_and_runs(xs in crate::collection::vec(any::<u64>(), 0..10),
                                   choice in prop_oneof![0usize..3, 10usize..13],
                                   opt in crate::option::of(1u32..5)) {
            prop_assert!(xs.len() < 10);
            prop_assert!(choice < 3 || (10..13).contains(&choice));
            if let Some(v) = opt {
                prop_assert!((1..5).contains(&v));
            }
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
