//! Offline stand-in for the `criterion` benchmark crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API surface its benches use: [`Criterion`] with `sample_size` /
//! `measurement_time` builders, `bench_function`, `benchmark_group`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros (`name/config/targets`
//! form included).
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches until the configured measurement time (capped
//! at 2 s to keep full sweeps tolerable) elapses, and reports min / mean /
//! max per-iteration wall-clock time in a criterion-like line. There is no
//! statistical analysis, outlier rejection, or HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Cap on per-benchmark measurement, regardless of `measurement_time`.
const MEASUREMENT_CAP: Duration = Duration::from_secs(2);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark (capped at 2 s by this stand-in).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group; benchmark ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// How much setup output `iter_batched` amortizes per timed batch; all
/// variants behave identically in this stand-in.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to `bench_function`; routines register
/// themselves through [`Bencher::iter`] or [`Bencher::iter_batched`].
pub struct Bencher {
    budget: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.budget;
        // Untimed warm-up.
        black_box(routine());
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        black_box(routine(setup()));
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let budget = measurement_time.min(MEASUREMENT_CAP);
    let mut b = Bencher {
        budget,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    // Keep at most `sample_size` evenly spaced samples for the summary so
    // the printed spread reflects the whole run.
    let step = (b.samples.len() / sample_size).max(1);
    let kept: Vec<f64> = b.samples.iter().copied().step_by(step).collect();
    let min = kept.iter().copied().fold(f64::INFINITY, f64::min);
    let max = kept.iter().copied().fold(0.0f64, f64::max);
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    println!(
        "{id:<48} time: [{} {} {}] ({} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        b.samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into one runner, optionally with a shared
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more `criterion_group!` bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("grp");
        g.bench_function(format!("batched-{}", 1), |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
