//! `chopper-cli` — drive the CHOPPER reproduction from the command line.
//!
//! ```text
//! chopper-cli run     --workload kmeans [--scale 0.5] [--partitions 300]
//!                     [--copartition] [--conf FILE] [--cluster paper|uniform:N,C,GHz]
//! chopper-cli tune    --workload sql --db db.json [--out-conf conf.txt]
//!                     [--scales 0.1,0.3,0.6] [--partitions 60,150,300,600,1200]
//! chopper-cli plan    --workload sql --db db.json [--out-conf conf.txt]
//! chopper-cli compare --workload pca [--partitions 300]
//! chopper-cli trace   kmeans [--out trace_kmeans.json] [--clock all|virtual|wall]
//! chopper-cli inspect --db db.json
//! chopper-cli conf    --file conf.txt
//! chopper-cli serve   --trace jobs.trace [--policy fair|fifo] [--slots 8]
//!                     [--queue-cap N] [--mem-shared 1g] [--mem-tenant 256m]
//! chopper-cli loadgen --out jobs.trace [--tenants 4] [--jobs 56] [--seed 11]
//! chopper-cli help
//! ```

mod args;
mod commands;

use args::Args;

/// `trace <workload>` reads naturally, but the flag parser takes no
/// positionals — rewrite the bare workload token into `--workload`.
fn normalize(mut raw: Vec<String>) -> Vec<String> {
    if raw.first().map(String::as_str) == Some("trace")
        && raw.get(1).is_some_and(|t| !t.starts_with("--"))
    {
        raw.insert(1, "--workload".to_string());
    }
    raw
}

fn main() {
    let raw = normalize(std::env::args().skip(1).collect());
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "run" => commands::run(&parsed),
        "tune" => commands::tune(&parsed),
        "plan" => commands::plan(&parsed),
        "compare" => commands::compare(&parsed),
        "trace" => commands::trace(&parsed),
        "inspect" => commands::inspect(&parsed),
        "conf" => commands::conf(&parsed),
        "serve" => commands::serve(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "help" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::normalize;

    fn norm(tokens: &[&str]) -> Vec<String> {
        normalize(tokens.iter().map(|t| t.to_string()).collect())
    }

    #[test]
    fn trace_positional_workload_is_rewritten() {
        assert_eq!(
            norm(&["trace", "kmeans", "--scale", "0.5"]),
            ["trace", "--workload", "kmeans", "--scale", "0.5"]
        );
    }

    #[test]
    fn flag_form_and_other_commands_pass_through() {
        assert_eq!(
            norm(&["trace", "--workload", "sql"]),
            ["trace", "--workload", "sql"]
        );
        assert_eq!(
            norm(&["run", "kmeans"]),
            ["run", "kmeans"],
            "only `trace` takes a positional"
        );
        assert_eq!(norm(&["trace"]), ["trace"]);
    }
}
