//! `chopper-cli` — drive the CHOPPER reproduction from the command line.
//!
//! ```text
//! chopper-cli run     --workload kmeans [--scale 0.5] [--partitions 300]
//!                     [--copartition] [--conf FILE] [--cluster paper|uniform:N,C,GHz]
//! chopper-cli tune    --workload sql --db db.json [--out-conf conf.txt]
//!                     [--scales 0.1,0.3,0.6] [--partitions 60,150,300,600,1200]
//! chopper-cli plan    --workload sql --db db.json [--out-conf conf.txt]
//! chopper-cli compare --workload pca [--partitions 300]
//! chopper-cli inspect --db db.json
//! chopper-cli conf    --file conf.txt
//! chopper-cli help
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "run" => commands::run(&parsed),
        "tune" => commands::tune(&parsed),
        "plan" => commands::plan(&parsed),
        "compare" => commands::compare(&parsed),
        "inspect" => commands::inspect(&parsed),
        "conf" => commands::conf(&parsed),
        "help" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", commands::USAGE)),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
