//! Minimal dependency-free argument parsing for `chopper-cli`.
//!
//! Grammar: `chopper-cli <command> [--flag [value]]...`. Flags may appear
//! in any order; unknown flags are errors (to catch typos early).

use std::collections::HashMap;

/// A parsed command line: the command word plus its flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional token ("run", "tune", ...).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["copartition", "vanilla", "help", "gantt", "serial"];

impl Args {
    /// Parses raw arguments (without the binary name).
    pub fn parse<I, S>(raw: I) -> Result<Args, ParseError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into).peekable();
        let command = iter
            .next()
            .ok_or_else(|| ParseError("missing command (try `chopper-cli help`)".into()))?;
        if command.starts_with("--") {
            return Err(ParseError(format!(
                "expected a command, got flag {command}"
            )));
        }
        let mut flags = HashMap::new();
        while let Some(tok) = iter.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ParseError(format!(
                    "unexpected positional argument '{tok}'"
                )));
            };
            if name.is_empty() {
                return Err(ParseError("empty flag name".into()));
            }
            let value = if BOOLEAN_FLAGS.contains(&name) {
                "true".to_string()
            } else {
                iter.next()
                    .ok_or_else(|| ParseError(format!("flag --{name} requires a value")))?
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ParseError(format!("flag --{name} given twice")));
            }
        }
        Ok(Args { command, flags })
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ParseError> {
        self.get(name)
            .ok_or_else(|| ParseError(format!("missing required flag --{name}")))
    }

    /// A boolean flag (present = true).
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ParseError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("flag --{name}: cannot parse '{v}'"))),
        }
    }

    /// A comma-separated list of numbers.
    pub fn num_list<T: std::str::FromStr>(
        &self,
        name: &str,
        default: Vec<T>,
    ) -> Result<Vec<T>, ParseError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| ParseError(format!("flag --{name}: bad entry '{part}'")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ParseError> {
        Args::parse(tokens.iter().copied())
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["run", "--workload", "kmeans", "--scale", "0.5"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("workload"), Some("kmeans"));
        assert_eq!(a.num::<f64>("scale", 1.0).unwrap(), 0.5);
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse(&["run", "--copartition", "--workload", "sql"]).unwrap();
        assert!(a.has("copartition"));
        assert_eq!(a.get("workload"), Some("sql"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--workload", "x"]).is_err());
    }

    #[test]
    fn value_flag_without_value_is_an_error() {
        assert!(parse(&["run", "--workload"]).is_err());
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        assert!(parse(&["run", "--scale", "1", "--scale", "2"]).is_err());
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(parse(&["run", "kmeans"]).is_err());
    }

    #[test]
    fn defaults_and_requires() {
        let a = parse(&["tune", "--workload", "pca"]).unwrap();
        assert_eq!(a.num::<usize>("partitions", 300).unwrap(), 300);
        assert!(a.require("workload").is_ok());
        assert!(a.require("db").is_err());
    }

    #[test]
    fn num_list_parses_csv() {
        let a = parse(&["tune", "--scales", "0.1, 0.3,0.6"]).unwrap();
        assert_eq!(
            a.num_list("scales", vec![1.0]).unwrap(),
            vec![0.1, 0.3, 0.6]
        );
        let bad = parse(&["tune", "--scales", "0.1,zebra"]).unwrap();
        assert!(bad.num_list::<f64>("scales", vec![]).is_err());
    }

    #[test]
    fn bad_number_reports_flag_name() {
        let a = parse(&["run", "--scale", "woof"]).unwrap();
        let err = a.num::<f64>("scale", 1.0).unwrap_err();
        assert!(err.0.contains("--scale"));
    }
}
