//! Command implementations for `chopper-cli`.

use crate::args::Args;
use chopper::{Autotuner, DecisionAction, TestRunPlan, Workload, WorkloadDb};
use engine::{Context, EngineOptions, PartitionerKind, WorkloadConf};
use simcluster::{paper_cluster, uniform_cluster, ClusterSpec};
use workloads::{KMeans, KMeansConfig, LogReg, LogRegConfig, Pca, PcaConfig, Sql, SqlConfig};

/// Top-level usage text.
pub const USAGE: &str = "\
chopper-cli — CHOPPER auto-partitioning (CLUSTER 2016 reproduction)

commands:
  run      --workload kmeans|pca|sql|logreg [--scale F] [--partitions N]
           [--copartition] [--gantt] [--conf FILE] [--pipeline on|off] [--batch on|off]
           [--adaptive on|off] [--cluster paper|uniform:N,C,GHz]
           [--topology flat|rack:RxH[:oversub]]
           [--executor-mem SIZE] [--fault-plan FILE] [--fault-seed N]
  tune     --workload W --db FILE [--out-conf FILE]
           [--scales 0.1,0.3,0.6] [--partitions 60,150,300,600,1200]
           [--test-parallelism N]
  plan     --workload W --db FILE [--out-conf FILE] [--partitions N]
  compare  --workload W [--partitions N] [--executor-mem SIZE]
  trace    <workload> | --workload W [--scale F] [--partitions N]
           [--out FILE] [--summary-out FILE] [--clock all|virtual|wall]
           [--conf FILE] [--adaptive on|off] [--cluster paper|uniform:N,C,GHz]
           [--executor-mem SIZE] [--fault-plan FILE] [--fault-seed N]
  inspect  --db FILE
  conf     --file FILE
  serve    --trace FILE [--policy fair|fifo] [--slots N] [--queue-cap N]
           [--mem-shared SIZE] [--mem-tenant SIZE] [--workers N]
           [--partitions N] [--pipeline on|off] [--batch on|off] [--serial]
           [--cluster paper|uniform:N,C,GHz] [--results-out FILE]
           [--tables-out FILE] [--trace-out FILE]
  loadgen  --out FILE [--tenants N] [--jobs N] [--seed N]
  help

--topology shapes the simulated network: `flat` (default) is the
historical non-blocking fabric; `rack:<racks>x<hosts>[:oversub]` groups
hosts into racks behind ToR uplinks carrying hosts×NIC/oversub each way,
simulated flow-level with max-min fair sharing. The rack grid must have
room for every cluster node; malformed specs are rejected at parse time.

--adaptive (default on) enables runtime re-optimization: the engine
splits byte-hot reduce partitions in-job (range shuffles, key-preserving
— sorted outputs are bit-identical to the unsplit plan), and per-stage
actuals feed CHOPPER's cost objective to re-choose partitioner kind and
count for subsequent jobs. `--adaptive off` restores static plans
bit-for-bit.

--executor-mem bounds each simulated executor's unified memory (cache +
task working sets); accepts k/m/g suffixes, e.g. 512m. Omitting it keeps
the cache unbounded (no eviction or spill).

--fault-plan installs a deterministic, seeded fault plan (task failures,
node losses at virtual times, slow nodes, shuffle-chunk corruption) and
enables recovery: retries, lineage recomputation, replica re-homing, and
blacklisting. Results are bit-identical to the fault-free run; only
simulated timings change. --fault-seed overrides the plan file's seed.
Mutually exclusive with --executor-mem.

serve runs a multi-tenant job trace (see loadgen, or write one by hand:
`tenant NAME weight W [mem SIZE]` + `job TENANT at SECS KIND scale F
seed N` lines) through the long-lived job server. --fault-plan and
--executor-mem are rejected for serve: faults attach per tenant inside
the server, and tenant memory is governed by the admission ledger
(--mem-shared / --mem-tenant) instead of executor caches.
";

type CmdResult = Result<(), String>;

fn workload(args: &Args) -> Result<Box<dyn Workload>, String> {
    match args.require("workload").map_err(|e| e.to_string())? {
        "kmeans" => Ok(Box::new(KMeans::new(KMeansConfig::paper()))),
        "pca" => Ok(Box::new(Pca::new(PcaConfig::paper()))),
        "sql" => Ok(Box::new(Sql::new(SqlConfig::paper()))),
        "logreg" => Ok(Box::new(LogReg::new(LogRegConfig::paper()))),
        other => Err(format!(
            "unknown workload '{other}' (kmeans|pca|sql|logreg)"
        )),
    }
}

fn cluster(args: &Args) -> Result<ClusterSpec, String> {
    let mut spec = match args.get("cluster").unwrap_or("paper") {
        "paper" => paper_cluster(),
        spec if spec.starts_with("uniform:") => {
            let parts: Vec<&str> = spec["uniform:".len()..].split(',').collect();
            if parts.len() != 3 {
                return Err("expected --cluster uniform:<nodes>,<cores>,<ghz>".into());
            }
            let nodes = parts[0].parse().map_err(|_| "bad node count")?;
            let cores = parts[1].parse().map_err(|_| "bad core count")?;
            let ghz = parts[2].parse().map_err(|_| "bad GHz value")?;
            uniform_cluster(nodes, cores, ghz)
        }
        other => return Err(format!("unknown cluster spec '{other}'")),
    };
    if let Some(t) = args.get("topology") {
        let topo: simcluster::Topology = t
            .parse()
            .map_err(|e: simcluster::TopologyParseError| e.to_string())?;
        if !topo.covers(spec.num_nodes()) {
            return Err(format!(
                "--topology {topo} has room for fewer hosts than the cluster's \
                 {} nodes — grow the rack grid or shrink the cluster",
                spec.num_nodes()
            ));
        }
        spec.topology = topo;
    }
    Ok(spec)
}

/// Parses a byte size with an optional k/m/g suffix (e.g. "512m", "2g").
fn parse_mem_size(s: &str) -> Result<u64, String> {
    let s = s.trim().to_ascii_lowercase();
    let (digits, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(num) => {
            let mult = match s.as_bytes()[s.len() - 1] {
                b'k' => 1024u64,
                b'm' => 1024 * 1024,
                _ => 1024 * 1024 * 1024,
            };
            (num, mult)
        }
        None => (s.as_str(), 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad memory size '{s}' (expected e.g. 512m, 2g)"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("memory size '{s}' overflows"))
}

/// Loads `--fault-plan` (with an optional `--fault-seed` override).
fn fault_plan(args: &Args) -> Result<Option<engine::FaultPlan>, String> {
    let Some(path) = args.get("fault-plan") else {
        if args.get("fault-seed").is_some() {
            return Err("--fault-seed requires --fault-plan".into());
        }
        return Ok(None);
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut plan = engine::FaultPlan::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(seed) = args.get("fault-seed") {
        plan.seed = seed
            .parse()
            .map_err(|_| format!("bad --fault-seed '{seed}' (expected an integer)"))?;
    }
    Ok(Some(plan))
}

fn engine_opts(args: &Args) -> Result<EngineOptions, String> {
    let executor_mem = match args.get("executor-mem") {
        None => None,
        Some(s) => Some(parse_mem_size(s)?),
    };
    let pipeline = match args.get("pipeline") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("bad --pipeline '{other}' (expected on|off)")),
    };
    let batch = match args.get("batch") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("bad --batch '{other}' (expected on|off)")),
    };
    let adaptive = match args.get("adaptive") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("bad --adaptive '{other}' (expected on|off)")),
    };
    // An explicit `--pipeline on` cannot be honored under governed
    // memory (the engine would silently fall back to the barrier path);
    // reject the combination instead of surprising the user.
    if args.get("pipeline") == Some("on") && executor_mem.is_some() {
        return Err(
            "--pipeline on cannot be combined with --executor-mem: the governed \
             memory engine interleaves evictions with stage execution and always \
             runs the barrier path — drop one of the two flags"
                .into(),
        );
    }
    let cluster = cluster(args)?;
    // `--adaptive on` enables both halves of the adaptive layer: the
    // in-engine hot-partition splitter (EngineOptions::adaptive) and the
    // cross-job re-planner (CHOPPER's cost objective over observed
    // actuals). The wave width fed to the re-planner comes from the
    // simulated cluster, never the host worker count, so adaptive plans
    // stay bit-identical across `--workers`.
    let replan = adaptive.then(|| {
        chopper::replan_hook(chopper::ReplanOptions {
            slots: cluster.total_cores(),
            ..chopper::ReplanOptions::default()
        })
    });
    let opts = EngineOptions {
        cluster,
        default_parallelism: args.num("partitions", 300).map_err(|e| e.to_string())?,
        copartition_scheduling: args.has("copartition"),
        executor_mem,
        pipeline,
        batch,
        adaptive,
        replan,
        faults: fault_plan(args)?,
        ..EngineOptions::default()
    };
    // Surface invalid combinations (e.g. --fault-plan with
    // --executor-mem) as a parse-time error instead of an engine panic.
    opts.validate()?;
    Ok(opts)
}

/// Prints the fault-recovery counter line when a plan was installed.
fn print_fault_counters(ctx: &Context, opts: &EngineOptions) {
    if opts.faults.is_none() {
        return;
    }
    let fc = ctx.fault_counters();
    println!(
        "faults: {} injected failures over {} tasks, {} recomputed map tasks, \
         {} re-homed partitions ({} B), {} nodes lost, {} stragglers, {} corrupt chunks",
        fc.injected_failures,
        fc.retried_tasks,
        fc.recomputed_map_tasks,
        fc.replica_rehomed_partitions,
        fc.replica_read_bytes,
        fc.nodes_lost,
        fc.stragglers_applied,
        fc.corrupt_chunks
    );
}

fn load_conf(args: &Args) -> Result<WorkloadConf, String> {
    match args.get("conf") {
        None => Ok(WorkloadConf::new()),
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            WorkloadConf::from_text(&text)
        }
    }
}

fn print_stages(ctx: &Context) {
    println!(
        "{:>5} {:>16} {:>6} {:>10} {:>12} {:>12} {:>8}",
        "stage", "name", "tasks", "time", "shuffle KB", "remote KB", "skew"
    );
    for s in ctx.all_stages() {
        println!(
            "{:>5} {:>16} {:>6} {:>9.2}s {:>12.1} {:>12.1} {:>8.2}",
            s.stage_id,
            s.name,
            s.num_tasks,
            s.duration(),
            s.shuffle_data() as f64 / 1024.0,
            s.remote_read_bytes as f64 / 1024.0,
            s.task_skew()
        );
    }
    if let (Some(first), Some(last)) = (ctx.jobs().first(), ctx.jobs().last()) {
        println!(
            "total: {:.2}s over {} jobs",
            last.end - first.start,
            ctx.jobs().len()
        );
    }
}

fn tuner(args: &Args) -> Result<Autotuner, String> {
    let opts = engine_opts(args)?;
    let mut t = Autotuner::new(opts);
    t.test_plan = TestRunPlan {
        scales: args
            .num_list("scales", vec![0.1, 0.3, 0.6])
            .map_err(|e| e.to_string())?,
        partitions: args
            .num_list("test-partitions", vec![60, 150, 300, 600, 1200])
            .map_err(|e| e.to_string())?,
        kinds: vec![PartitionerKind::Hash, PartitionerKind::Range],
        probe_user_fixed: true,
        parallelism: args.num("test-parallelism", 1).map_err(|e| e.to_string())?,
    };
    Ok(t)
}

/// `run`: execute a workload once and print its stage table (and, with
/// `--gantt`, a per-stage schedule timeline).
pub fn run(args: &Args) -> CmdResult {
    let w = workload(args)?;
    let opts = engine_opts(args)?;
    let conf = load_conf(args)?;
    let scale = args.num("scale", 1.0).map_err(|e| e.to_string())?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    let ctx = w.run(&opts, &conf, scale);
    print_stages(&ctx);
    print_fault_counters(&ctx, &opts);
    if args.has("gantt") {
        for s in ctx.all_stages() {
            let timing = simcluster::StageTiming {
                start: s.start,
                end: s.end,
                tasks: s.placements.clone(),
            };
            println!(
                "
stage {} [{}]",
                s.stage_id, s.name
            );
            print!("{}", simcluster::render_gantt(&opts.cluster, &timing, 80));
        }
    }
    Ok(())
}

/// `trace`: execute a workload with the event sink enabled, write a
/// Perfetto-loadable Chrome `trace_event` JSON file, and print the
/// per-stage summary table.
pub fn trace(args: &Args) -> CmdResult {
    let w = workload(args)?;
    let mut opts = engine_opts(args)?;
    let sink = engine::TraceSink::enabled();
    opts.trace = sink.clone();
    let conf = load_conf(args)?;
    let scale = args.num("scale", 1.0).map_err(|e| e.to_string())?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    let filter = match args.get("clock").unwrap_or("all") {
        "all" => engine::ClockFilter::All,
        "virtual" => engine::ClockFilter::VirtualOnly,
        "wall" => engine::ClockFilter::WallOnly,
        other => return Err(format!("unknown --clock '{other}' (all|virtual|wall)")),
    };
    let ctx = w.run(&opts, &conf, scale);
    let json = sink.chrome_json_filtered(filter);
    let default_out = format!("trace_{}.json", w.name());
    let out = args.get("out").unwrap_or(&default_out);
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    let summary = ctx.trace_summary();
    print!("{}", summary.render());
    let mc = ctx.mem_counters();
    println!(
        "memory: {} evictions, {} spills ({} B), {} rereads ({} B), {} recomputes, {} released",
        mc.evictions,
        mc.spills,
        mc.spill_bytes,
        mc.rereads,
        mc.reread_bytes,
        mc.recomputes,
        mc.released
    );
    print_fault_counters(&ctx, &opts);
    if let Some(path) = args.get("summary-out") {
        std::fs::write(path, summary.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote summary JSON to {path}");
    }
    println!(
        "wrote {} trace events to {out} (open at https://ui.perfetto.dev)",
        sink.events().len()
    );
    Ok(())
}

/// `tune`: run the lightweight test grid and store observations.
pub fn tune(args: &Args) -> CmdResult {
    let w = workload(args)?;
    let db_path = args.require("db").map_err(|e| e.to_string())?;
    let mut db = if std::path::Path::new(db_path).exists() {
        WorkloadDb::load(std::path::Path::new(db_path))?
    } else {
        WorkloadDb::new()
    };
    let t = tuner(args)?;
    let runs = t.train(w.as_ref(), &mut db);
    db.save(std::path::Path::new(db_path))
        .map_err(|e| e.to_string())?;
    println!("recorded {runs} test runs into {db_path}");
    if let Some(path) = args.get("out-conf") {
        let plan = t.plan(w.as_ref(), &db);
        std::fs::write(path, plan.conf.to_text()).map_err(|e| e.to_string())?;
        println!("wrote configuration to {path}");
    }
    Ok(())
}

/// `plan`: compute the globally optimized plan from a trained database.
pub fn plan(args: &Args) -> CmdResult {
    let w = workload(args)?;
    let db_path = args.require("db").map_err(|e| e.to_string())?;
    let db = WorkloadDb::load(std::path::Path::new(db_path))?;
    let t = tuner(args)?;
    let plan = t.plan(w.as_ref(), &db);
    if plan.decisions.is_empty() {
        return Err(format!(
            "no observations for workload '{}' in {db_path}",
            w.name()
        ));
    }
    println!("{:>18} {:>16}  decision", "signature", "stage");
    for d in &plan.decisions {
        let what = match &d.action {
            DecisionAction::Retune(s) => format!("retune -> {} {}", s.kind, s.partitions),
            DecisionAction::RetuneGrouped(s) => {
                format!("retune (join group) -> {} {}", s.kind, s.partitions)
            }
            DecisionAction::InsertRepartition(s) => {
                format!("insert repartition -> {} {}", s.kind, s.partitions)
            }
            DecisionAction::KeepUserFixed => "keep (user-fixed)".into(),
            DecisionAction::FollowsProducer(sig) => {
                format!("follows producer {sig:016x} (partition dependency)")
            }
            DecisionAction::KeepDefault => "keep (no model)".into(),
        };
        println!("{:>18x} {:>16}  {what}", d.signature, d.name);
    }
    if let Some(path) = args.get("out-conf") {
        std::fs::write(path, plan.conf.to_text()).map_err(|e| e.to_string())?;
        println!("wrote configuration to {path}");
    } else {
        println!("\n{}", plan.conf.to_text());
    }
    Ok(())
}

/// `compare`: the full vanilla-vs-CHOPPER protocol.
pub fn compare(args: &Args) -> CmdResult {
    let w = workload(args)?;
    let t = tuner(args)?;
    println!(
        "running vanilla, {} test runs, and the tuned configuration...",
        t.test_plan.num_runs()
    );
    let cmp = t.compare(w.as_ref());
    println!("\n== vanilla ==");
    print_stages(&cmp.vanilla);
    println!("\n== CHOPPER ==");
    print_stages(&cmp.chopper);
    println!(
        "\n{}: {:.1}s -> {:.1}s ({:+.1}%)",
        cmp.workload,
        cmp.vanilla_time(),
        cmp.chopper_time(),
        cmp.improvement_pct()
    );
    Ok(())
}

/// `inspect`: summarize a workload database.
pub fn inspect(args: &Args) -> CmdResult {
    let db_path = args.require("db").map_err(|e| e.to_string())?;
    let db = WorkloadDb::load(std::path::Path::new(db_path))?;
    let names = db.workload_names();
    if names.is_empty() {
        println!("{db_path}: empty database");
        return Ok(());
    }
    for name in names {
        let rec = db.workload(name).expect("listed");
        println!(
            "workload '{name}': {} observations over {} runs",
            rec.num_observations(),
            rec.runs.len()
        );
        if let Some(reference) = rec.reference_run() {
            println!(
                "  reference run: {} input bytes, {} stages, {:.1}s",
                reference.input_bytes,
                reference.dag.len(),
                reference.duration
            );
            for stage in &reference.dag {
                let cv = chopper::cross_validation_error(
                    rec.observations(stage.signature, stage.observed_kind),
                    4,
                )
                .map(|e| format!(" cv-err={:.2}", e))
                .unwrap_or_default();
                println!(
                    "    {:016x} {:<18} P={:<5} {}{}{}{cv}",
                    stage.signature,
                    stage.name,
                    stage.observed_partitions,
                    stage.observed_kind,
                    if stage.is_join { " join" } else { "" },
                    if stage.user_fixed { " user-fixed" } else { "" },
                );
            }
        }
    }
    Ok(())
}

/// `conf`: validate and pretty-print a configuration file.
pub fn conf(args: &Args) -> CmdResult {
    let path = args.require("file").map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let parsed = WorkloadConf::from_text(&text)?;
    println!(
        "{path}: valid ({} stage entries, {} repartition insertions{})",
        parsed.stages.len(),
        parsed.insert_repartition.len(),
        parsed
            .default_parallelism
            .map(|d| format!(", default parallelism {d}"))
            .unwrap_or_default()
    );
    print!("{}", parsed.to_text());
    Ok(())
}

/// Builds the job server's engine options from `serve` flags.
///
/// `serve` exposes a narrower engine surface than `run`, and the two
/// flags it drops are rejected at parse time (mirroring the
/// `--pipeline on` × `--executor-mem` conflict in [`engine_opts`])
/// rather than silently ignored: a global `--fault-plan` would perturb
/// every tenant's virtual clock (the server attaches plans per tenant),
/// and `--executor-mem` governs cache eviction, which the job server
/// replaces with the admission ledger's per-tenant budgets.
fn serve_engine_opts(args: &Args) -> Result<EngineOptions, String> {
    if args.get("fault-plan").is_some() || args.get("fault-seed").is_some() {
        return Err(
            "--fault-plan cannot be combined with serve: the job server installs \
             fault plans per tenant, so a global plan would perturb every \
             tenant's virtual clock — use `run --fault-plan` for single-job \
             fault studies, or the per-tenant plans in the fault-equivalence \
             tests as a template"
                .into(),
        );
    }
    if args.get("executor-mem").is_some() {
        return Err(
            "--executor-mem cannot be combined with serve: tenant memory is \
             governed by the admission ledger — size it with --mem-shared and \
             --mem-tenant instead"
                .into(),
        );
    }
    let pipeline = match args.get("pipeline") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("bad --pipeline '{other}' (expected on|off)")),
    };
    let batch = match args.get("batch") {
        None | Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("bad --batch '{other}' (expected on|off)")),
    };
    let defaults = jobserver::server_engine_defaults();
    let opts = EngineOptions {
        cluster: cluster(args)?,
        default_parallelism: args
            .num("partitions", defaults.default_parallelism)
            .map_err(|e| e.to_string())?,
        workers: args
            .num("workers", defaults.workers)
            .map_err(|e| e.to_string())?,
        pipeline,
        batch,
        ..defaults
    };
    opts.validate()?;
    Ok(opts)
}

/// `serve`: run a multi-tenant job trace through the job server and
/// print per-tenant latency/throughput figures.
pub fn serve(args: &Args) -> CmdResult {
    let path = args.require("trace").map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let trace = jobserver::JobTrace::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut cfg = jobserver::ServerConfig {
        policy: jobserver::Policy::parse(args.get("policy").unwrap_or("fair"))?,
        engine: serve_engine_opts(args)?,
        ..jobserver::ServerConfig::default()
    };
    cfg.slots = args.num("slots", cfg.slots).map_err(|e| e.to_string())?;
    cfg.queue_cap = args
        .num("queue-cap", cfg.queue_cap)
        .map_err(|e| e.to_string())?;
    if let Some(s) = args.get("mem-shared") {
        cfg.mem_shared = parse_mem_size(s)?;
    }
    if let Some(s) = args.get("mem-tenant") {
        cfg.mem_guarantee = parse_mem_size(s)?;
    }
    if args.has("serial") {
        cfg.interleave = jobserver::Interleave::Serial;
    }
    if args.get("trace-out").is_some() {
        // One sink catches both server-level events (queue depth, job
        // spans) and the engines' own stage/task spans.
        let sink = engine::TraceSink::enabled();
        cfg.trace = sink.clone();
        cfg.engine.trace = sink;
    }
    let report = jobserver::serve(&trace, &cfg)?;
    print!("{}", report.render());
    if let Some(p) = args.get("results-out") {
        std::fs::write(p, report.to_json()).map_err(|e| format!("write {p}: {e}"))?;
        println!("wrote report JSON to {p}");
    }
    if let Some(p) = args.get("tables-out") {
        std::fs::write(p, report.tables_text()).map_err(|e| format!("write {p}: {e}"))?;
        println!("wrote per-job result tables to {p}");
    }
    if let Some(p) = args.get("trace-out") {
        let json = cfg
            .trace
            .chrome_json_filtered(engine::ClockFilter::VirtualOnly);
        std::fs::write(p, &json).map_err(|e| format!("write {p}: {e}"))?;
        println!(
            "wrote {} trace events to {p} (open at https://ui.perfetto.dev)",
            cfg.trace.events().len()
        );
    }
    Ok(())
}

/// `loadgen`: generate a deterministic multi-tenant job trace for
/// `serve` (tenant 0 is a weight-1 batch tenant with periodic heavy
/// jobs; the rest are weight-2 interactive tenants).
pub fn loadgen(args: &Args) -> CmdResult {
    let tenants: usize = args.num("tenants", 4).map_err(|e| e.to_string())?;
    let jobs: usize = args.num("jobs", 56).map_err(|e| e.to_string())?;
    let seed: u64 = args.num("seed", 11).map_err(|e| e.to_string())?;
    if tenants == 0 || jobs == 0 {
        return Err("--tenants and --jobs must be positive".into());
    }
    let out = args.require("out").map_err(|e| e.to_string())?;
    let trace = jobserver::generate(tenants, jobs, seed);
    std::fs::write(out, trace.to_text()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} jobs over {} tenants (seed {seed}) to {out}",
        trace.jobs.len(),
        trace.tenants.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().copied()).expect("valid args")
    }

    #[test]
    fn workload_selection() {
        assert_eq!(
            workload(&args(&["run", "--workload", "kmeans"]))
                .unwrap()
                .name(),
            "kmeans"
        );
        assert_eq!(
            workload(&args(&["run", "--workload", "sql"]))
                .unwrap()
                .name(),
            "sql"
        );
        assert_eq!(
            workload(&args(&["run", "--workload", "logreg"]))
                .unwrap()
                .name(),
            "logreg"
        );
        assert!(workload(&args(&["run", "--workload", "zebra"])).is_err());
        assert!(workload(&args(&["run"])).is_err());
    }

    #[test]
    fn cluster_specs() {
        let paper = cluster(&args(&["run"])).unwrap();
        assert_eq!(paper.num_nodes(), 5);
        let uni = cluster(&args(&["run", "--cluster", "uniform:3,8,2.5"])).unwrap();
        assert_eq!(uni.total_cores(), 24);
        assert!(cluster(&args(&["run", "--cluster", "uniform:3,8"])).is_err());
        assert!(cluster(&args(&["run", "--cluster", "mesh"])).is_err());
    }

    #[test]
    fn topology_flag_shapes_the_cluster() {
        let flat = cluster(&args(&["run", "--cluster", "uniform:8,4,2.0"])).unwrap();
        assert!(flat.topology.is_flat());
        let racked = cluster(&args(&[
            "run",
            "--cluster",
            "uniform:8,4,2.0",
            "--topology",
            "rack:4x2:4",
        ]))
        .unwrap();
        assert_eq!(
            racked.topology,
            simcluster::Topology::Rack {
                racks: 4,
                hosts: 2,
                oversub: 4.0
            }
        );
        assert_eq!(racked.rack_of(7), 3);
        // Explicit flat is accepted and identical to the default.
        let explicit = cluster(&args(&[
            "run",
            "--cluster",
            "uniform:8,4,2.0",
            "--topology",
            "flat",
        ]))
        .unwrap();
        assert_eq!(explicit, flat);
    }

    #[test]
    fn malformed_topology_specs_die_at_parse_time() {
        for bad in ["rack:8", "rack:0x4", "mesh:2x2", "rack:2x2:0.5", "Rack:2x2"] {
            let err = cluster(&args(&["run", "--topology", bad]))
                .expect_err(&format!("'{bad}' must be rejected"));
            assert!(err.contains("topology"), "'{bad}' error: {err}");
        }
        // A well-formed grid that is too small for the cluster is also an
        // argument error, not a later panic.
        let err = cluster(&args(&[
            "run",
            "--cluster",
            "uniform:8,4,2.0",
            "--topology",
            "rack:2x2",
        ]))
        .unwrap_err();
        assert!(err.contains("room"), "got: {err}");
    }

    #[test]
    fn engine_options_follow_flags() {
        let o = engine_opts(&args(&["run", "--partitions", "64", "--copartition"])).unwrap();
        assert_eq!(o.default_parallelism, 64);
        assert!(o.copartition_scheduling);
        let d = engine_opts(&args(&["run"])).unwrap();
        assert_eq!(d.default_parallelism, 300);
        assert!(!d.copartition_scheduling);
    }

    #[test]
    fn pipeline_flag_parses_on_off() {
        assert!(engine_opts(&args(&["run"])).unwrap().pipeline);
        assert!(
            engine_opts(&args(&["run", "--pipeline", "on"]))
                .unwrap()
                .pipeline
        );
        assert!(
            !engine_opts(&args(&["run", "--pipeline", "off"]))
                .unwrap()
                .pipeline
        );
        let err = match engine_opts(&args(&["run", "--pipeline", "maybe"])) {
            Err(e) => e,
            Ok(_) => panic!("bad --pipeline value must be rejected"),
        };
        assert!(err.contains("--pipeline"));
    }

    #[test]
    fn batch_flag_parses_on_off() {
        assert!(engine_opts(&args(&["run"])).unwrap().batch);
        assert!(engine_opts(&args(&["run", "--batch", "on"])).unwrap().batch);
        assert!(
            !engine_opts(&args(&["run", "--batch", "off"]))
                .unwrap()
                .batch
        );
        let err = match engine_opts(&args(&["run", "--batch", "maybe"])) {
            Err(e) => e,
            Ok(_) => panic!("bad --batch value must be rejected"),
        };
        assert!(err.contains("--batch"));
    }

    #[test]
    fn adaptive_flag_parses_on_off() {
        let on = engine_opts(&args(&["run"])).unwrap();
        assert!(on.adaptive && on.replan.is_some());
        let on = engine_opts(&args(&["run", "--adaptive", "on"])).unwrap();
        assert!(on.adaptive && on.replan.is_some());
        let off = engine_opts(&args(&["run", "--adaptive", "off"])).unwrap();
        assert!(!off.adaptive && off.replan.is_none());
        let err = match engine_opts(&args(&["run", "--adaptive", "maybe"])) {
            Err(e) => e,
            Ok(_) => panic!("bad --adaptive value must be rejected"),
        };
        assert!(err.contains("--adaptive"));
    }

    #[test]
    fn mem_size_parsing() {
        assert_eq!(parse_mem_size("1024"), Ok(1024));
        assert_eq!(parse_mem_size("2k"), Ok(2048));
        assert_eq!(parse_mem_size("512m"), Ok(512 * 1024 * 1024));
        assert_eq!(parse_mem_size("2G"), Ok(2 * 1024 * 1024 * 1024));
        assert!(parse_mem_size("lots").is_err());
        assert!(parse_mem_size("12q").is_err());
    }

    #[test]
    fn executor_mem_flag_bounds_the_engine() {
        let o = engine_opts(&args(&["run", "--executor-mem", "256m"])).unwrap();
        assert_eq!(o.executor_mem, Some(256 * 1024 * 1024));
        assert!(o.per_task_mem_budget().is_some());
        let d = engine_opts(&args(&["run"])).unwrap();
        assert_eq!(d.executor_mem, None);
        let err = match engine_opts(&args(&["run", "--executor-mem", "banana"])) {
            Err(e) => e,
            Ok(_) => panic!("bad size must be rejected"),
        };
        assert!(err.contains("memory size"));
    }

    fn opts_err(tokens: &[&str]) -> String {
        match engine_opts(&args(tokens)) {
            Err(e) => e,
            Ok(_) => panic!("expected engine_opts to fail for {tokens:?}"),
        }
    }

    fn write_plan(name: &str, body: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("chopper-cli-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    #[test]
    fn fault_plan_flag_loads_and_seed_overrides() {
        let path = write_plan("smoke.plan", "seed 7\ntask-fail-prob 0.1\nlose-node 1 30\n");
        let o = engine_opts(&args(&["run", "--fault-plan", path.to_str().unwrap()])).unwrap();
        let plan = o.faults.expect("plan installed");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.task_fail_prob, 0.1);
        assert_eq!(plan.node_loss.len(), 1);

        let o = engine_opts(&args(&[
            "run",
            "--fault-plan",
            path.to_str().unwrap(),
            "--fault-seed",
            "99",
        ]))
        .unwrap();
        assert_eq!(o.faults.unwrap().seed, 99, "--fault-seed wins");
    }

    #[test]
    fn fault_seed_without_plan_is_rejected() {
        let err = opts_err(&["run", "--fault-seed", "3"]);
        assert!(err.contains("--fault-plan"), "got: {err}");
    }

    #[test]
    fn malformed_fault_plan_reports_the_file_and_line() {
        let path = write_plan("bad.plan", "lose-node onlyonearg\n");
        let err = opts_err(&["run", "--fault-plan", path.to_str().unwrap()]);
        assert!(err.contains("bad.plan"), "got: {err}");
        assert!(err.contains("line 1"), "got: {err}");
    }

    #[test]
    fn fault_plan_conflicts_with_executor_mem_at_parse_time() {
        let path = write_plan("ok.plan", "task-fail-prob 0.1\n");
        let err = opts_err(&[
            "run",
            "--fault-plan",
            path.to_str().unwrap(),
            "--executor-mem",
            "256m",
        ]);
        assert!(err.contains("--executor-mem"), "got: {err}");
    }

    #[test]
    fn fault_plan_node_out_of_range_is_rejected() {
        let path = write_plan("range.plan", "lose-node 7 10\n");
        let err = opts_err(&[
            "run",
            "--fault-plan",
            path.to_str().unwrap(),
            "--cluster",
            "uniform:3,4,2.0",
        ]);
        assert!(err.contains("node"), "got: {err}");
    }

    #[test]
    fn explicit_pipeline_on_conflicts_with_executor_mem() {
        let err = opts_err(&["run", "--pipeline", "on", "--executor-mem", "256m"]);
        assert!(err.contains("--pipeline on"), "got: {err}");
        // Without the explicit flag the combination is allowed: the
        // engine runs the barrier path under governed memory.
        let o = engine_opts(&args(&["run", "--executor-mem", "256m"])).unwrap();
        assert!(o.pipeline && o.executor_mem.is_some());
    }

    #[test]
    fn conf_loading_defaults_to_empty() {
        assert!(load_conf(&args(&["run"])).unwrap().is_empty());
        assert!(load_conf(&args(&["run", "--conf", "/nonexistent/x"])).is_err());
    }

    #[test]
    fn tuner_grid_flags() {
        let t = tuner(&args(&[
            "tune",
            "--scales",
            "0.2,0.4",
            "--test-partitions",
            "10,20",
        ]))
        .unwrap();
        assert_eq!(t.test_plan.scales, vec![0.2, 0.4]);
        assert_eq!(t.test_plan.partitions, vec![10, 20]);
        assert_eq!(t.test_plan.parallelism, 1, "serial grid by default");
        let t = tuner(&args(&["tune", "--test-parallelism", "4"])).unwrap();
        assert_eq!(t.test_plan.parallelism, 4);
    }

    #[test]
    fn run_rejects_bad_scale() {
        let err = run(&args(&["run", "--workload", "kmeans", "--scale", "0"])).unwrap_err();
        assert!(err.contains("scale"));
    }

    #[test]
    fn trace_writes_chrome_json_and_summary() {
        let dir = std::env::temp_dir().join(format!("chopper-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.json");
        let summary = dir.join("s.json");
        trace(&args(&[
            "trace",
            "--workload",
            "kmeans",
            "--scale",
            "0.05",
            "--partitions",
            "24",
            "--out",
            out.to_str().unwrap(),
            "--summary-out",
            summary.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"ph\":\"X\""));
        let sjson = std::fs::read_to_string(&summary).unwrap();
        assert!(sjson.starts_with("{\"stages\":["));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_rejects_bad_clock() {
        let err = trace(&args(&[
            "trace",
            "--workload",
            "kmeans",
            "--scale",
            "0.05",
            "--clock",
            "lunar",
        ]))
        .unwrap_err();
        assert!(err.contains("--clock"));
    }

    /// `EngineOptions` has no `Debug`, so unwrap the error by hand.
    fn serve_opts_err(tokens: &[&str]) -> String {
        match serve_engine_opts(&args(tokens)) {
            Err(e) => e,
            Ok(_) => panic!("expected serve_engine_opts to reject {tokens:?}"),
        }
    }

    #[test]
    fn serve_rejects_fault_plan_at_parse_time() {
        let err = serve_opts_err(&["serve", "--fault-plan", "plans/p.plan"]);
        assert!(err.contains("--fault-plan"), "{err}");
        assert!(err.contains("serve"), "{err}");
        let err = serve_opts_err(&["serve", "--fault-seed", "7"]);
        assert!(err.contains("serve"), "{err}");
    }

    #[test]
    fn serve_rejects_executor_mem_at_parse_time() {
        let err = serve_opts_err(&["serve", "--executor-mem", "512m"]);
        assert!(err.contains("--executor-mem"), "{err}");
        assert!(err.contains("--mem-shared"), "{err}");
    }

    #[test]
    fn serve_engine_flags_follow_defaults_and_overrides() {
        let d = serve_engine_opts(&args(&["serve"])).unwrap();
        let defaults = jobserver::server_engine_defaults();
        assert_eq!(d.default_parallelism, defaults.default_parallelism);
        assert!(d.pipeline && d.batch);
        let o = serve_engine_opts(&args(&[
            "serve",
            "--workers",
            "2",
            "--partitions",
            "8",
            "--pipeline",
            "off",
            "--batch",
            "off",
        ]))
        .unwrap();
        assert_eq!(o.workers, 2);
        assert_eq!(o.default_parallelism, 8);
        assert!(!o.pipeline && !o.batch);
    }

    #[test]
    fn loadgen_then_serve_round_trip() {
        let dir = std::env::temp_dir().join("chopper_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("jobs.trace");
        let results = dir.join("report.json");
        let tables = dir.join("tables.txt");
        loadgen(&args(&[
            "loadgen",
            "--tenants",
            "2",
            "--jobs",
            "8",
            "--seed",
            "3",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        serve(&args(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--slots",
            "2",
            "--workers",
            "2",
            "--partitions",
            "8",
            "--cluster",
            "uniform:4,4,2.0",
            "--serial",
            "--results-out",
            results.to_str().unwrap(),
            "--tables-out",
            tables.to_str().unwrap(),
        ]))
        .unwrap();
        let report =
            jobserver::ServeReport::parse(&std::fs::read_to_string(&results).unwrap()).unwrap();
        assert_eq!(report.completed, 8);
        let tables_text = std::fs::read_to_string(&tables).unwrap();
        assert_eq!(tables_text, report.tables_text());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_requires_positive_counts() {
        let err = loadgen(&args(&["loadgen", "--tenants", "0", "--out", "x"])).unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_policy() {
        let dir = std::env::temp_dir().join("chopper_cli_serve_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("jobs.trace");
        std::fs::write(
            &trace_path,
            "tenant a weight 1\njob a at 0 wordcount scale 0.05 seed 1\n",
        )
        .unwrap();
        let err = serve(&args(&[
            "serve",
            "--trace",
            trace_path.to_str().unwrap(),
            "--policy",
            "lottery",
        ]))
        .unwrap_err();
        assert!(err.contains("lottery"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
