//! End-to-end tests driving the compiled `chopper-cli` binary through the
//! full tune → inspect → plan → run pipeline.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chopper-cli"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chopper-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn help_prints_usage() {
    let out = run_ok(bin().arg("help"));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chopper-cli"));
    assert!(text.contains("compare"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_fails_cleanly() {
    let out = bin().args(["run"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workload"));
}

#[test]
fn run_prints_stage_table() {
    let out = run_ok(bin().args([
        "run",
        "--workload",
        "sql",
        "--scale",
        "0.05",
        "--cluster",
        "uniform:2,4,2.0",
        "--partitions",
        "16",
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("join-revenue"),
        "stage table expected:\n{text}"
    );
    assert!(text.contains("total:"));
}

#[test]
fn tune_plan_run_round_trip() {
    let dir = tmpdir("roundtrip");
    let db = dir.join("db.json");
    let conf = dir.join("conf.txt");

    // Tune on a tiny grid.
    run_ok(bin().args([
        "tune",
        "--workload",
        "sql",
        "--db",
        db.to_str().unwrap(),
        "--cluster",
        "uniform:2,4,2.0",
        "--partitions",
        "64",
        "--scales",
        "0.02,0.05",
        "--test-partitions",
        "8,24,64",
    ]));
    assert!(db.exists(), "database persisted");

    // Inspect it.
    let out = run_ok(bin().args(["inspect", "--db", db.to_str().unwrap()]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("workload 'sql'"));
    assert!(text.contains("join"));

    // Plan from it, writing the Fig. 6 config file.
    let out = run_ok(bin().args([
        "plan",
        "--workload",
        "sql",
        "--db",
        db.to_str().unwrap(),
        "--cluster",
        "uniform:2,4,2.0",
        "--partitions",
        "64",
        "--out-conf",
        conf.to_str().unwrap(),
    ]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("retune"));
    assert!(conf.exists());

    // Validate the config file.
    let out = run_ok(bin().args(["conf", "--file", conf.to_str().unwrap()]));
    assert!(String::from_utf8_lossy(&out.stdout).contains("valid"));

    // Run under the tuned configuration.
    run_ok(bin().args([
        "run",
        "--workload",
        "sql",
        "--scale",
        "0.05",
        "--cluster",
        "uniform:2,4,2.0",
        "--partitions",
        "64",
        "--copartition",
        "--conf",
        conf.to_str().unwrap(),
    ]));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn conf_rejects_garbage() {
    let dir = tmpdir("badconf");
    let path = dir.join("bad.txt");
    std::fs::write(&path, "stage zz hash ten\n").unwrap();
    let out = bin()
        .args(["conf", "--file", path.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
