//! The bench harness consumes `TraceSummary` as structured data: its
//! rows must agree with the engine's stage metrics, and its JSON form
//! must round-trip through the workspace JSON parser.

use bench::{paper_engine, stages};
use chopper::Workload;
use engine::{TraceSink, WorkloadConf};
use workloads::{KMeans, KMeansConfig};

#[test]
fn summary_rows_agree_with_stage_metrics() {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 5_000;
    let w = KMeans::new(cfg);
    let mut opts = paper_engine(60, false);
    opts.trace = TraceSink::enabled();
    let ctx = w.run(&opts, &WorkloadConf::new(), 1.0);

    let summary = ctx.trace_summary();
    let metrics = stages(&ctx);
    assert_eq!(summary.stages.len(), metrics.len());
    for (row, m) in summary.stages.iter().zip(&metrics) {
        assert_eq!(row.stage_id, m.stage_id);
        assert_eq!(row.tasks, m.num_tasks);
        assert_eq!(row.duration_s.to_bits(), m.duration().to_bits());
        assert_eq!(row.skew.to_bits(), m.task_skew().to_bits());
        assert_eq!(row.shuffle_write_bytes, m.shuffle_write_bytes);
        assert_eq!(row.remote_read_bytes, m.remote_read_bytes);
        assert!(row.p50_task_s <= row.p95_task_s && row.p95_task_s <= row.max_task_s);
    }
    assert!(summary.total_s > 0.0);
    assert!(summary.pool.items >= summary.pool.stolen);

    // Machine-consumable form parses with the workspace JSON parser.
    let json = serde::Json::parse(&summary.to_json()).expect("summary JSON parses");
    let stages_field = json.get_field("stages").expect("stages array");
    match stages_field {
        serde::Json::Arr(rows) => assert_eq!(rows.len(), metrics.len()),
        other => panic!("stages must be an array, got {other:?}"),
    }
}
