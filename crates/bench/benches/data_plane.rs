//! Data-plane before/after benchmarks: the persistent work-stealing pool
//! vs the seed's per-stage thread spawning, the fused zero-copy narrow
//! chain vs op-at-a-time materialization, and the hash-once pre-sized
//! bucketize vs the seed's re-hashing one. The "before" kernels live in
//! `bench::dataplane` and reimplement the replaced seed code verbatim.

use bench::dataplane::{fused_chain, seed_bucketize, seed_chain, spawn_par_map, ChainOp};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::shuffle::bucketize;
use engine::{HashPartitioner, Key, Record, ReduceFn, Value, WorkerPool};
use std::sync::Arc;

fn records(n: usize, keys: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(Key::Int(i as i64 % keys), Value::Int(1)))
        .collect()
}

fn chain() -> Vec<ChainOp> {
    vec![
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 5 != 0)),
        ChainOp::Map(Box::new(|r: &Record| {
            Record::new(r.key.clone(), Value::Int(r.value.as_int() + 1))
        })),
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 2 == 0)),
    ]
}

fn pool_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    let workers = 4;
    let tasks = 256;
    let work = |i: usize| -> u64 {
        let mut acc = i as u64;
        for _ in 0..2_000 {
            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        }
        acc
    };
    g.bench_function("spawn-par-map-256-tasks", |b| {
        b.iter(|| spawn_par_map(workers, tasks, work))
    });
    let pool = WorkerPool::new(workers);
    g.bench_function("worker-pool-256-tasks", |b| {
        b.iter(|| pool.map(tasks, work))
    });
    g.finish();
}

fn narrow_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("narrow-chain");
    let input = records(200_000, 1000);
    let ops = chain();
    assert_eq!(seed_chain(&input, &ops), fused_chain(&input, &ops));
    g.bench_function("seed-copy-then-op-at-a-time-200k", |b| {
        b.iter(|| seed_chain(&input, &ops))
    });
    g.bench_function("fused-borrowed-single-pass-200k", |b| {
        b.iter(|| fused_chain(&input, &ops))
    });
    g.finish();
}

fn bucketize_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucketize");
    let data = records(100_000, 2000);
    let part = HashPartitioner::new(300);
    let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
    g.bench_function("seed-no-combine-100k", |b| {
        b.iter(|| seed_bucketize(&data, &part, None))
    });
    g.bench_function("presized-no-combine-100k", |b| {
        b.iter(|| bucketize(&data, &part, None))
    });
    g.bench_function("seed-combine-100k", |b| {
        b.iter(|| seed_bucketize(&data, &part, Some(&sum)))
    });
    g.bench_function("hash-once-combine-100k", |b| {
        b.iter(|| bucketize(&data, &part, Some(&sum)))
    });
    g.finish();
}

criterion_group!(benches, pool_dispatch, narrow_chain, bucketize_kernels);
criterion_main!(benches);
