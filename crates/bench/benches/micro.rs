//! Component microbenchmarks: the hot kernels every experiment above is
//! built from — partitioners, shuffle bucketing with combine, least-squares
//! model fitting, the Eq. 4 grid search, and the cluster simulator itself.

use chopper::{Observation, StageModel};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use engine::shuffle::bucketize;
use engine::{HashPartitioner, Key, Partitioner, RangePartitioner, Record, ReduceFn, Value};
use simcluster::{paper_cluster, Simulation, TaskSpec};
use std::sync::Arc;

fn records(n: usize, keys: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(Key::Int(i as i64 % keys), Value::Int(1)))
        .collect()
}

fn partitioners(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    let keys: Vec<Key> = (0..100_000).map(Key::Int).collect();
    let hash = HashPartitioner::new(300);
    g.bench_function("hash-100k-keys", |b| {
        b.iter(|| keys.iter().map(|k| hash.partition(k)).sum::<usize>())
    });
    let range = RangePartitioner::from_sample(keys.iter(), 300, 7);
    g.bench_function("range-100k-keys", |b| {
        b.iter(|| keys.iter().map(|k| range.partition(k)).sum::<usize>())
    });
    g.bench_function("range-construction-from-sample", |b| {
        b.iter(|| RangePartitioner::from_sample(keys.iter(), 300, 7))
    });
    g.finish();
}

fn shuffle(c: &mut Criterion) {
    let mut g = c.benchmark_group("shuffle");
    let data = records(50_000, 500);
    let part = HashPartitioner::new(64);
    let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
    g.bench_function("bucketize-50k-no-combine", |b| {
        b.iter(|| bucketize(&data, &part, None))
    });
    g.bench_function("bucketize-50k-with-combine", |b| {
        b.iter(|| bucketize(&data, &part, Some(&sum)))
    });
    g.finish();
}

fn model_fitting(c: &mut Criterion) {
    let mut obs = Vec::new();
    for d in 1..8 {
        for p in 1..8 {
            let (d, p) = (d as f64 * 1e7, p as f64 * 100.0);
            obs.push(Observation {
                d,
                p,
                t_exe: d / 1e6 / p.min(112.0) + 0.01 * p,
                s_shuffle: 100.0 * p,
            });
        }
    }
    c.bench_function("model/fit-eq1-eq2-49-points", |b| {
        b.iter(|| StageModel::fit(&obs).expect("fits"))
    });
    let model = StageModel::fit(&obs).expect("fits");
    let candidates: Vec<usize> = (1..=99).map(|i| i * 10).collect();
    c.bench_function("model/eq4-grid-search", |b| {
        b.iter(|| {
            candidates
                .iter()
                .map(|&p| chopper::cost(&model, Default::default(), 4e7, p as f64, 300))
                .fold(f64::INFINITY, f64::min)
        })
    });
}

fn simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcluster");
    for &tasks in &[300usize, 2000] {
        g.bench_function(format!("stage-of-{tasks}-tasks"), |b| {
            b.iter_batched(
                || {
                    let sim = Simulation::new(paper_cluster());
                    let specs: Vec<TaskSpec> = (0..tasks)
                        .map(|i| TaskSpec::compute(1.0 + (i % 7) as f64))
                        .collect();
                    (sim, specs)
                },
                |(mut sim, specs)| sim.run_stage(&specs),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = partitioners, shuffle, model_fitting, simulator
}
criterion_main!(benches);
