//! Benches regenerating the paper's SQL shuffle study at reduced scale:
//! Fig 9 (shuffle data per stage) and Fig 10 (per-stage execution time with
//! the co-partitioned join).

use chopper::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{EngineOptions, StageKind, WorkloadConf};
use simcluster::paper_cluster;
use workloads::{Sql, SqlConfig};

fn workload() -> Sql {
    Sql::new(SqlConfig {
        orders: 60_000,
        returns: 30_000,
        keys: 8_000,
        zipf: 0.9,
        payload: 24,
        seed: 42,
    })
}

fn engine(copartition: bool) -> EngineOptions {
    EngineOptions {
        cluster: paper_cluster(),
        default_parallelism: 300,
        copartition_scheduling: copartition,
        workers: 2,
        ..EngineOptions::default()
    }
}

fn fig9(c: &mut Criterion) {
    let w = workload();
    let vanilla = w.run(&engine(false), &WorkloadConf::new(), 1.0);
    let chopper = w.run(&engine(true), &WorkloadConf::new(), 1.0);
    let v: Vec<u64> = vanilla
        .all_stages()
        .iter()
        .map(|s| s.shuffle_data())
        .collect();
    let ch: Vec<u64> = chopper
        .all_stages()
        .iter()
        .map(|s| s.shuffle_data())
        .collect();
    // Stage 4 (the join) moves identical volume under both systems.
    assert_eq!(
        v[4], ch[4],
        "fig9 shape: join volume is placement-independent"
    );
    assert!(
        v[..4].iter().all(|&b| b > 0),
        "fig9 shape: stages 0-3 shuffle"
    );
    println!(
        "fig9: shuffle KB vanilla {:?}",
        v.iter().map(|b| b / 1024).collect::<Vec<_>>()
    );
    println!(
        "fig9: shuffle KB chopper {:?}",
        ch.iter().map(|b| b / 1024).collect::<Vec<_>>()
    );
    c.bench_function("fig9/sql-pipeline", |b| {
        b.iter(|| w.run(&engine(false), &WorkloadConf::new(), 1.0))
    });
}

fn fig10(c: &mut Criterion) {
    let w = workload();
    let chopper = w.run(&engine(true), &WorkloadConf::new(), 1.0);
    let join = chopper
        .all_stages()
        .into_iter()
        .find(|s| s.kind == StageKind::Join)
        .expect("stage 4 is the join")
        .clone();
    assert_eq!(
        join.remote_read_bytes, 0,
        "fig10 shape: co-partitioned join reads locally"
    );
    println!(
        "fig10: join stage {:.2}s, {} KB read, {} KB remote",
        join.duration(),
        join.shuffle_read_bytes / 1024,
        join.remote_read_bytes / 1024
    );
    c.bench_function("fig10/copartitioned-pipeline", |b| {
        b.iter(|| w.run(&engine(true), &WorkloadConf::new(), 1.0))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig9, fig10
}
criterion_main!(benches);
