//! Benches regenerating the paper's utilization time series (Figs 11-14):
//! CPU %, memory %, packets/s, and disk transactions/s over a workload's
//! execution, sampled from the simulator's trace.

use bench::paper_engine;
use chopper::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use engine::WorkloadConf;
use simcluster::TracePoint;
use workloads::{KMeans, KMeansConfig};

fn run_traced() -> Vec<TracePoint> {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 20_000;
    let w = KMeans::new(cfg);
    // The scaled paper engine keeps memory/bandwidth proportions
    // consistent with the scaled-down inputs (see `bench::DATA_SCALE`).
    let mut opts = paper_engine(300, false);
    opts.workers = 2;
    opts.trace_bucket = 5.0;
    let ctx = w.run(&opts, &WorkloadConf::new(), 1.0);
    ctx.sim().trace().points()
}

fn assert_series(points: &[TracePoint], metric: fn(&TracePoint) -> f64, name: &str) {
    assert!(!points.is_empty(), "{name}: trace must not be empty");
    assert!(
        points.iter().any(|p| metric(p) > 0.0),
        "{name}: the series must show activity"
    );
    assert!(points
        .iter()
        .all(|p| metric(p).is_finite() && metric(p) >= 0.0));
}

fn fig11(c: &mut Criterion) {
    let pts = run_traced();
    assert_series(&pts, |p| p.cpu_pct, "fig11 cpu");
    assert!(pts.iter().all(|p| p.cpu_pct <= 100.0 + 1e-6));
    println!(
        "fig11: cpu%% series (first 10 buckets) {:?}",
        pts.iter()
            .take(10)
            .map(|p| p.cpu_pct.round())
            .collect::<Vec<_>>()
    );
    c.bench_function("fig11/traced-run", |b| b.iter(run_traced));
}

fn fig12(c: &mut Criterion) {
    let pts = run_traced();
    assert_series(&pts, |p| p.mem_pct, "fig12 mem");
    assert!(pts.iter().all(|p| p.mem_pct <= 100.0 + 1e-6));
    println!(
        "fig12: mem%% peak {:.2}",
        pts.iter().map(|p| p.mem_pct).fold(0.0, f64::max)
    );
    c.bench_function("fig12/trace-render", |b| {
        let pts = run_traced();
        b.iter(|| pts.iter().map(|p| p.mem_pct).sum::<f64>())
    });
}

fn fig13(c: &mut Criterion) {
    let pts = run_traced();
    assert_series(&pts, |p| p.packets_per_sec, "fig13 packets");
    println!(
        "fig13: peak packets/s {:.0}",
        pts.iter().map(|p| p.packets_per_sec).fold(0.0, f64::max)
    );
    c.bench_function("fig13/trace-render", |b| {
        let pts = run_traced();
        b.iter(|| pts.iter().map(|p| p.packets_per_sec).sum::<f64>())
    });
}

fn fig14(c: &mut Criterion) {
    let pts = run_traced();
    assert_series(&pts, |p| p.transactions_per_sec, "fig14 transactions");
    println!(
        "fig14: peak transactions/s {:.0}",
        pts.iter()
            .map(|p| p.transactions_per_sec)
            .fold(0.0, f64::max)
    );
    c.bench_function("fig14/trace-render", |b| {
        let pts = run_traced();
        b.iter(|| pts.iter().map(|p| p.transactions_per_sec).sum::<f64>())
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig11, fig12, fig13, fig14
}
criterion_main!(benches);
