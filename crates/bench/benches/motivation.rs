//! Benches regenerating the paper's Section II-B motivation study at
//! reduced scale: Table I, Fig 2 (per-stage time vs P), Fig 3 (stage-0 time
//! vs P), Fig 4 (shuffle volume vs P), and the 2000-partition blow-up.
//!
//! Each bench prints its (reduced) data series once, then measures the cost
//! of regenerating one sweep point. Shape invariants are asserted so a
//! regression in any crate fails `cargo bench` loudly.

use chopper::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{EngineOptions, WorkloadConf};
use simcluster::paper_cluster;
use workloads::{KMeans, KMeansConfig};

fn engine(p: usize) -> EngineOptions {
    EngineOptions {
        cluster: paper_cluster(),
        default_parallelism: p,
        workers: 2,
        ..EngineOptions::default()
    }
}

fn workload() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 20_000; // reduced for bench turnaround
    KMeans::new(cfg)
}

fn sweep(p: usize) -> (Vec<f64>, Vec<u64>, f64) {
    let ctx = workload().run(&engine(p), &WorkloadConf::new(), 1.0);
    let durs: Vec<f64> = ctx.all_stages().iter().map(|s| s.duration()).collect();
    let shuffles: Vec<u64> = ctx
        .all_stages()
        .iter()
        .filter(|s| s.shuffle_data() > 0)
        .map(|s| s.shuffle_data())
        .collect();
    let total = ctx.jobs().last().expect("jobs ran").end;
    (durs, shuffles, total)
}

fn table1(c: &mut Criterion) {
    let w = workload();
    println!(
        "table1: kmeans reduced input = {} bytes",
        w.full_input_bytes()
    );
    c.bench_function("table1/input-generation", |b| {
        b.iter(|| {
            let gen = workloads::PointGen::new(10, 20, 2.0, 1);
            criterion::black_box(gen.partition(20_000, 0, 64))
        })
    });
}

fn fig2(c: &mut Criterion) {
    let (d100, _, _) = sweep(100);
    let (d500, _, _) = sweep(500);
    let both_win =
        d100.iter().zip(&d500).any(|(a, b)| a < b) && d100.iter().zip(&d500).any(|(a, b)| a > b);
    assert!(both_win, "fig2 shape: no single P wins every stage");
    println!("fig2: per-stage times P=100 {d100:.1?}");
    println!("fig2: per-stage times P=500 {d500:.1?}");
    c.bench_function("fig2/per-stage-sweep-point", |b| b.iter(|| sweep(300)));
}

fn fig3(c: &mut Criterion) {
    let t100 = sweep(100).0[0];
    let t300 = sweep(300).0[0];
    let t500 = sweep(500).0[0];
    assert!(
        t100 > t300 && t300 > t500,
        "fig3 shape: stage-0 improves 100→500"
    );
    println!("fig3: stage0 P=100 {t100:.1}s, P=300 {t300:.1}s, P=500 {t500:.1}s");
    c.bench_function("fig3/stage0-sweep-point", |b| b.iter(|| sweep(100).0[0]));
}

fn fig4(c: &mut Criterion) {
    let s100 = sweep(100).1;
    let s500 = sweep(500).1;
    for (a, b) in s100.iter().zip(&s500) {
        assert!(a < b, "fig4 shape: shuffle grows with P ({a} !< {b})");
    }
    println!("fig4: shuffle bytes P=100 {s100:?}");
    println!("fig4: shuffle bytes P=500 {s500:?}");
    c.bench_function("fig4/shuffle-accounting", |b| b.iter(|| sweep(300).1));
}

fn sec2b(c: &mut Criterion) {
    let (_, _, t500) = sweep(500);
    let (_, _, t2000) = sweep(2000);
    assert!(t2000 > t500, "sec2b shape: 2000 partitions are slower");
    println!("sec2b: total P=500 {t500:.1}s vs P=2000 {t2000:.1}s");
    c.bench_function("sec2b/blowup-point", |b| b.iter(|| sweep(2000).2));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1, fig2, fig3, fig4, sec2b
}
criterion_main!(benches);
