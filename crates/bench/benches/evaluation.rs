//! Benches regenerating the paper's headline evaluation at reduced scale:
//! Fig 7 (vanilla vs CHOPPER totals), Fig 8 (KMeans per-stage breakdown),
//! Table II (stage-0 time) and Table III (per-stage partition counts).
//!
//! The expensive auto-tuning comparison runs once per figure; the measured
//! kernels are the planner-side components that regenerate each artifact.

use chopper::{Autotuner, Comparison, TestRunPlan, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{EngineOptions, PartitionerKind, WorkloadConf};
use simcluster::paper_cluster;
use workloads::{KMeans, KMeansConfig};

fn workload() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 20_000;
    KMeans::new(cfg)
}

fn tuner() -> Autotuner {
    let mut t = Autotuner::new(EngineOptions {
        cluster: paper_cluster(),
        default_parallelism: 300,
        workers: 2,
        ..EngineOptions::default()
    });
    t.test_plan = TestRunPlan {
        scales: vec![0.2, 0.5, 1.0],
        partitions: vec![60, 150, 300, 600],
        kinds: vec![PartitionerKind::Hash, PartitionerKind::Range],
        probe_user_fixed: true,
        parallelism: 2,
    };
    t
}

fn compare_once() -> Comparison {
    tuner().compare(&workload())
}

fn fig7(c: &mut Criterion) {
    let cmp = compare_once();
    assert!(
        cmp.chopper_time() < cmp.vanilla_time(),
        "fig7 shape: CHOPPER must win ({:.1}s vs {:.1}s)",
        cmp.chopper_time(),
        cmp.vanilla_time()
    );
    println!(
        "fig7: kmeans vanilla {:.1}s -> chopper {:.1}s ({:+.1}%)",
        cmp.vanilla_time(),
        cmp.chopper_time(),
        cmp.improvement_pct()
    );
    // Measured kernel: computing the global plan from a trained database.
    let db = cmp.db.clone();
    let t = tuner();
    let w = workload();
    c.bench_function("fig7/global-planning", |b| b.iter(|| t.plan(&w, &db)));
}

fn fig8_table2(c: &mut Criterion) {
    let cmp = compare_once();
    let v0 = cmp.vanilla.all_stages()[0].duration();
    let c0 = cmp.chopper.all_stages()[0].duration();
    // At reduced scale, the partition-dependency group may decide that
    // keeping stage 0's default is jointly optimal for the cached chain,
    // so require "no slower" here (the full-scale repro shows the Table II
    // improvement) together with a faster total.
    assert!(
        c0 <= v0 * 1.01,
        "table2 shape: CHOPPER's stage 0 must not regress ({c0:.1} vs {v0:.1})"
    );
    assert!(cmp.chopper_time() < cmp.vanilla_time());
    println!("table2: stage0 vanilla {v0:.1}s -> chopper {c0:.1}s");
    for (i, (vs, cs)) in cmp
        .vanilla
        .all_stages()
        .iter()
        .zip(cmp.chopper.all_stages())
        .enumerate()
    {
        println!(
            "fig8: stage {i} {:.2}s -> {:.2}s",
            vs.duration(),
            cs.duration()
        );
    }
    // Measured kernel: one vanilla full run (the Fig 8 baseline column).
    let w = workload();
    let opts = EngineOptions {
        cluster: paper_cluster(),
        default_parallelism: 300,
        workers: 2,
        ..EngineOptions::default()
    };
    c.bench_function("fig8/vanilla-run", |b| {
        b.iter(|| w.run(&opts, &WorkloadConf::new(), 1.0))
    });
}

fn table3(c: &mut Criterion) {
    let cmp = compare_once();
    let counts: Vec<usize> = cmp
        .chopper
        .all_stages()
        .iter()
        .map(|s| s.num_tasks)
        .collect();
    let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "table3 shape: per-stage variety, got {counts:?}"
    );
    // Iterations (the repeated update stages) share one count.
    let kcfg = workload().config.clone();
    let first_iter = 1 + kcfg.prep_passes;
    let iter_reduce: Vec<usize> = (0..kcfg.iterations)
        .map(|i| counts[first_iter + 2 * i + 1])
        .collect();
    assert!(
        iter_reduce.windows(2).all(|w| w[0] == w[1]),
        "table3 shape: iterative stages share a scheme: {iter_reduce:?}"
    );
    println!("table3: chopper per-stage partitions {counts:?}");
    // Measured kernel: emitting + parsing the configuration file.
    let conf = cmp.plan.conf.clone();
    c.bench_function("table3/config-roundtrip", |b| {
        b.iter(|| {
            let text = conf.to_text();
            engine::WorkloadConf::from_text(&text).expect("round trip")
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig7, fig8_table2, table3
}
criterion_main!(benches);
