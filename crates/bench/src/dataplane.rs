//! Before/after kernels for the data-plane benchmarks.
//!
//! The executor rewrite replaced three seed-era kernels: per-stage scoped
//! thread spawning with one mutex per result, deep-copied task inputs run
//! through one materialized pass per narrow op, and a bucketize that
//! re-hashed every key through `SipHash` twice. The "before" functions here
//! reimplement those seed kernels verbatim so `cargo bench --bench
//! data_plane` and `repro -- dataplane` can quantify the persistent-pool +
//! zero-copy data plane against the code it replaced, on identical inputs.

use engine::shuffle::TaskBuckets;
use engine::{
    batch_size, Context, EngineOptions, GenFn, Key, Partitioner, Record, ReduceFn, Value,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The seed's per-stage dispatch: fresh scoped threads per call, a shared
/// `fetch_add` cursor with chunk size 1, and one mutex per result slot.
pub fn spawn_par_map<U, F>(workers: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *out[i].lock().expect("result slot") = Some(v);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("slot").expect("every index computed"))
        .collect()
}

/// The seed's map-side bucketize: `partition()` re-hashes every key, the
/// combine index re-hashes it a second time through `SipHash`, and buckets
/// grow on demand.
pub fn seed_bucketize(
    records: &[Record],
    partitioner: &dyn Partitioner,
    combine: Option<&ReduceFn>,
) -> (TaskBuckets, u64) {
    let p = partitioner.num_partitions();
    let mut combine_ops = 0u64;
    let buckets: Vec<Vec<Record>> = match combine {
        None => {
            let mut out: Vec<Vec<Record>> = vec![Vec::new(); p];
            for r in records {
                out[partitioner.partition(&r.key)].push(r.clone());
            }
            out
        }
        Some(f) => {
            let mut out: Vec<Vec<Record>> = vec![Vec::new(); p];
            let mut index: Vec<HashMap<engine::Key, usize>> = vec![HashMap::new(); p];
            for r in records {
                let b = partitioner.partition(&r.key);
                match index[b].get(&r.key) {
                    Some(&i) => {
                        let merged = f(&out[b][i].value, &r.value);
                        out[b][i].value = merged;
                        combine_ops += 1;
                    }
                    None => {
                        index[b].insert(r.key.clone(), out[b].len());
                        out[b].push(r.clone());
                    }
                }
            }
            out
        }
    };
    let bytes = buckets.iter().map(|b| batch_size(b)).collect();
    (
        TaskBuckets {
            buckets: buckets
                .into_iter()
                .map(|b| engine::shuffle::Bucket::Rows(Arc::new(b)))
                .collect(),
            bytes,
        },
        combine_ops,
    )
}

/// A boxed record-to-records expansion, as in the engine's `FlatMapFn`.
pub type FlatMapOp = Box<dyn Fn(&Record) -> Vec<Record> + Send + Sync>;

/// A narrow op for the chain kernels below.
pub enum ChainOp {
    Map(Box<dyn Fn(&Record) -> Record + Send + Sync>),
    Filter(Box<dyn Fn(&Record) -> bool + Send + Sync>),
    FlatMap(FlatMapOp),
}

/// The seed's narrow-chain execution: deep-copy the task's input slice,
/// then materialize a fresh vector per op.
pub fn seed_chain(input: &[Record], ops: &[ChainOp]) -> Vec<Record> {
    let mut records = input.to_vec();
    for op in ops {
        records = match op {
            ChainOp::Map(f) => records.iter().map(f).collect(),
            ChainOp::Filter(f) => records.into_iter().filter(|r| f(r)).collect(),
            ChainOp::FlatMap(f) => records.iter().flat_map(f).collect(),
        };
    }
    records
}

/// The rewrite's narrow-chain execution: borrow the input slice and stream
/// each record through the whole chain in one pass, cloning only records
/// that survive to the output.
pub fn fused_chain(input: &[Record], ops: &[ChainOp]) -> Vec<Record> {
    let mut out = Vec::new();
    for rec in input {
        feed_ref(ops, rec, &mut out);
    }
    out
}

fn feed_ref(ops: &[ChainOp], rec: &Record, out: &mut Vec<Record>) {
    let Some((head, rest)) = ops.split_first() else {
        out.push(rec.clone());
        return;
    };
    match head {
        ChainOp::Map(f) => feed_owned(rest, f(rec), out),
        ChainOp::Filter(f) => {
            if f(rec) {
                feed_ref(rest, rec, out);
            }
        }
        ChainOp::FlatMap(f) => {
            for r in f(rec) {
                feed_owned(rest, r, out);
            }
        }
    }
}

fn feed_owned(ops: &[ChainOp], rec: Record, out: &mut Vec<Record>) {
    let Some((head, rest)) = ops.split_first() else {
        out.push(rec);
        return;
    };
    match head {
        ChainOp::Map(f) => feed_owned(rest, f(&rec), out),
        ChainOp::Filter(f) => {
            if f(&rec) {
                feed_owned(rest, rec, out);
            }
        }
        ChainOp::FlatMap(f) => {
            for r in f(&rec) {
                feed_owned(rest, r, out);
            }
        }
    }
}

/// The pre-pipelining reduce-side join merge: three `SipHash` hash maps
/// grown on demand, a separate match-collection pass, and an output vector
/// with no capacity hint.
pub fn seed_merge_join(left: &[Record], right: &[Record]) -> (Vec<Record>, u64) {
    let mut order: Vec<Key> = Vec::new();
    let mut table: HashMap<Key, Vec<Value>> = HashMap::new();
    for r in left {
        table
            .entry(r.key.clone())
            .or_insert_with(|| {
                order.push(r.key.clone());
                Vec::new()
            })
            .push(r.value.clone());
    }
    let mut matches: HashMap<Key, Vec<Value>> = HashMap::new();
    let mut probes = 0u64;
    for r in right {
        probes += 1;
        if table.contains_key(&r.key) {
            matches
                .entry(r.key.clone())
                .or_default()
                .push(r.value.clone());
        }
    }
    let mut out = Vec::new();
    for k in order {
        if let Some(rights) = matches.get(&k) {
            for l in &table[&k] {
                for r in rights {
                    out.push(Record::new(
                        k.clone(),
                        Value::Pair(Box::new(l.clone()), Box::new(r.clone())),
                    ));
                }
            }
        }
    }
    (out, probes)
}

/// The pre-pipelining reduce-side co-group merge: two on-demand `SipHash`
/// maps plus an order list, output assembled without a capacity hint.
pub fn seed_merge_cogroup(left: &[Record], right: &[Record]) -> Vec<Record> {
    let mut order: Vec<Key> = Vec::new();
    let mut lefts: HashMap<Key, Vec<Value>> = HashMap::new();
    let mut rights: HashMap<Key, Vec<Value>> = HashMap::new();
    for r in left {
        lefts
            .entry(r.key.clone())
            .or_insert_with(|| {
                order.push(r.key.clone());
                Vec::new()
            })
            .push(r.value.clone());
    }
    for r in right {
        if !lefts.contains_key(&r.key) && !rights.contains_key(&r.key) {
            order.push(r.key.clone());
        }
        rights
            .entry(r.key.clone())
            .or_default()
            .push(r.value.clone());
    }
    order
        .into_iter()
        .map(|k| {
            let l = lefts.remove(&k).unwrap_or_default();
            let r = rights.remove(&k).unwrap_or_default();
            Record::new(
                k,
                Value::Pair(
                    Box::new(Value::List(Arc::new(l))),
                    Box::new(Value::List(Arc::new(r))),
                ),
            )
        })
        .collect()
}

/// Builds and runs the multi-stage SQL-join workload used by the
/// shuffle-pipeline benchmark: two generated tables each aggregated with
/// `reduce_by_key` (independent sibling stages), joined on the shared key
/// space, then collected. Returns the joined rows.
///
/// The tables carry boxed `Value::Pair` payloads, so every record the
/// barrier engine clones out of a map bucket costs two heap allocations —
/// exactly the copies the push-based exchange elides by moving bucket
/// ownership into the reduce-side merges.
pub fn sql_join_workload(pipeline: bool, workers: usize, rows: usize) -> Vec<Record> {
    let parts = 8;
    let opts = EngineOptions {
        workers,
        pipeline,
        ..crate::paper_engine(parts, false)
    };
    let mut ctx = Context::new(opts);
    let n = rows;

    // A row payload shaped like a small SQL tuple: (id, (qty, amount)).
    // Boxed nesting makes cloning a row cost four heap allocations.
    let row = |id: i64, qty: i64, amount: i64| {
        Value::Pair(
            Box::new(Value::Int(id)),
            Box::new(Value::Pair(
                Box::new(Value::Int(qty)),
                Box::new(Value::Int(amount)),
            )),
        )
    };
    let gen_orders: GenFn = Arc::new(move |i, p| {
        let (lo, hi) = (i * n / p, (i + 1) * n / p);
        (lo..hi)
            .map(|j| Record::new(Key::Int((j % n) as i64), row(j as i64, 1, 7 * j as i64)))
            .collect()
    });
    let gen_returns: GenFn = Arc::new(move |i, p| {
        let (lo, hi) = (i * n / p, (i + 1) * n / p);
        (lo..hi)
            .map(|j| {
                Record::new(
                    Key::Int(((j * 3) % n) as i64),
                    row(-(j as i64), 1, 11 * j as i64),
                )
            })
            .collect()
    });
    let orders = ctx.text_file("pipe.orders", 30 * n as u64, gen_orders, 1e-9, "orders");
    let returns = ctx.text_file("pipe.returns", 30 * n as u64, gen_returns, 1e-9, "returns");

    let merge_pair: ReduceFn = Arc::new(|a, b| match (a, b) {
        (Value::Pair(a1, rest_a), Value::Pair(b1, rest_b)) => {
            match (rest_a.as_ref(), rest_b.as_ref()) {
                (Value::Pair(a2, a3), Value::Pair(b2, b3)) => Value::Pair(
                    Box::new(Value::Int(a1.as_int().min(b1.as_int()))),
                    Box::new(Value::Pair(
                        Box::new(Value::Int(a2.as_int() + b2.as_int())),
                        Box::new(Value::Int(a3.as_int().max(b3.as_int()))),
                    )),
                ),
                _ => unreachable!("nested pair rows"),
            }
        }
        _ => unreachable!("pair-valued tables"),
    });
    let agg_orders = ctx.reduce_by_key(orders, merge_pair.clone(), None, 1e-9, "agg-orders");
    let agg_returns = ctx.reduce_by_key(returns, merge_pair, None, 1e-9, "agg-returns");
    let joined = ctx.join(agg_orders, agg_returns, None, 1e-9, "join-tables");
    let balanced = ctx.repartition(joined, None, "rebalance");
    ctx.collect(balanced, "sql-join-pipeline")
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Key, Value};

    fn data(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new(Key::Int(i as i64 % 37), Value::Int(i as i64)))
            .collect()
    }

    fn chain() -> Vec<ChainOp> {
        vec![
            ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 3 != 0)),
            ChainOp::Map(Box::new(|r: &Record| {
                Record::new(r.key.clone(), Value::Int(r.value.as_int() * 2))
            })),
        ]
    }

    #[test]
    fn fused_chain_matches_seed_chain() {
        let input = data(500);
        let ops = chain();
        assert_eq!(seed_chain(&input, &ops), fused_chain(&input, &ops));
    }

    #[test]
    fn seed_bucketize_matches_current() {
        let input = data(2000);
        let part = engine::HashPartitioner::new(16);
        let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
        for combine in [None, Some(&sum)] {
            let (old, old_ops) = seed_bucketize(&input, &part, combine);
            let (new, new_ops) = engine::shuffle::bucketize(&input, &part, combine);
            assert_eq!(old_ops, new_ops);
            assert_eq!(old.bytes, new.bytes);
            for (a, b) in old.buckets.iter().zip(new.buckets.iter()) {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn columnar_kernels_match_row_kernels() {
        use engine::shuffle::{bucketize_columnar, bucketize_in, Bucket, TaskArena};
        use engine::{concat_int_batches, run_int_chain, ColumnBatch, IntOp};

        let input = data(2000);
        // Vectorized fused chain vs the row streaming pass.
        let batch = ColumnBatch::from_records(&input);
        let int_ops = vec![
            IntOp::Filter(Box::new(|v: i64| v % 3 != 0)),
            IntOp::Map(Box::new(|v: i64| v * 2)),
        ];
        let row_ops = chain();
        assert_eq!(
            run_int_chain(&batch, &int_ops).unwrap().to_records(),
            fused_chain(&input, &row_ops)
        );

        // Per-batch bucketize vs the row loop, buckets and byte tables.
        let part = engine::HashPartitioner::new(16);
        let mut arena_row = TaskArena::default();
        let mut arena_col = TaskArena::default();
        let (rb, row_ops_count) = bucketize_in(&input, &part, None, &mut arena_row);
        let (cb, col_ops_count) = bucketize_columnar(&input, &part, &mut arena_col).unwrap();
        assert_eq!(row_ops_count, col_ops_count);
        assert_eq!(rb.bytes, cb.bytes);
        assert_eq!(rb.buckets, cb.buckets);

        // Slice-shipping concat vs cloning records out of row buckets.
        let col_parts: Vec<ColumnBatch> = cb
            .buckets
            .iter()
            .map(|b| match b {
                Bucket::Cols(c) => c.clone(),
                Bucket::Rows(_) => unreachable!("columnar bucketize emits batches"),
            })
            .collect();
        let cloned: Vec<Record> = rb.buckets.iter().flat_map(|b| b.to_vec()).collect();
        assert_eq!(concat_int_batches(&col_parts).unwrap().to_records(), cloned);
    }

    #[test]
    fn spawn_par_map_covers_all_indices() {
        let out = spawn_par_map(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    fn sides(n: usize) -> (Vec<Record>, Vec<Record>) {
        let left = (0..n)
            .map(|i| Record::new(Key::Int(i as i64 % 23), Value::Int(i as i64)))
            .collect();
        let right = (0..n)
            .map(|i| Record::new(Key::Int(i as i64 % 31), Value::Int(-(i as i64))))
            .collect();
        (left, right)
    }

    #[test]
    fn seed_merge_join_matches_current() {
        let (left, right) = sides(600);
        assert_eq!(
            seed_merge_join(&left, &right),
            engine::shuffle::merge_join(&left, &right)
        );
    }

    #[test]
    fn seed_merge_cogroup_matches_current() {
        let (left, right) = sides(600);
        assert_eq!(
            seed_merge_cogroup(&left, &right),
            engine::shuffle::merge_cogroup(&left, &right)
        );
    }

    #[test]
    fn sql_join_workload_pipeline_matches_barrier() {
        let on = sql_join_workload(true, 2, 3_000);
        let off = sql_join_workload(false, 2, 3_000);
        assert!(!on.is_empty());
        assert_eq!(on, off);
    }
}
