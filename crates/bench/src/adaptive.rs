//! Adaptive-execution benchmark: the skewed aggregation (`skewagg`)
//! workload run `--adaptive off` vs `--adaptive on`.
//!
//! Every figure here is virtual-clock deterministic — the splitter keys
//! on data-plane byte tables and the replan hook on virtual durations —
//! so like the job-server sweep the committed
//! `results/BENCH_adaptive.json` regenerates verbatim and is checked by
//! the doc-sync drift gate. Perfgate re-measures it and enforces, on top
//! of bit-identity with the committed JSON, two hard floors: the
//! adaptive run at least [`ADAPTIVE_SPEEDUP_FLOOR`]x faster than the
//! static run, and the two modes' sorted output tables bit-identical.

use crate::DATA_SCALE;
use engine::{EngineOptions, PartitionerSpec, WorkloadConf};
use serde::{Deserialize, Serialize};
use simcluster::{ClusterSpec, NodeSpec};
use workloads::{SkewAgg, SkewAggConfig, SkewAggResult};

/// Hard floor on the end-to-end `--adaptive on` vs `off` speedup for the
/// skewed aggregation, regardless of what the committed baseline says.
pub const ADAPTIVE_SPEEDUP_FLOOR: f64 = 1.3;

/// Per-job virtual wall time under both modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveJobRow {
    /// Job label (`hot-agg`, `freq-agg` round one / two).
    pub job: String,
    /// Virtual seconds with the static plan.
    pub time_static: f64,
    /// Virtual seconds with adaptive execution.
    pub time_adaptive: f64,
    /// Reduce-stage virtual task count with the static plan.
    pub tasks_static: usize,
    /// Reduce-stage virtual task count with adaptive execution (exceeds
    /// the physical partition count when the splitter fired).
    pub tasks_adaptive: usize,
    /// Reduce-stage partitioner under the static plan, e.g. `range(16)`.
    pub scheme_static: String,
    /// Reduce-stage partitioner under adaptive execution.
    pub scheme_adaptive: String,
}

/// The adaptive-vs-static comparison (what `BENCH_adaptive.json` holds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// One row per job, in execution order.
    pub jobs: Vec<AdaptiveJobRow>,
    /// End-of-run virtual clock with the static plan.
    pub total_static: f64,
    /// End-of-run virtual clock with adaptive execution.
    pub total_adaptive: f64,
    /// `total_static / total_adaptive`.
    pub speedup: f64,
    /// Whether both modes produced bit-identical sorted output tables.
    pub tables_equal: bool,
    /// FNV-1a fingerprint over both sorted output tables (shared by the
    /// two modes whenever `tables_equal`).
    pub fingerprint: u64,
}

impl AdaptiveReport {
    /// Parses a committed report.
    pub fn parse(text: &str) -> Result<AdaptiveReport, String> {
        serde_json::from_str(text).map_err(|e| format!("parse adaptive report: {e}"))
    }

    /// Renders the report as indented JSON (what gets committed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The `hot-agg` row (the user-fixed range job the splitter targets).
    pub fn hot_row(&self) -> &AdaptiveJobRow {
        &self.jobs[0]
    }

    /// The final `freq-agg` row (the round the replan hook retunes).
    pub fn retuned_row(&self) -> &AdaptiveJobRow {
        self.jobs.last().expect("report has jobs")
    }
}

fn scheme_cell(scheme: Option<PartitionerSpec>) -> String {
    match scheme {
        Some(s) => format!("{:?}({})", s.kind, s.partitions).to_lowercase(),
        None => "-".to_string(),
    }
}

/// Three 4-core 2 GHz workers on 1 GbE, with every byte-denominated
/// capacity shrunk by [`DATA_SCALE`] — the same dimensional-consistency
/// argument as `paper_engine`: the scaled-down tables must meet
/// correspondingly scaled-down bandwidths or byte skew becomes
/// unrealistically cheap relative to compute.
fn bench_cluster() -> ClusterSpec {
    let mut cluster = ClusterSpec::new(
        (0..3)
            .map(|i| NodeSpec::new(&format!("n{i}"), 4, 2.0, 40, 1.0))
            .collect(),
    );
    let scale = DATA_SCALE as f64;
    for node in &mut cluster.nodes {
        node.memory_bytes /= DATA_SCALE;
        node.net_bandwidth /= scale;
        node.disk_bandwidth /= scale;
    }
    cluster.cache_bandwidth /= scale;
    cluster
}

fn run(adaptive: bool) -> SkewAggResult {
    let cluster = bench_cluster();
    // Wave width for the replan hook's makespan model comes from the
    // simulated cluster, never the host worker count — determinism.
    let slots = cluster.total_cores();
    let opts = EngineOptions {
        cluster,
        default_parallelism: SkewAggConfig::paper().partitions,
        workers: 4,
        adaptive,
        replan: adaptive.then(|| {
            chopper::replan_hook(chopper::ReplanOptions {
                slots,
                ..chopper::ReplanOptions::default()
            })
        }),
        ..EngineOptions::default()
    };
    SkewAgg::new(SkewAggConfig::paper()).execute(&opts, &WorkloadConf::new(), 1.0)
}

/// Runs the comparison. Deterministic: virtual-clock figures only.
pub fn measure_adaptive() -> AdaptiveReport {
    let stat = run(false);
    let adap = run(true);

    let mut jobs = Vec::new();
    for (js, ja) in stat.ctx.jobs().iter().zip(adap.ctx.jobs()) {
        assert_eq!(js.name, ja.name, "modes must run the same job sequence");
        // Each skewagg job is a source + reduce pair; index the reduce.
        let (rs, ra) = (&js.stages[1], &ja.stages[1]);
        jobs.push(AdaptiveJobRow {
            job: js.name.clone(),
            time_static: js.end - js.start,
            time_adaptive: ja.end - ja.start,
            tasks_static: rs.num_tasks,
            tasks_adaptive: ra.num_tasks,
            scheme_static: scheme_cell(rs.scheme),
            scheme_adaptive: scheme_cell(ra.scheme),
        });
    }

    let total_static = stat.ctx.clock();
    let total_adaptive = adap.ctx.clock();
    let tables_equal = stat.hot_table == adap.hot_table
        && stat.freq_table == adap.freq_table
        && stat.fingerprint() == adap.fingerprint();
    AdaptiveReport {
        jobs,
        total_static,
        total_adaptive,
        speedup: total_static / total_adaptive,
        tables_equal,
        fingerprint: adap.fingerprint(),
    }
}

/// The perfgate checks: bit-identity against the committed JSON plus the
/// absolute floors. `committed` is the raw text of
/// `results/BENCH_adaptive.json` (empty if missing — every check that
/// needs it then fails loudly rather than passing vacuously).
pub fn adaptive_gate_checks(committed: &str, fresh: &AdaptiveReport) -> Vec<(String, bool)> {
    let bit_identical = committed == fresh.to_json();
    let hot = fresh.hot_row();
    let retuned = fresh.retuned_row();
    let split_fired = hot.tasks_adaptive > hot.tasks_static;
    let replan_fired = retuned.scheme_adaptive != retuned.scheme_static;
    vec![
        (
            "fresh adaptive figures match committed BENCH_adaptive.json bit-identically"
                .to_string(),
            bit_identical,
        ),
        (
            format!(
                "adaptive beats static by >= {ADAPTIVE_SPEEDUP_FLOOR}x on the skewed \
                 aggregation ({:.2}x)",
                fresh.speedup
            ),
            fresh.speedup >= ADAPTIVE_SPEEDUP_FLOOR,
        ),
        (
            format!(
                "adaptive and static sorted output tables are bit-identical \
                 (fingerprint {:016x})",
                fresh.fingerprint
            ),
            fresh.tables_equal,
        ),
        (
            format!(
                "hot range partition splits into sub-tasks ({} virtual over {} physical)",
                hot.tasks_adaptive, hot.tasks_static
            ),
            split_fired,
        ),
        (
            format!(
                "replan retunes the repeated hash aggregation ({} -> {})",
                retuned.scheme_static, retuned.scheme_adaptive
            ),
            replan_fired,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let rep = AdaptiveReport {
            jobs: vec![AdaptiveJobRow {
                job: "hot-agg".into(),
                time_static: 10.5,
                time_adaptive: 6.25,
                tasks_static: 16,
                tasks_adaptive: 20,
                scheme_static: "range(16)".into(),
                scheme_adaptive: "range(16)".into(),
            }],
            total_static: 30.0,
            total_adaptive: 20.0,
            speedup: 1.5,
            tables_equal: true,
            fingerprint: 0xDEAD_BEEF,
        };
        let back = AdaptiveReport::parse(&rep.to_json()).expect("roundtrip");
        assert_eq!(back, rep);
    }

    #[test]
    fn gate_checks_fail_without_a_committed_baseline() {
        let fresh = measure_adaptive();
        let checks = adaptive_gate_checks("", &fresh);
        assert!(!checks[0].1, "empty baseline must not pass bit-identity");
        let against_self = adaptive_gate_checks(&fresh.to_json(), &fresh);
        assert!(against_self[0].1, "a report matches its own JSON");
    }
}
