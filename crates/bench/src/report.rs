//! Normalized data-plane benchmark report (`results/BENCH_dataplane.json`)
//! and the CI perf-regression gate that compares a fresh run against it.
//!
//! Absolute milliseconds are machine-specific, so the gate compares
//! *speedup ratios* (seed kernel vs rewritten kernel on the same host),
//! which are portable across hardware: a kernel whose fresh ratio drops
//! more than the tolerance below the committed baseline's ratio fails.

use crate::dataplane::{
    fused_chain, seed_bucketize, seed_chain, seed_merge_cogroup, seed_merge_join, spawn_par_map,
    sql_join_workload, ChainOp,
};
use engine::shuffle::{bucketize, bucketize_columnar, bucketize_in, bucketize_owned_in, TaskArena};
use engine::{
    concat_int_batches, run_int_chain, ColumnBatch, EngineOptions, HashPartitioner, IntOp, Key,
    Record, ReduceFn, Value, WorkerPool,
};
use serde::{Deserialize, Serialize};
use workloads::{KMeans, KMeansConfig};

/// One before/after kernel measurement (host milliseconds, best-of-N).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel id, stable across runs (the gate joins on it).
    pub name: String,
    /// Seed-era implementation, milliseconds.
    pub before_ms: f64,
    /// Current implementation, milliseconds.
    pub after_ms: f64,
    /// `before_ms / after_ms` — the machine-portable figure the gate checks.
    pub speedup: f64,
}

/// End-to-end host wall-clock of a reduced workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadWallclock {
    /// Workload id (e.g. `kmeans-20k`).
    pub workload: String,
    /// Executor-pool worker count for this run.
    pub workers: usize,
    /// Host milliseconds, best-of-N.
    pub host_ms: f64,
}

/// The whole `BENCH_dataplane.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataplaneReport {
    /// Always `"dataplane"`.
    pub experiment: String,
    /// Worker count used for the dispatch kernel and the multi-lane run.
    pub workers: usize,
    /// Before/after kernel timings.
    pub kernels: Vec<KernelResult>,
    /// Real-workload wall-clock across worker counts.
    pub workload_wallclock: Vec<WorkloadWallclock>,
}

impl DataplaneReport {
    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<DataplaneReport, String> {
        serde_json::from_str(text).map_err(|e| format!("parse dataplane report: {e}"))
    }

    /// Renders the report as indented JSON (what gets committed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelResult> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// One gate verdict: a baseline kernel joined with its fresh measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Kernel id.
    pub name: String,
    /// Committed speedup ratio.
    pub baseline_speedup: f64,
    /// Freshly measured speedup ratio (`None`: kernel missing from the
    /// fresh report, which also fails the gate).
    pub fresh_speedup: Option<f64>,
    /// Minimum acceptable fresh ratio (`baseline × (1 − tolerance)`).
    pub floor: f64,
}

impl GateCheck {
    /// Whether this kernel passes.
    pub fn ok(&self) -> bool {
        matches!(self.fresh_speedup, Some(s) if s >= self.floor)
    }
}

/// Compares a fresh report against the committed baseline.
///
/// Every kernel present in the baseline must exist in the fresh report
/// with a speedup no worse than `(1 - tolerance)` times the baseline's
/// (`tolerance = 0.15` → "fail if any kernel regresses >15%").
pub fn gate_checks(
    baseline: &DataplaneReport,
    fresh: &DataplaneReport,
    tolerance: f64,
) -> Vec<GateCheck> {
    baseline
        .kernels
        .iter()
        .map(|b| GateCheck {
            name: b.name.clone(),
            baseline_speedup: b.speedup,
            fresh_speedup: fresh.kernel(&b.name).map(|f| f.speedup),
            floor: b.speedup * (1.0 - tolerance),
        })
        .collect()
}

/// Folds several independently measured reports into a conservative
/// committed baseline: per kernel, the measurement with the *lowest*
/// speedup wins. The perfgate comparison is one-sided (fresh ≥
/// `(1 − tolerance) ×` baseline), so a jitter-inflated run committed as
/// the baseline would silently tighten every future gate; taking the
/// per-kernel minimum makes the committed floor something any honest run
/// can clear. Wall-clock rows are taken from the last run as-is (they are
/// reported, not gated).
pub fn conservative_baseline(mut reports: Vec<DataplaneReport>) -> DataplaneReport {
    let mut merged = reports.pop().expect("at least one report");
    for k in &mut merged.kernels {
        for r in &reports {
            if let Some(other) = r.kernel(&k.name) {
                if other.speedup < k.speedup {
                    *k = other.clone();
                }
            }
        }
    }
    merged
}

/// Per-kernel best of several fresh measurements — the gate-side
/// counterpart of [`conservative_baseline`]. The gate asks whether this
/// host can still *achieve* each kernel's speedup; scheduler jitter can
/// hide a win in any single run but cannot fabricate one across repeats,
/// so the fresh side keeps the highest observed ratio per kernel.
pub fn best_fresh(mut reports: Vec<DataplaneReport>) -> DataplaneReport {
    let mut merged = reports.pop().expect("at least one report");
    for k in &mut merged.kernels {
        for r in &reports {
            if let Some(other) = r.kernel(&k.name) {
                if other.speedup > k.speedup {
                    *k = other.clone();
                }
            }
        }
    }
    merged
}

/// Best-of-5 host wall-clock of `f`, in milliseconds.
pub fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One timed run of `f`, in milliseconds.
pub fn once_ms(f: impl FnOnce()) -> f64 {
    let t = std::time::Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

/// Best-of-7 of an *interleaved* before/after pair. Each closure runs one
/// iteration and returns its own elapsed milliseconds (via [`once_ms`], so
/// per-iteration setup can stay outside the timed window). Alternating
/// iterations means machine-level drift (frequency scaling, co-tenancy)
/// hits both sides of the ratio equally — timing each side in its own
/// block lets a slow minute land entirely on one side and skew the
/// speedup, which is exactly what a ratio-based CI gate cannot tolerate.
pub fn time_pair_ms(mut before: impl FnMut() -> f64, mut after: impl FnMut() -> f64) -> (f64, f64) {
    let mut b = f64::INFINITY;
    let mut a = f64::INFINITY;
    for _ in 0..7 {
        b = b.min(before());
        a = a.min(after());
    }
    (b, a)
}

/// Runs the full data-plane measurement: the four before/after kernels
/// plus the reduced-KMeans wall-clock at 1 and `workers` lanes.
pub fn measure_dataplane() -> DataplaneReport {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(4);

    // Kernel 1: dispatch of 256 compute-bound tasks.
    let tasks = 256;
    let work = |i: usize| -> u64 {
        let mut acc = i as u64;
        for _ in 0..20_000 {
            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        }
        acc
    };
    let pool = WorkerPool::new(workers);
    let (dispatch_before, dispatch_after) = time_pair_ms(
        || {
            once_ms(|| {
                std::hint::black_box(spawn_par_map(workers, tasks, work));
            })
        },
        || {
            once_ms(|| {
                std::hint::black_box(pool.map(tasks, work));
            })
        },
    );

    // Kernel 2: narrow chain over 200k records (deep-copy + one pass per op
    // vs borrowed fused single pass).
    let input: Vec<Record> = (0..200_000)
        .map(|i| Record::new(Key::Int(i % 1000), Value::Int(i)))
        .collect();
    let ops = vec![
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 5 != 0)),
        ChainOp::Map(Box::new(|r: &Record| {
            Record::new(r.key.clone(), Value::Int(r.value.as_int() + 1))
        })),
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 2 == 0)),
    ];
    assert_eq!(seed_chain(&input, &ops), fused_chain(&input, &ops));
    let (chain_before, chain_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(seed_chain(&input, &ops));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(fused_chain(&input, &ops));
                }
            })
        },
    );

    // Kernel 3: shuffle-write bucketize, with and without map-side combine.
    let part = HashPartitioner::new(300);
    let sum: ReduceFn =
        std::sync::Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
    // Three repetitions per timed window: a single pass is ~10 ms, short
    // enough that scheduler jitter dominates the ratio.
    let (nb_before, nb_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(seed_bucketize(&input, &part, None));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(bucketize(&input, &part, None));
                }
            })
        },
    );
    let (cb_before, cb_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(seed_bucketize(&input, &part, Some(&sum)));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(bucketize(&input, &part, Some(&sum)));
                }
            })
        },
    );

    // Kernel 5: vectorized fused int chain over a typed column batch vs the
    // row streaming pass over the same records. The batch is built outside
    // the timed window — in the engine it arrives prebuilt from the shuffle.
    let batch = ColumnBatch::from_records(&input);
    let int_ops = vec![
        IntOp::Filter(Box::new(|v: i64| v % 5 != 0)),
        IntOp::Map(Box::new(|v: i64| v.wrapping_mul(3) + 1)),
        IntOp::Filter(Box::new(|v: i64| v % 2 == 0)),
    ];
    let row_ops = vec![
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 5 != 0)),
        ChainOp::Map(Box::new(|r: &Record| {
            Record::new(
                r.key.clone(),
                Value::Int(r.value.as_int().wrapping_mul(3) + 1),
            )
        })),
        ChainOp::Filter(Box::new(|r: &Record| r.value.as_int() % 2 == 0)),
    ];
    assert_eq!(
        fused_chain(&input, &row_ops),
        run_int_chain(&batch, &int_ops)
            .expect("typed int batch")
            .to_records()
    );
    let (vc_before, vc_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(fused_chain(&input, &row_ops));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(run_int_chain(&batch, &int_ops));
                }
            })
        },
    );

    // Kernel 6: per-batch bucketize — one vectorized pass over the key
    // column plus a stable counting-sort gather, vs the row loop that
    // hashes and clones record-at-a-time. Both sides start from the same
    // `&[Record]` slice, as in the engine's shuffle write.
    let mut arena_row = TaskArena::default();
    let mut arena_col = TaskArena::default();
    {
        let (rb, _) = bucketize_in(&input, &part, None, &mut arena_row);
        let (cb, _) = bucketize_columnar(&input, &part, &mut arena_col).expect("typed keys");
        assert_eq!(rb.bytes, cb.bytes);
        assert_eq!(rb.buckets, cb.buckets);
    }
    let (pb_before, pb_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(bucketize_in(&input, &part, None, &mut arena_row));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(bucketize_columnar(&input, &part, &mut arena_col));
                }
            })
        },
    );

    // Kernel 7: slice-shipping reduce-side concat — splicing the typed
    // buffers of shuffled batch slices vs cloning every record out of row
    // buckets. Inputs are the buckets the two kernel-6 paths produce.
    let (row_tb, _) = bucketize_in(&input, &part, None, &mut arena_row);
    let row_parts: Vec<Vec<Record>> = row_tb.buckets.iter().map(|b| b.to_vec()).collect();
    let (col_tb, _) = bucketize_columnar(&input, &part, &mut arena_col).expect("typed keys");
    let col_parts: Vec<ColumnBatch> = col_tb
        .buckets
        .iter()
        .map(|b| match b {
            engine::shuffle::Bucket::Cols(c) => c.clone(),
            engine::shuffle::Bucket::Rows(_) => unreachable!("columnar bucketize emits batches"),
        })
        .collect();
    let spliced = concat_int_batches(&col_parts).expect("int batches");
    let cloned: Vec<Record> = row_parts.iter().flat_map(|p| p.iter().cloned()).collect();
    assert_eq!(spliced.to_records(), cloned);
    let (sm_before, sm_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    let mut out: Vec<Record> =
                        Vec::with_capacity(row_parts.iter().map(Vec::len).sum());
                    for p in &row_parts {
                        out.extend_from_slice(p);
                    }
                    std::hint::black_box(out);
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(concat_int_batches(&col_parts));
                }
            })
        },
    );

    // Real workload: end-to-end host wall-clock of a reduced KMeans run on
    // the persistent pool, single lane vs `workers` lanes.
    let mut cfg = KMeansConfig::paper();
    cfg.points = 20_000;
    let w = KMeans::new(cfg);
    let run_with = |lanes: usize| {
        let opts = EngineOptions {
            workers: lanes,
            ..crate::paper_engine(300, false)
        };
        time_ms(|| {
            use chopper::Workload as _;
            std::hint::black_box(w.run(&opts, &engine::WorkloadConf::new(), 1.0));
        })
    };
    let run_one = run_with(1);
    let run_many = run_with(workers);

    let kernel = |name: &str, before: f64, after: f64| KernelResult {
        name: name.to_string(),
        before_ms: before,
        after_ms: after,
        speedup: before / after,
    };
    DataplaneReport {
        experiment: "dataplane".to_string(),
        workers,
        kernels: vec![
            kernel("dispatch_spawn_vs_pool", dispatch_before, dispatch_after),
            kernel(
                "narrow_chain_materialized_vs_fused",
                chain_before,
                chain_after,
            ),
            kernel("bucketize_no_combine", nb_before, nb_after),
            kernel("bucketize_combine", cb_before, cb_after),
            kernel("columnar_fused_chain", vc_before, vc_after),
            kernel("columnar_bucketize", pb_before, pb_after),
            kernel("columnar_concat_merge", sm_before, sm_after),
        ],
        workload_wallclock: vec![
            WorkloadWallclock {
                workload: "kmeans-20k".to_string(),
                workers: 1,
                host_ms: run_one,
            },
            WorkloadWallclock {
                workload: "kmeans-20k".to_string(),
                workers,
                host_ms: run_many,
            },
        ],
    }
}

/// Runs the shuffle-pipeline measurement: the end-to-end SQL-join workload
/// with the push-based exchange on vs off (the PR's headline number), plus
/// the reduce-side merge and owned-bucketize micro-kernels it rides on.
/// The whole document reuses the [`DataplaneReport`] schema (experiment
/// `"shuffle_pipeline"`) so [`gate_checks`] works unchanged.
pub fn measure_shuffle_pipeline() -> DataplaneReport {
    let workers = 8;
    let rows = 100_000;

    // Kernel 1 (the acceptance number): end-to-end wall-clock of the
    // multi-stage SQL-join workload, barrier vs pipelined.
    let (e2e_off, e2e_on) = time_pair_ms(
        || {
            once_ms(|| {
                std::hint::black_box(sql_join_workload(false, workers, rows));
            })
        },
        || {
            once_ms(|| {
                std::hint::black_box(sql_join_workload(true, workers, rows));
            })
        },
    );

    // Micro-kernel inputs: two keyed sides with moderate key multiplicity.
    let n = 120_000;
    let left: Vec<Record> = (0..n)
        .map(|i| Record::new(Key::Int(i % 20_000), Value::Int(i)))
        .collect();
    let right: Vec<Record> = (0..n)
        .map(|i| Record::new(Key::Int((i * 3) % 20_000), Value::Int(-i)))
        .collect();

    // Kernel 2/3: seed-era reduce-side merges (on-demand SipHash tables,
    // unsized outputs) vs the streaming pre-sized accumulators.
    assert_eq!(
        seed_merge_join(&left, &right),
        engine::shuffle::merge_join(&left, &right)
    );
    let (mj_before, mj_after) = time_pair_ms(
        || {
            once_ms(|| {
                std::hint::black_box(seed_merge_join(&left, &right));
            })
        },
        || {
            once_ms(|| {
                std::hint::black_box(engine::shuffle::merge_join(&left, &right));
            })
        },
    );
    assert_eq!(
        seed_merge_cogroup(&left, &right),
        engine::shuffle::merge_cogroup(&left, &right)
    );
    let (cg_before, cg_after) = time_pair_ms(
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(seed_merge_cogroup(&left, &right));
                }
            })
        },
        || {
            once_ms(|| {
                for _ in 0..3 {
                    std::hint::black_box(engine::shuffle::merge_cogroup(&left, &right));
                }
            })
        },
    );

    // Kernel 4: map-side bucketize, cloning (barrier engine) vs moving
    // (pipelined executor owns the task output). The owned variant's input
    // copy is made outside the timed section.
    // A single bucketize pass is only a few milliseconds; five per window
    // keeps scheduler jitter out of the ratio. Both sides walk freshly
    // cloned inputs (made outside the timed section) so neither gets a
    // cache-warm rescan advantage — in the engine, every task's output is
    // newly produced memory.
    let part = HashPartitioner::new(64);
    let mut arena_b = TaskArena::default();
    let mut arena_a = TaskArena::default();
    let (bk_before, bk_after) = time_pair_ms(
        || {
            let copies: Vec<Vec<Record>> = (0..5).map(|_| left.clone()).collect();
            once_ms(|| {
                for records in &copies {
                    std::hint::black_box(bucketize_in(records, &part, None, &mut arena_b));
                }
            })
        },
        || {
            let copies: Vec<Vec<Record>> = (0..5).map(|_| left.clone()).collect();
            once_ms(|| {
                for owned in copies {
                    std::hint::black_box(bucketize_owned_in(owned, &part, None, &mut arena_a));
                }
            })
        },
    );

    let kernel = |name: &str, before: f64, after: f64| KernelResult {
        name: name.to_string(),
        before_ms: before,
        after_ms: after,
        speedup: before / after,
    };
    DataplaneReport {
        experiment: "shuffle_pipeline".to_string(),
        workers,
        kernels: vec![
            kernel("pipeline_sql_join_e2e", e2e_off, e2e_on),
            kernel("merge_join_seed_vs_streaming", mj_before, mj_after),
            kernel("merge_cogroup_seed_vs_streaming", cg_before, cg_after),
            kernel("bucketize_clone_vs_owned", bk_before, bk_after),
        ],
        workload_wallclock: vec![
            WorkloadWallclock {
                workload: "sql-join-100k-barrier".to_string(),
                workers,
                host_ms: e2e_off,
            },
            WorkloadWallclock {
                workload: "sql-join-100k-pipelined".to_string(),
                workers,
                host_ms: e2e_on,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(speedups: &[(&str, f64)]) -> DataplaneReport {
        DataplaneReport {
            experiment: "dataplane".to_string(),
            workers: 4,
            kernels: speedups
                .iter()
                .map(|(n, s)| KernelResult {
                    name: n.to_string(),
                    before_ms: 10.0 * s,
                    after_ms: 10.0,
                    speedup: *s,
                })
                .collect(),
            workload_wallclock: vec![WorkloadWallclock {
                workload: "kmeans-20k".to_string(),
                workers: 1,
                host_ms: 100.0,
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = report(&[("fused", 2.5), ("pool", 1.1)]);
        let parsed = DataplaneReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parses_committed_baseline_format() {
        let text = r#"{
  "experiment": "dataplane",
  "workers": 1,
  "kernels": [
    {"name": "bucketize_combine", "before_ms": 9.000, "after_ms": 5.595, "speedup": 1.61}
  ],
  "workload_wallclock": [
    {"workload": "kmeans-20k", "workers": 1, "host_ms": 103.335}
  ]
}"#;
        let r = DataplaneReport::parse(text).unwrap();
        assert_eq!(r.workers, 1);
        assert_eq!(r.kernel("bucketize_combine").unwrap().speedup, 1.61);
        assert!(r.kernel("missing").is_none());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = report(&[("a", 2.0), ("b", 1.5)]);
        let fresh = report(&[("a", 1.8), ("b", 1.5)]);
        let checks = gate_checks(&base, &fresh, 0.15);
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(GateCheck::ok));
    }

    #[test]
    fn gate_fails_on_regression_beyond_tolerance() {
        let base = report(&[("a", 2.0)]);
        let fresh = report(&[("a", 1.6)]);
        let checks = gate_checks(&base, &fresh, 0.15);
        assert!(!checks[0].ok(), "1.6 < 2.0 * 0.85 must fail");
        let lenient = gate_checks(&base, &fresh, 0.25);
        assert!(lenient[0].ok(), "1.6 >= 2.0 * 0.75 passes");
    }

    #[test]
    fn conservative_baseline_takes_per_kernel_minimum() {
        let r1 = report(&[("a", 2.0), ("b", 1.1)]);
        let r2 = report(&[("a", 1.7), ("b", 1.4)]);
        let merged = conservative_baseline(vec![r1, r2]);
        assert_eq!(merged.kernel("a").unwrap().speedup, 1.7);
        assert_eq!(merged.kernel("b").unwrap().speedup, 1.1);
        // Non-kernel fields come from the last run verbatim.
        assert_eq!(merged.workload_wallclock.len(), 1);
    }

    #[test]
    fn best_fresh_takes_per_kernel_maximum() {
        let r1 = report(&[("a", 2.0), ("b", 1.1)]);
        let r2 = report(&[("a", 1.7), ("b", 1.4)]);
        let merged = best_fresh(vec![r1, r2]);
        assert_eq!(merged.kernel("a").unwrap().speedup, 2.0);
        assert_eq!(merged.kernel("b").unwrap().speedup, 1.4);
    }

    #[test]
    fn gate_fails_on_missing_kernel() {
        let base = report(&[("a", 2.0), ("gone", 1.2)]);
        let fresh = report(&[("a", 2.0)]);
        let checks = gate_checks(&base, &fresh, 0.15);
        assert!(checks.iter().any(|c| c.name == "gone" && !c.ok()));
    }
}
