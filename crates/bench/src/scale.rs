//! Fig scale — topology-aware tuning from 6 to 1000 nodes.
//!
//! The sweep behind `repro fig_scale` and the perfgate scale gates: at
//! each cluster size the same weak-scaled aggregation workload is
//! auto-tuned twice, once on a flat fabric and once on an oversubscribed
//! rack/spine fabric (`rack:<racks>x<hosts>:4`), and the tuned plans are
//! diffed stage by stage. The rack runs execute on the netsim flow
//! engine (link contention, topology-aware placement) and the optimizer
//! judges shuffle significance against the degraded cross-rack
//! bandwidth, so the chosen partition count or partitioner can flip
//! where the flat model says it should not.
//!
//! Everything here is virtual-clock deterministic: the report
//! regenerates verbatim regardless of host worker count, which is what
//! lets CI keep `results/fig_scale.txt` under the doc-sync drift gate
//! and lets perfgate re-run the 1000-node cells against the committed
//! copy as a bit-identity floor.

use crate::{fmt_time, Table, DATA_SCALE};
use chopper::{Autotuner, DecisionAction, TestRunPlan, Workload};
use engine::{
    Context, EngineOptions, FlatMapFn, GenFn, Key, MapFn, PartitionerKind, Record, ReduceFn, Value,
    WorkloadConf,
};
use simcluster::{uniform_cluster, ClusterSpec, Topology};
use std::sync::Arc;
use std::time::Instant;

/// The sweep's cluster sizes (hosts). 6 matches the paper's testbed
/// scale; 1000 is the ROADMAP's 100x+ target.
pub const SCALE_NODES: [usize; 3] = [6, 96, 1000];

/// Core-link oversubscription of the rack cells: each ToR uplink carries
/// `hosts` NICs' worth of traffic over `hosts/4` NICs' worth of capacity.
pub const SCALE_OVERSUB: f64 = 4.0;

/// Virtual input bytes per host (weak scaling: the data grows with the
/// cluster, as a production ingest would).
const PER_NODE_BYTES: u64 = 8_000_000;

/// Host-side record count, fixed across the sweep so the wall-clock cost
/// of a 1000-node cell stays close to a 6-node cell's — only the
/// *virtual* bytes scale.
const LINES: usize = 24_000;

/// Records emitted per scanned line by the widening flat-map.
const FAN: usize = 4;

/// Distinct keys of the wide aggregation. Small enough that map-side
/// combine collapses low-P shuffles hard, so shuffle volume rises with P
/// and the significance weighting has a real slope to act on.
const KEYS: u64 = 500;

/// Units of compute per scanned line / per aggregated record.
const LINE_COST: f64 = 0.1;
const REC_COST: f64 = 0.01;

/// Length of the shared f64 payload each widened record carries, scaled
/// with √nodes. Shuffle accounting charges the payload's *encoded* size
/// while the host only clones an `Arc`, so the sweep's shuffle volume
/// weak-scales from ~90 MB at 6 hosts to ~1 GB at 1000 without the
/// wall-clock cost of materializing it.
fn payload_len(nodes: usize) -> usize {
    (24.0 * (nodes as f64).sqrt()).round() as usize
}

/// The rack grid for `nodes` hosts: the largest divisor ≤ √nodes, so the
/// fabric is as square as the host count allows (6 → 2x3, 96 → 8x12,
/// 1000 → 25x40) and every slot is filled.
pub fn rack_grid(nodes: usize) -> (usize, usize) {
    let racks = (1..=nodes)
        .take_while(|r| r * r <= nodes)
        .filter(|r| nodes.is_multiple_of(*r))
        .last()
        .unwrap_or(1);
    (racks, nodes / racks)
}

/// The oversubscribed rack topology for a sweep cell.
pub fn rack_topology(nodes: usize) -> Topology {
    let (racks, hosts) = rack_grid(nodes);
    Topology::Rack {
        racks,
        hosts,
        oversub: SCALE_OVERSUB,
    }
}

/// A uniform cluster at sweep scale, with byte-denominated capacities
/// shrunk by [`DATA_SCALE`] exactly like `paper_engine` shrinks the
/// testbed, so the weak-scaled inputs keep realistic shuffle-to-compute
/// ratios.
pub fn scale_cluster(nodes: usize) -> ClusterSpec {
    let mut cluster = uniform_cluster(nodes, 4, 2.0);
    let scale = DATA_SCALE as f64;
    for node in &mut cluster.nodes {
        node.memory_bytes /= DATA_SCALE;
        node.net_bandwidth /= scale;
        node.disk_bandwidth /= scale;
    }
    cluster.cache_bandwidth /= scale;
    cluster
}

/// The sweep workload: scan → widening flat-map → wide aggregation →
/// re-key → narrow aggregation. Two configurable shuffle stages with
/// very different volumes, which is where flat and rack tuning can part
/// ways.
pub struct ScaleAgg {
    /// Hosts in the cell's cluster; sets the virtual input volume.
    pub nodes: usize,
}

impl Workload for ScaleAgg {
    fn name(&self) -> &str {
        "scale-agg"
    }

    fn full_input_bytes(&self) -> u64 {
        self.nodes as u64 * PER_NODE_BYTES
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());
        let n = ((LINES as f64 * scale) as usize).max(1);
        let gen: GenFn = Arc::new(move |i, parts| {
            let start = i * n / parts;
            let end = (i + 1) * n / parts;
            (start..end)
                .map(|j| Record::new(Key::Int(j as i64), Value::Int(1)))
                .collect()
        });
        let bytes = ((self.full_input_bytes() as f64 * scale) as u64).max(1);
        let lines = ctx.text_file("scale-in", bytes, gen, LINE_COST, "scan");
        let payload: Arc<Vec<f64>> = Arc::new(vec![1.0; payload_len(self.nodes)]);
        let widen: FlatMapFn = Arc::new(move |r: &Record| {
            let line = match &r.key {
                Key::Int(i) => *i as u64,
                other => panic!("malformed line key {other:?}"),
            };
            (0..FAN as u64)
                .map(|f| {
                    let h = line.wrapping_mul(2654435761).wrapping_add(f * 193);
                    Record::new(
                        Key::Int((h % KEYS) as i64),
                        Value::Vector(Arc::clone(&payload)),
                    )
                })
                .collect()
        });
        let wide = ctx.flat_map(lines, widen, REC_COST, "widen");
        // Every payload is the same shared vector, so a keep-left merge is
        // associative/commutative in the only sense that matters here: the
        // aggregate's value is identical no matter the merge order.
        let sum: ReduceFn = Arc::new(|a: &Value, _b: &Value| a.clone());
        let counts = ctx.reduce_by_key(wide, Arc::clone(&sum), None, REC_COST, "agg-wide");
        let rekey: MapFn = Arc::new(|r: &Record| {
            let k = match &r.key {
                Key::Int(i) => *i,
                other => panic!("malformed key {other:?}"),
            };
            Record::new(Key::Int(k % 50), r.value.clone())
        });
        let coarse = ctx.map(counts, rekey, REC_COST, "rekey");
        let rollup = ctx.reduce_by_key(coarse, sum, None, REC_COST, "agg-coarse");
        ctx.count(rollup, "scale-agg");
        ctx
    }
}

/// One tuned cell of the sweep.
pub struct CellResult {
    /// Hosts in the cluster.
    pub nodes: usize,
    /// The cell's fabric.
    pub topology: Topology,
    /// Vanilla (300-partition default) virtual runtime.
    pub vanilla_time: f64,
    /// Tuned virtual runtime.
    pub tuned_time: f64,
    /// Per-stage tuning outcome, in decision order: `(stage, choice)`.
    pub decisions: Vec<(String, String)>,
    /// Simulation events processed by the tuned run (0 on the flat
    /// closed-form path, which needs no event engine).
    pub events: u64,
    /// Netsim flows completed by the tuned run.
    pub flows: u64,
}

impl CellResult {
    /// The cell's row in the fig_scale table, untrimmed. Perfgate joins
    /// these with single spaces and greps the committed figure for the
    /// result, so this is the bit-identity contract between a fresh run
    /// and `results/fig_scale.txt`.
    pub fn row_cells(&self) -> Vec<String> {
        let decisions = self
            .decisions
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect::<Vec<_>>()
            .join(" ");
        vec![
            self.nodes.to_string(),
            self.topology.to_string(),
            fmt_time(self.vanilla_time),
            fmt_time(self.tuned_time),
            self.events.to_string(),
            self.flows.to_string(),
            decisions,
        ]
    }
}

/// Renders a tuning decision as a stable cell string.
fn decision_str(action: &DecisionAction) -> String {
    let spec_str = |s: &engine::PartitionerSpec| {
        let kind = match s.kind {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Range => "range",
        };
        format!("{kind}@{}", s.partitions)
    };
    match action {
        DecisionAction::Retune(s) => spec_str(s),
        DecisionAction::RetuneGrouped(s) => format!("{}+co", spec_str(s)),
        DecisionAction::InsertRepartition(s) => format!("{}+repart", spec_str(s)),
        DecisionAction::KeepUserFixed => "user-fixed".into(),
        DecisionAction::KeepDefault => "default".into(),
        DecisionAction::FollowsProducer(sig) => format!("follows-{sig:08x}"),
    }
}

/// Auto-tunes the sweep workload on a `nodes`-host cluster with the
/// given fabric and reports what the optimizer chose.
pub fn run_cell(nodes: usize, topology: Topology) -> CellResult {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    let base = EngineOptions {
        cluster: scale_cluster(nodes).with_topology(topology),
        default_parallelism: 300,
        workers,
        ..EngineOptions::default()
    };
    let mut t = Autotuner::new(base);
    t.test_plan = TestRunPlan {
        scales: vec![0.25, 0.5, 1.0],
        partitions: vec![60, 150, 300, 600, 1200],
        kinds: vec![PartitionerKind::Hash, PartitionerKind::Range],
        probe_user_fixed: true,
        parallelism: workers,
    };
    let cmp = t.compare(&ScaleAgg { nodes });
    let decisions = cmp
        .plan
        .decisions
        .iter()
        .map(|d| (d.name.clone(), decision_str(&d.action)))
        .collect();
    let net = cmp.chopper.sim().network_stats();
    CellResult {
        nodes,
        topology,
        vanilla_time: cmp.vanilla_time(),
        tuned_time: cmp.chopper_time(),
        decisions,
        events: cmp.chopper.sim().events_processed(),
        flows: net.flows_completed,
    }
}

/// The full 6 → 96 → 1000 sweep: flat and oversubscribed rack at every
/// size.
pub struct ScaleSweep {
    /// `(flat, rack)` per entry of [`SCALE_NODES`].
    pub cells: Vec<(CellResult, CellResult)>,
}

/// Runs the whole sweep.
pub fn run_sweep() -> ScaleSweep {
    let cells = SCALE_NODES
        .iter()
        .map(|&n| {
            eprintln!("[fig_scale] tuning {n}-node flat cell...");
            let flat = run_cell(n, Topology::Flat);
            eprintln!("[fig_scale] tuning {n}-node {} cell...", rack_topology(n));
            let rack = run_cell(n, rack_topology(n));
            (flat, rack)
        })
        .collect();
    ScaleSweep { cells }
}

impl ScaleSweep {
    /// Stages whose tuned choice differs between the flat and rack cell:
    /// `(nodes, stage, flat choice, rack choice)`.
    pub fn flips(&self) -> Vec<(usize, String, String, String)> {
        let mut out = Vec::new();
        for (flat, rack) in &self.cells {
            for (name, f) in &flat.decisions {
                if let Some((_, r)) = rack.decisions.iter().find(|(n, _)| n == name) {
                    if f != r {
                        out.push((flat.nodes, name.clone(), f.clone(), r.clone()));
                    }
                }
            }
        }
        out
    }

    /// The per-cell table (one row per fabric per size).
    pub fn cells_table(&self) -> String {
        let mut t = Table::new(&[
            "nodes",
            "fabric",
            "vanilla",
            "tuned",
            "events",
            "flows",
            "decisions",
        ]);
        for (flat, rack) in &self.cells {
            for cell in [flat, rack] {
                t.row(cell.row_cells());
            }
        }
        t.render()
    }

    /// The flip table (empty table body when nothing flips).
    pub fn flips_table(&self) -> String {
        let mut t = Table::new(&["nodes", "stage", "flat chose", "rack chose"]);
        for (nodes, stage, f, r) in self.flips() {
            t.row(vec![nodes.to_string(), stage, f, r]);
        }
        t.render()
    }
}

// ---- perfgate throughput probes -------------------------------------------

/// Interleaved push/pop churn through the netsim event queue (the exact
/// structure the 1000-node sweep's completions run through), `total`
/// operations with a 512-entry steady backlog. Returns
/// `(events, seconds)`.
pub fn queue_churn(total: u64) -> (u64, f64) {
    let mut q: netsim::EventQueue<u64> = netsim::EventQueue::with_capacity(1024);
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let start = Instant::now();
    let mut ops: u64 = 0;
    let mut t = 0.0f64;
    while ops < total {
        for _ in 0..64 {
            t += (next() % 1024) as f64 * 1e-6;
            q.push(t, next());
            ops += 1;
        }
        while q.len() > 512 {
            q.pop();
            ops += 1;
        }
    }
    while q.pop().is_some() {
        ops += 1;
    }
    (ops, start.elapsed().as_secs_f64())
}

/// Flow churn on the 1000-node rack fabric itself: shuffle-shaped flows
/// (same-rack and cross-rack, NIC + uplink + downlink paths) started and
/// completed through the max-min engine until at least `min_flows` have
/// finished. Returns `(events, seconds)` where events are the queue
/// schedules + pops the churn drove (rate changes re-schedule
/// predictions, exactly as in the sweep).
pub fn fabric_churn(min_flows: u64) -> (u64, f64) {
    let (racks, hosts) = rack_grid(1000);
    let nic = 1.25e9 / DATA_SCALE as f64;
    let mut net = netsim::Network::new();
    let nics: Vec<_> = (0..racks * hosts).map(|_| net.add_link(nic)).collect();
    let rack_cap = hosts as f64 * nic / SCALE_OVERSUB;
    let ups: Vec<_> = (0..racks).map(|_| net.add_link(rack_cap)).collect();
    let downs: Vec<_> = (0..racks).map(|_| net.add_link(rack_cap)).collect();
    let mut rng: u64 = 0xD1B5_4A32_D192_ED03;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let start = Instant::now();
    let mut completed: u64 = 0;
    while completed < min_flows {
        for _ in 0..128 {
            let dst = (next() % nics.len() as u64) as usize;
            let src_rack = (next() % racks as u64) as usize;
            let bytes = 1.0 + (next() % 4_000_000) as f64;
            let dr = dst / hosts;
            let path = if src_rack == dr {
                vec![nics[dst]]
            } else {
                vec![ups[src_rack], downs[dr], nics[dst]]
            };
            net.start_flow(path, bytes);
        }
        // A reduce wave at this scale keeps hundreds of fetches in
        // flight, so the steady backlog shares each rack uplink among
        // ~20 flows — every completion reshapes its whole cohort.
        while net.active_flows() > 512 {
            net.pop_completion();
            completed += 1;
        }
    }
    completed += net.drain().len() as u64;
    let _ = completed;
    let s = net.stats();
    (
        s.events_scheduled + s.events_processed,
        start.elapsed().as_secs_f64(),
    )
}
