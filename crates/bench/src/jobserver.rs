//! Multi-tenant contention benchmark over the job server, plus its CI
//! gate (`results/BENCH_jobserver.json`).
//!
//! Unlike the data-plane kernels, every figure here is *virtual-clock*
//! time from the simulated cluster: a fixed trace + seed produces
//! bit-identical latencies on any host, so the committed baseline is
//! regenerated verbatim by `repro jobserver` and participates in the
//! doc-sync drift check — no host-jitter tolerance gymnastics needed.
//! The gate still applies the shared perfgate tolerance so deliberate
//! cost-model recalibrations inside the band do not require a lockstep
//! baseline refresh.

use jobserver::{generate, serve, Interleave, Policy, ServerConfig};
use serde::{Deserialize, Serialize};

/// Tenant counts swept by the contention benchmark.
pub const TENANT_COUNTS: [usize; 3] = [1, 4, 16];
/// Jobs per tenant at every sweep point (so load scales with tenants).
pub const JOBS_PER_TENANT: usize = 14;
/// Loadgen seed shared by every sweep point.
pub const TRACE_SEED: u64 = 5;
/// Concurrent dispatch slots for the contended rows.
pub const SLOTS: usize = 8;
/// Hard floor: 16-tenant fair-share throughput over the same trace run
/// serially (one slot), regardless of what the baseline says.
pub const JOBSERVER_SPEEDUP_FLOOR: f64 = 2.0;

/// Bench-sized engine: the small uniform cluster the jobserver test
/// suite uses, so a 16-tenant trace serves in seconds.
fn bench_engine() -> engine::EngineOptions {
    engine::EngineOptions {
        cluster: simcluster::uniform_cluster(4, 4, 2.0),
        default_parallelism: 8,
        block_size: 128 * 1024,
        workers: 4,
        ..jobserver::server_engine_defaults()
    }
}

/// One (tenant count, policy) sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionRow {
    /// Tenants in the trace.
    pub tenants: usize,
    /// Scheduling policy (`"fair"` or `"fifo"`).
    pub policy: String,
    /// Concurrent dispatch slots.
    pub slots: usize,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Median job latency, virtual seconds.
    pub p50_latency: f64,
    /// p99 job latency over all tenants, virtual seconds.
    pub p99_latency: f64,
    /// p99 latency over interactive tenants only (the fairness headline).
    pub p99_interactive: f64,
    /// Completed jobs per virtual second.
    pub throughput: f64,
    /// Last completion, virtual seconds.
    pub makespan: f64,
}

/// The whole `BENCH_jobserver.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobserverReport {
    /// Always `"jobserver"`.
    pub experiment: String,
    /// Fair + FIFO rows per tenant count.
    pub rows: Vec<ContentionRow>,
    /// 16-tenant trace, fair policy, one slot: the serial baseline.
    pub serial_throughput: f64,
    /// 16-tenant fair throughput over [`Self::serial_throughput`].
    pub speedup_16: f64,
}

impl JobserverReport {
    /// Parses a report from JSON text.
    pub fn parse(text: &str) -> Result<JobserverReport, String> {
        serde_json::from_str(text).map_err(|e| format!("parse jobserver report: {e}"))
    }

    /// Renders the report as indented JSON (what gets committed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Looks up a sweep point.
    pub fn row(&self, tenants: usize, policy: &str) -> Option<&ContentionRow> {
        self.rows
            .iter()
            .find(|r| r.tenants == tenants && r.policy == policy)
    }
}

/// Runs the contention sweep. Deterministic: virtual-clock figures only.
pub fn measure_jobserver() -> JobserverReport {
    let mut rows = Vec::new();
    let mut serial_throughput = 0.0;
    for &tenants in &TENANT_COUNTS {
        let trace = generate(tenants, tenants * JOBS_PER_TENANT, TRACE_SEED);
        for policy in [Policy::Fair, Policy::Fifo] {
            let cfg = ServerConfig {
                policy,
                slots: SLOTS,
                engine: bench_engine(),
                interleave: Interleave::TenantThreads,
                ..ServerConfig::default()
            };
            let rep = serve(&trace, &cfg).expect("bench trace serves");
            assert_eq!(
                rep.completed,
                trace.jobs.len(),
                "bench trace must not reject"
            );
            rows.push(ContentionRow {
                tenants,
                policy: policy.name().to_string(),
                slots: SLOTS,
                jobs: trace.jobs.len(),
                p50_latency: rep.p50_latency,
                p99_latency: rep.p99_latency,
                p99_interactive: rep.p99_interactive,
                throughput: rep.throughput,
                makespan: rep.makespan,
            });
        }
        if tenants == 16 {
            let cfg = ServerConfig {
                policy: Policy::Fair,
                slots: 1,
                engine: bench_engine(),
                interleave: Interleave::TenantThreads,
                ..ServerConfig::default()
            };
            serial_throughput = serve(&trace, &cfg).expect("serial trace serves").throughput;
        }
    }
    let fair16 = rows
        .iter()
        .find(|r| r.tenants == 16 && r.policy == "fair")
        .expect("16-tenant fair row present")
        .throughput;
    JobserverReport {
        experiment: "jobserver".to_string(),
        rows,
        serial_throughput,
        speedup_16: fair16 / serial_throughput,
    }
}

/// Gate verdicts for the job server, `(label, passed)` per check, in the
/// style of perfgate's memory and fault gates.
///
/// Relative checks against the committed baseline (p99 latency must not
/// rise, throughput must not fall, by more than `tolerance`), plus two
/// absolute floors independent of the baseline: 16-tenant concurrency
/// must beat the serial server by [`JOBSERVER_SPEEDUP_FLOOR`], and the
/// fair policy must beat FIFO on interactive p99 under 16-tenant
/// contention.
pub fn jobserver_gate_checks(
    baseline: &JobserverReport,
    fresh: &JobserverReport,
    tolerance: f64,
) -> Vec<(String, bool)> {
    let mut checks = Vec::new();
    for b in &baseline.rows {
        let label = format!("{}x {}", b.tenants, b.policy);
        let Some(f) = fresh.row(b.tenants, &b.policy) else {
            checks.push((
                format!("jobserver {label}: missing from fresh report"),
                false,
            ));
            continue;
        };
        checks.push((
            format!(
                "jobserver {label} p99 {:.3}s vs baseline {:.3}s (+{:.0}% cap)",
                f.p99_latency,
                b.p99_latency,
                tolerance * 100.0
            ),
            f.p99_latency <= b.p99_latency * (1.0 + tolerance),
        ));
        checks.push((
            format!(
                "jobserver {label} throughput {:.3}/s vs baseline {:.3}/s (-{:.0}% cap)",
                f.throughput,
                b.throughput,
                tolerance * 100.0
            ),
            f.throughput >= b.throughput * (1.0 - tolerance),
        ));
    }
    checks.push((
        format!(
            "jobserver 16-tenant throughput {:.2}x serial (hard floor {JOBSERVER_SPEEDUP_FLOOR:.1}x)",
            fresh.speedup_16
        ),
        fresh.speedup_16 >= JOBSERVER_SPEEDUP_FLOOR,
    ));
    match (fresh.row(16, "fair"), fresh.row(16, "fifo")) {
        (Some(fair), Some(fifo)) => checks.push((
            format!(
                "jobserver fair p99_interactive {:.3}s < fifo {:.3}s at 16 tenants",
                fair.p99_interactive, fifo.p99_interactive
            ),
            fair.p99_interactive < fifo.p99_interactive,
        )),
        _ => checks.push((
            "jobserver 16-tenant fair/fifo rows missing from fresh report".to_string(),
            false,
        )),
    }
    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobserverReport {
        JobserverReport {
            experiment: "jobserver".into(),
            rows: vec![
                ContentionRow {
                    tenants: 16,
                    policy: "fair".into(),
                    slots: 8,
                    jobs: 224,
                    p50_latency: 3.0,
                    p99_latency: 20.0,
                    p99_interactive: 6.7,
                    throughput: 2.5,
                    makespan: 90.0,
                },
                ContentionRow {
                    tenants: 16,
                    policy: "fifo".into(),
                    slots: 8,
                    jobs: 224,
                    p50_latency: 5.4,
                    p99_latency: 16.6,
                    p99_interactive: 9.2,
                    throughput: 2.5,
                    makespan: 90.0,
                },
            ],
            serial_throughput: 1.0,
            speedup_16: 2.5,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        assert_eq!(JobserverReport::parse(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn identical_reports_pass_every_check() {
        let r = sample();
        let checks = jobserver_gate_checks(&r, &r, 0.15);
        assert!(checks.iter().all(|(_, ok)| *ok), "{checks:?}");
    }

    #[test]
    fn regressions_and_floor_misses_fail() {
        let base = sample();
        let mut slow = base.clone();
        slow.rows[0].p99_latency *= 1.30;
        assert!(
            jobserver_gate_checks(&base, &slow, 0.15)
                .iter()
                .any(|(name, ok)| !ok && name.contains("p99")),
            "a 30% p99 regression must fail a 15% gate"
        );
        let mut starved = base.clone();
        starved.speedup_16 = 1.4;
        assert!(
            jobserver_gate_checks(&base, &starved, 0.15)
                .iter()
                .any(|(name, ok)| !ok && name.contains("hard floor")),
            "speedup below the absolute floor must fail"
        );
        let mut unfair = base.clone();
        unfair.rows[0].p99_interactive = 10.0;
        assert!(
            jobserver_gate_checks(&base, &unfair, 0.15)
                .iter()
                .any(|(name, ok)| !ok && name.contains("p99_interactive")),
            "fair losing to fifo on interactive p99 must fail"
        );
    }

    #[test]
    fn missing_rows_fail_closed() {
        let base = sample();
        let empty = JobserverReport {
            rows: Vec::new(),
            ..base.clone()
        };
        let checks = jobserver_gate_checks(&base, &empty, 0.15);
        assert!(
            checks.iter().filter(|(_, ok)| !ok).count() >= 3,
            "{checks:?}"
        );
    }
}
