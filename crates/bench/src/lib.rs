//! Shared harness for regenerating the CHOPPER paper's tables and figures.
//!
//! The `repro` binary (`cargo run -p bench --release --bin repro -- all`)
//! produces every table and figure of the evaluation; the Criterion
//! benches under `benches/` exercise reduced-size versions of the same
//! experiments so `cargo bench` stays tractable.

pub mod adaptive;
pub mod dataplane;
pub mod jobserver;
pub mod report;
pub mod scale;

use chopper::{Autotuner, TestRunPlan, Workload};
use engine::{
    Context, EngineOptions, FaultPlan, FlatMapFn, GenFn, Key, Record, ReduceFn, StageMetrics,
    Value, WorkloadConf,
};
use simcluster::paper_cluster;
use std::sync::Arc;
use workloads::{KMeans, KMeansConfig, Pca, PcaConfig, Sql, SqlConfig};

/// The factor by which the paper's multi-gigabyte inputs are scaled down
/// for a single-machine reproduction (21.8 GB → ~73 MB for KMeans).
///
/// *Every byte-denominated cluster quantity is scaled by the same factor* —
/// executor memory, NIC bandwidth, disk and cache bandwidth — so the
/// simulation stays dimensionally consistent with the testbed: a shuffle
/// that moved 1 GB over 1 GbE there moves 3.3 MB over a 3.3 Mbps virtual
/// link here and takes the same *time*. Without this, scaled-down shuffles
/// are unrealistically cheap relative to compute and Eq. 3's shuffle term
/// pulls against its time term instead of aligning with it.
pub const DATA_SCALE: u64 = 300;

/// Engine options matching the paper's evaluation setup: the 6-node
/// heterogeneous testbed and 300 default partitions, with all
/// byte-denominated capacities shrunk by [`DATA_SCALE`] to match the
/// scaled-down inputs.
pub fn paper_engine(default_parallelism: usize, copartition: bool) -> EngineOptions {
    let mut cluster = paper_cluster();
    let scale = DATA_SCALE as f64;
    for node in &mut cluster.nodes {
        node.memory_bytes /= DATA_SCALE;
        node.net_bandwidth /= scale;
        node.disk_bandwidth /= scale;
    }
    cluster.cache_bandwidth /= scale;
    EngineOptions {
        cluster,
        default_parallelism,
        copartition_scheduling: copartition,
        driver_bandwidth: 1e9 / 8.0 / scale,
        ..EngineOptions::default()
    }
}

/// The KMeans workload at evaluation scale (Table I analog).
pub fn kmeans_paper() -> KMeans {
    KMeans::new(KMeansConfig::paper())
}

/// The KMeans workload at the Section II-B motivation scale (7.3 GB in the
/// paper vs 21.8 GB in Table I — we preserve the ratio).
pub fn kmeans_motivation() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = (cfg.points as f64 * 7.3 / 21.8) as u64;
    KMeans::new(cfg)
}

/// A reduced KMeans (20k points) used by the memory-pressure experiment
/// and the data-plane wall-clock benchmark.
pub fn kmeans_reduced() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 20_000;
    KMeans::new(cfg)
}

/// The PCA workload at evaluation scale.
pub fn pca_paper() -> Pca {
    Pca::new(PcaConfig::paper())
}

/// The SQL workload at evaluation scale.
pub fn sql_paper() -> Sql {
    Sql::new(SqlConfig::paper())
}

/// Words emitted per synthetic text line.
const WORDS_PER_LINE: usize = 8;
/// Distinct words in the synthetic vocabulary.
const VOCABULARY: u64 = 100;
/// Virtual serialized bytes per text line (Table-I style accounting).
const LINE_BYTES: u64 = 64;
/// Units per scanned line (same scale as the SQL workload's scan).
const LINE_COST: f64 = 0.12;
/// Units per emitted or merged word record.
const WORD_COST: f64 = 0.01;

/// A wordcount built from the raw engine primitives: a synthetic text
/// source, a flat-map that splits each line into words, and a
/// reduce-by-key that counts them. The fault-recovery figure pairs it
/// with the SQL join because its single wide shuffle over string keys is
/// the simplest lineage to recompute after a node loss.
pub struct WordCount {
    /// Text lines at full scale.
    pub lines: usize,
}

impl Workload for WordCount {
    fn name(&self) -> &str {
        "wordcount"
    }

    fn full_input_bytes(&self) -> u64 {
        self.lines as u64 * LINE_BYTES
    }

    fn run(&self, opts: &EngineOptions, conf: &WorkloadConf, scale: f64) -> Context {
        let mut ctx = Context::new(opts.clone());
        ctx.set_conf(conf.clone());
        let n = ((self.lines as f64 * scale) as usize).max(1);
        let gen: GenFn = Arc::new(move |i, parts| {
            let start = i * n / parts;
            let end = (i + 1) * n / parts;
            (start..end)
                .map(|j| Record::new(Key::Int(j as i64), Value::Int(1)))
                .collect()
        });
        let bytes = ((self.full_input_bytes() as f64 * scale) as u64).max(1);
        let lines = ctx.text_file("wordcount-in", bytes, gen, LINE_COST, "read-lines");
        let split: FlatMapFn = Arc::new(|r: &Record| {
            let line = match &r.key {
                Key::Int(i) => *i as u64,
                other => panic!("malformed line key {other:?}"),
            };
            (0..WORDS_PER_LINE as u64)
                .map(|w| {
                    // Deterministic word draw per (line, position).
                    let h = line.wrapping_mul(2654435761).wrapping_add(w * 97);
                    let word = format!("word-{:03}", h % VOCABULARY);
                    Record::new(Key::str(&word), Value::Int(1))
                })
                .collect()
        });
        let words = ctx.flat_map(lines, split, WORD_COST, "split-words");
        let sum: ReduceFn = Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int()));
        let counts = ctx.reduce_by_key(words, sum, None, WORD_COST, "count-words");
        ctx.count(counts, "wordcount");
        ctx
    }
}

/// The wordcount workload at the fault-figure scale: its scan stage runs
/// long enough on the evaluation cluster that the shipped fault plan's
/// node loss lands mid-stage, while the map outputs are still live.
pub fn wordcount_paper() -> WordCount {
    WordCount { lines: 250_000 }
}

/// The paper-protocol auto-tuner over the evaluation cluster.
pub fn paper_autotuner() -> Autotuner {
    paper_autotuner_mem(300, None)
}

/// The paper-protocol auto-tuner with an explicit vanilla default
/// parallelism and per-executor memory budget: the optimizer sees the
/// per-task share and applies its feasibility bound and spill-cost
/// penalty, and both the vanilla and tuned runs execute under the
/// bounded storage layer.
pub fn paper_autotuner_mem(default_parallelism: usize, executor_mem: Option<u64>) -> Autotuner {
    let mut base = paper_engine(default_parallelism, false);
    base.executor_mem = executor_mem;
    paper_tuner(base)
}

/// The paper-protocol auto-tuner over a *degraded* evaluation cluster:
/// node `lost_node` is removed from the topology and a fault plan with
/// the given per-task failure probability is active during every run —
/// vanilla, test grid, and tuned — so the trained models observe
/// recovery-inflated stage times and the optimizer charges expected
/// retries into each candidate partition count. This is the re-tune
/// CHOPPER performs after a node loss shrinks the cluster.
pub fn paper_autotuner_degraded(
    default_parallelism: usize,
    lost_node: usize,
    task_fail_prob: f64,
) -> Autotuner {
    let mut base = paper_engine(default_parallelism, false);
    base.cluster.nodes.remove(lost_node);
    base.faults = Some(FaultPlan {
        task_fail_prob,
        ..FaultPlan::default()
    });
    paper_tuner(base)
}

/// Shared tuner setup behind the `paper_autotuner_*` entry points.
fn paper_tuner(base: EngineOptions) -> Autotuner {
    let mut t = Autotuner::new(base);
    t.test_plan = TestRunPlan::default();
    // Grid cells are independent sandboxed runs and their recorded metrics
    // are plan-determined, so fanning them out is free wall-clock.
    t.test_plan.parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(4);
    // Shuffle significance is judged against the cluster's own effective
    // bandwidth (derived by `Autotuner::new`); `paper_engine` already
    // rescaled every NIC by DATA_SCALE alongside the data volumes, so the
    // spec-derived value is in benchmark units as-is.
    t
}

/// Total virtual execution time of a finished context.
pub fn total_time(ctx: &Context) -> f64 {
    let jobs = ctx.jobs();
    match (jobs.first(), jobs.last()) {
        (Some(f), Some(l)) => l.end - f.start,
        _ => 0.0,
    }
}

/// All stages of a context, cloned, in execution order.
pub fn stages(ctx: &Context) -> Vec<StageMetrics> {
    ctx.all_stages().into_iter().cloned().collect()
}

/// Formats seconds as a fixed-width report cell.
pub fn fmt_time(secs: f64) -> String {
    format!("{secs:>8.1}s")
}

/// Formats bytes as KB with one decimal (the paper's Fig. 4/9 unit).
pub fn fmt_kb(bytes: u64) -> String {
    format!("{:>10.1}", bytes as f64 / 1024.0)
}

/// Simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["stage", "time"]);
        t.row(vec!["0".into(), "372.0".into()]);
        t.row(vec!["12".into(), "9.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("stage"));
        assert!(lines[2].ends_with("372.0"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters_are_stable() {
        assert_eq!(fmt_time(372.04), "   372.0s");
        assert_eq!(fmt_kb(1024 * 1024), "    1024.0");
    }
}
