//! Quick calibration probe: headline Fig. 7 numbers plus the Fig. 3 sweep,
//! used while tuning workload cost constants. Not part of the published
//! harness (`repro` is); kept because it is the fastest way to sanity-check
//! a calibration change.

use bench::{kmeans_motivation, paper_autotuner, paper_engine, stages, total_time};
use chopper::Workload;
use engine::WorkloadConf;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fig3".into());

    if which == "fig3" || which == "all" {
        println!("== Fig 3 probe: KMeans stage-0 time vs P ==");
        let w = kmeans_motivation();
        for p in [100, 200, 300, 400, 500, 2000] {
            let ctx = w.run(&paper_engine(p, false), &WorkloadConf::new(), 1.0);
            let st = stages(&ctx);
            let shuffle17: u64 = st
                .iter()
                .rev()
                .find(|s| s.shuffle_data() > 0)
                .map(|s| s.shuffle_data())
                .unwrap_or(0);
            println!(
                "P={p:>5}  stage0={:>7.1}s  total={:>7.1}s  last-shuffle={:>8.1}KB",
                st[0].duration(),
                total_time(&ctx),
                shuffle17 as f64 / 1024.0
            );
        }
    }

    if which == "fig7" || which == "all" {
        println!("== Fig 7 probe: vanilla vs CHOPPER ==");
        let t = paper_autotuner();
        let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
            ("kmeans", Box::new(kmeans_motivation())),
            ("pca", Box::new(bench::pca_paper())),
            ("sql", Box::new(bench::sql_paper())),
        ];
        for (name, w) in &workloads {
            let start = std::time::Instant::now();
            let cmp = t.compare(w.as_ref());
            println!(
                "{name}: vanilla={:.1}s chopper={:.1}s improvement={:.1}%  (host {:?})",
                cmp.vanilla_time(),
                cmp.chopper_time(),
                cmp.improvement_pct(),
                start.elapsed()
            );
            for d in &cmp.plan.decisions {
                println!("  {} -> {:?}", d.name, d.action);
            }
        }
    }
}
