//! Ablations over CHOPPER's design choices (DESIGN.md Section 6):
//!
//! * `weights` — α/β sweep of the Eq. 3 objective on SQL: higher β trades
//!   scan speed for lower shuffle volume (the Fig. 9 tension).
//! * `gamma` — the repartition-insertion threshold on a workload with a
//!   pathologically user-fixed stage.
//! * `copartition` — co-partition-aware scheduling on/off (join locality).
//! * `clamp` — restricting the Eq. 4 grid search to the trained partition
//!   range vs letting the polynomial extrapolate.
//! * `transfer` — the paper's Section VI retraining question: a model
//!   trained on the healthy cluster applied after a resource change,
//!   vs a retrained model.
//!
//! ```text
//! cargo run --release -p bench --bin ablations -- all
//! ```

use bench::{paper_autotuner, paper_engine, stages, Table};
use chopper::{CostWeights, TestRunPlan, Workload, WorkloadDb};
use engine::{Key, PartitionerSpec, Record, Value, WorkloadConf};
use workloads::{KMeans, KMeansConfig, Sql, SqlConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "weights",
            "gamma",
            "copartition",
            "clamp",
            "transfer",
            "algorithms",
            "speculation",
            "basis",
            "significance",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    std::fs::create_dir_all("results").expect("create results dir");
    for id in wanted {
        let report = match id {
            "weights" => ablate_weights(),
            "gamma" => ablate_gamma(),
            "copartition" => ablate_copartition(),
            "clamp" => ablate_clamp(),
            "transfer" => ablate_transfer(),
            "algorithms" => ablate_algorithms(),
            "speculation" => ablate_speculation(),
            "basis" => ablate_basis(),
            "significance" => ablate_significance(),
            other => {
                eprintln!("unknown ablation: {other}");
                continue;
            }
        };
        println!("{report}");
        std::fs::write(format!("results/ablation_{id}.txt"), &report)
            .expect("write ablation result");
    }
}

fn small_sql() -> Sql {
    Sql::new(SqlConfig {
        orders: 120_000,
        returns: 60_000,
        keys: 12_000,
        zipf: 0.9,
        payload: 24,
        seed: 7,
    })
}

fn small_kmeans() -> KMeans {
    let mut cfg = KMeansConfig::paper();
    cfg.points = 60_000;
    KMeans::new(cfg)
}

/// α/β sweep: the weight on shuffle volume trades scan speed for shuffle.
fn ablate_weights() -> String {
    let w = small_sql();
    let mut t = Table::new(&["alpha", "beta", "total time", "scan shuffle KB", "scan P"]);
    for (alpha, beta) in [(1.0, 0.0), (0.7, 0.3), (0.5, 0.5), (0.3, 0.7), (0.0, 1.0)] {
        let mut tuner = paper_autotuner();
        tuner.optimizer.weights = CostWeights { alpha, beta };
        let cmp = tuner.compare(&w);
        let st = stages(&cmp.chopper);
        t.row(vec![
            format!("{alpha:.1}"),
            format!("{beta:.1}"),
            format!("{:.1}s", cmp.chopper_time()),
            format!("{:.0}", st[0].shuffle_data() as f64 / 1024.0),
            st[0].num_tasks.to_string(),
        ]);
    }
    section(
        "Ablation: Eq. 3 weights (alpha = time, beta = shuffle)",
        "Expectation: raising beta pushes the optimizer toward fewer map \
         partitions (better combining, less shuffle) at some cost in time — \
         the knob that arbitrates the Fig. 9 tension.",
        t.render(),
    )
}

/// γ sweep on a pipeline with a pathologically user-fixed stage.
fn ablate_gamma() -> String {
    struct FixedBad;
    impl Workload for FixedBad {
        fn name(&self) -> &str {
            "fixed-bad"
        }
        fn full_input_bytes(&self) -> u64 {
            4_000_000
        }
        fn run(
            &self,
            opts: &engine::EngineOptions,
            conf: &WorkloadConf,
            scale: f64,
        ) -> engine::Context {
            let mut ctx = engine::Context::new(opts.clone());
            ctx.set_conf(conf.clone());
            let n = (200_000.0 * scale) as i64;
            let data: Vec<Record> = (0..n)
                .map(|i| Record::new(Key::Int(i % 1000), Value::Int(1)))
                .collect();
            let src = ctx.parallelize(data, 16, "src");
            // The user pinned an absurd width; CHOPPER may not change it,
            // only insert a repartition phase after it (Algorithm 3). The
            // downstream group-by then fetches from 1900 map chunks unless
            // the inserted phase coalesces first — the paper's motivating
            // blow-up case.
            let fixed = ctx.reduce_by_key(
                src,
                std::sync::Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
                Some(PartitionerSpec::hash(1900)),
                2e-4,
                "user-fixed-agg",
            );
            let after = ctx.maybe_insert_repartition(fixed);
            let m = ctx.map_values(
                after,
                std::sync::Arc::new(|r: &Record| r.clone()),
                2e-3,
                "post-processing",
            );
            let grouped = ctx.group_by_key(m, None, 1e-4, "regroup");
            ctx.count(grouped, "fixed-bad");
            ctx
        }
    }

    let mut t = Table::new(&["gamma", "repartition inserted?", "total time"]);
    for gamma in [1.0, 1.5, 3.0, 10.0] {
        let mut tuner = paper_autotuner();
        tuner.optimizer.gamma = gamma;
        tuner.test_plan = TestRunPlan {
            scales: vec![0.2, 0.5, 1.0],
            partitions: vec![60, 150, 300, 600, 1200],
            kinds: vec![engine::PartitionerKind::Hash],
            probe_user_fixed: true,
            parallelism: 2,
        };
        let cmp = tuner.compare(&FixedBad);
        let inserted = !cmp.plan.conf.insert_repartition.is_empty();
        t.row(vec![
            format!("{gamma:.1}"),
            if inserted { "yes".into() } else { "no".into() },
            format!("{:.1}s", cmp.chopper_time()),
        ]);
    }
    section(
        "Ablation: repartition-insertion threshold gamma (paper: 1.5)",
        "Small gamma inserts the phase; large gamma suppresses it. Note the \
         honest negative result: Algorithm 3's stage-local benefit estimate \
         (faithful to the paper's pseudocode, which compares the stage's own \
         cost under both schemes) overestimates here — insertion costs ~2 s \
         net — demonstrating exactly why the paper needs the gamma guard \
         'to tolerate the model estimation error'. In this instance gamma \
         would have to exceed ~3 to block the bad insertion.",
        t.render(),
    )
}

/// Co-partition-aware scheduling on/off.
fn ablate_copartition() -> String {
    let w = small_sql();
    let mut t = Table::new(&["scheduling", "join remote KB", "join time", "total"]);
    for (label, copart) in [("vanilla placement", false), ("co-partition-aware", true)] {
        let mut opts = paper_engine(300, copart);
        opts.workers = 2;
        let ctx = w.run(&opts, &WorkloadConf::new(), 1.0);
        let st = stages(&ctx);
        let join = st.last().expect("join stage");
        t.row(vec![
            label.into(),
            format!("{:.0}", join.remote_read_bytes as f64 / 1024.0),
            format!("{:.2}s", join.duration()),
            format!("{:.1}s", ctx.jobs().last().expect("ran").end),
        ]);
    }
    section(
        "Ablation: co-partition-aware scheduling (Section III-C)",
        "Expectation: anchoring same-scheme partitions to the same nodes \
         drives the join's remote traffic to zero.",
        t.render(),
    )
}

/// Grid-search clamping on/off.
fn ablate_clamp() -> String {
    let w = small_kmeans();
    let mut t = Table::new(&["grid search", "stage-0 P", "total time"]);
    for (label, clamp) in [
        ("clamped to trained range", true),
        ("free extrapolation", false),
    ] {
        let mut tuner = paper_autotuner();
        tuner.optimizer.clamp_to_trained_range = clamp;
        let cmp = tuner.compare(&w);
        let st = stages(&cmp.chopper);
        t.row(vec![
            label.into(),
            st[0].num_tasks.to_string(),
            format!("{:.1}s", cmp.chopper_time()),
        ]);
    }
    section(
        "Ablation: restricting Eq. 4's grid search to the trained P range",
        "Expectation: the Eq. 1-2 polynomial extrapolates poorly; without \
         clamping the optimizer may chase a fictitious minimum far outside \
         the probed range.",
        t.render(),
    )
}

/// Cross-resource model transfer (paper Section VI).
fn ablate_transfer() -> String {
    let w = small_kmeans();

    // Train on the healthy cluster.
    let healthy_tuner = paper_autotuner();
    let mut healthy_db = WorkloadDb::new();
    healthy_tuner.train(&w, &mut healthy_db);
    let stale_plan = healthy_tuner.plan(&w, &healthy_db);

    // The cluster changes: node A degrades to half speed.
    let degraded = |parallelism: usize, copart: bool| {
        let mut opts = paper_engine(parallelism, copart);
        opts.cluster.nodes[0].speed /= 2.0;
        opts.workers = 2;
        opts
    };

    // Vanilla on the degraded cluster.
    let vanilla = w.run(&degraded(300, false), &WorkloadConf::new(), 1.0);
    // Stale plan (trained pre-change) on the degraded cluster.
    let stale = w.run(&degraded(300, true), &stale_plan.conf, 1.0);
    // Retrained on the degraded cluster.
    let mut retrained_tuner = paper_autotuner();
    retrained_tuner.vanilla_opts = degraded(300, false);
    retrained_tuner.chopper_opts = degraded(300, true);
    let retrained_cmp = retrained_tuner.compare(&w);

    let total = |ctx: &engine::Context| ctx.jobs().last().expect("ran").end;
    let mut t = Table::new(&["configuration", "total time"]);
    t.row(vec![
        "vanilla (degraded cluster)".into(),
        format!("{:.1}s", total(&vanilla)),
    ]);
    t.row(vec![
        "stale CHOPPER plan".into(),
        format!("{:.1}s", total(&stale)),
    ]);
    t.row(vec![
        "retrained CHOPPER plan".into(),
        format!("{:.1}s", retrained_cmp.chopper_time()),
    ]);
    section(
        "Ablation: model transfer across resource changes (paper Section VI)",
        "The paper notes CHOPPER 'has to re-train its models whenever the \
         available resources are changed'. Expectation: the stale plan still \
         helps (schemes are not pathological) but retraining recovers more.",
        t.render(),
    )
}

/// Algorithm 2 (naive per-stage) vs Algorithm 3 (global) — the paper's
/// stage-A/stage-B/stage-C join argument, on the SQL workload.
fn ablate_algorithms() -> String {
    let w = small_sql();
    let tuner = paper_autotuner();
    let mut db = WorkloadDb::new();
    // Production anchor + test grid, as in the evaluation protocol.
    let vanilla = w.run(&tuner.vanilla_opts, &WorkloadConf::new(), 1.0);
    db.record_run(
        w.name(),
        chopper::collect_observations(vanilla.jobs(), w.full_input_bytes()),
        chopper::collect_dag(vanilla.jobs(), w.full_input_bytes()),
    );
    tuner.train(&w, &mut db);

    let naive = tuner.plan_naive(&w, &db);
    let global = tuner.plan(&w, &db);

    let run_with = |conf: &WorkloadConf| {
        let ctx = w.run(&tuner.chopper_opts, conf, 1.0);
        let st = stages(&ctx);
        let join = st.last().expect("join").clone();
        (
            ctx.jobs().last().expect("ran").end,
            st.len(),
            join.shuffle_read_bytes,
            join.remote_read_bytes,
        )
    };
    let (t_vanilla, _, _, _) = {
        let st = stages(&vanilla);
        (
            vanilla.jobs().last().expect("ran").end,
            st.len(),
            0u64,
            0u64,
        )
    };
    let (t_naive, stages_naive, join_read_naive, _) = run_with(&naive.conf);
    let (t_global, stages_global, join_read_global, remote_global) = run_with(&global.conf);

    let mut t = Table::new(&["plan", "total time", "stages run", "join input KB"]);
    t.row(vec![
        "vanilla (hash 300)".into(),
        format!("{t_vanilla:.1}s"),
        "5".into(),
        "-".into(),
    ]);
    t.row(vec![
        "Algorithm 2 (per-stage)".into(),
        format!("{t_naive:.1}s"),
        stages_naive.to_string(),
        format!("{:.0}", join_read_naive as f64 / 1024.0),
    ]);
    t.row(vec![
        "Algorithm 3 (global)".into(),
        format!("{t_global:.1}s"),
        stages_global.to_string(),
        format!(
            "{:.0} (remote {:.0})",
            join_read_global as f64 / 1024.0,
            remote_global as f64 / 1024.0
        ),
    ]);
    section(
        "Ablation: Algorithm 2 (naive per-stage) vs Algorithm 3 (global)",
        "The paper's motivating example: independently optimal schemes on a \
         join's two sides generally differ, so the join can no longer read \
         its cached sides narrowly and must re-shuffle (extra map stages). \
         Algorithm 3 unifies the subgraph's scheme and keeps the join narrow \
         and co-partitioned.",
        t.render(),
    )
}

/// Reactive (speculative execution) vs proactive (CHOPPER) straggler
/// handling, under partition skew and under a degraded node.
fn ablate_speculation() -> String {
    use workloads::LogRegConfig;
    let w = workloads::LogReg::new({
        let mut c = LogRegConfig::paper();
        c.points = 60_000;
        c
    });

    let run = |speculation: Option<f64>,
               slowdown: Option<(usize, f64)>,
               conf: &WorkloadConf,
               copart: bool| {
        let mut opts = paper_engine(300, copart);
        opts.workers = 2;
        opts.speculation = speculation;
        if let Some((node, factor)) = slowdown {
            opts.cluster.nodes[node].speed /= factor;
        }
        let ctx = w.run(&opts, conf, 1.0);
        ctx.jobs().last().expect("ran").end
    };

    // Train CHOPPER once on the healthy cluster, anchored by a full-scale
    // production run as in the evaluation protocol.
    let tuner = paper_autotuner();
    let mut db = WorkloadDb::new();
    let anchor = w.run(&tuner.vanilla_opts, &WorkloadConf::new(), 1.0);
    db.record_run(
        w.name(),
        chopper::collect_observations(anchor.jobs(), w.full_input_bytes()),
        chopper::collect_dag(anchor.jobs(), w.full_input_bytes()),
    );
    tuner.train(&w, &mut db);
    let plan = tuner.plan(&w, &db);
    let empty = WorkloadConf::new();

    let mut t = Table::new(&["scenario", "vanilla", "+speculation", "CHOPPER", "both"]);
    for (label, slow) in [
        ("healthy cluster", None),
        ("node A at 1/3 speed", Some((0usize, 3.0))),
    ] {
        t.row(vec![
            label.into(),
            format!("{:.1}s", run(None, slow, &empty, false)),
            format!("{:.1}s", run(Some(1.5), slow, &empty, false)),
            format!("{:.1}s", run(None, slow, &plan.conf, true)),
            format!("{:.1}s", run(Some(1.5), slow, &plan.conf, true)),
        ]);
    }
    section(
        "Ablation: speculative execution (reactive) vs CHOPPER (proactive)",
        "Speculation re-runs detected stragglers on other nodes; it helps          against a degraded *node* but cannot split a fat *partition* — the          paper's argument (via SkewTune) for fixing partitioning up front.          The two compose: CHOPPER's plan plus speculation handles both          causes.",
        t.render(),
    )
}

/// Paper basis vs extended basis for the Eq. 1–2 fits.
fn ablate_basis() -> String {
    let w = small_kmeans();
    let mut t = Table::new(&["basis", "stage-0 P", "total time"]);
    for (label, basis) in [
        ("paper (Eq. 1-2 exactly)", chopper::ModelBasis::Paper),
        (
            "extended (+D/P, D*P, D/sqrt(P))",
            chopper::ModelBasis::Extended,
        ),
    ] {
        let mut tuner = paper_autotuner();
        tuner.optimizer.basis = basis;
        let cmp = tuner.compare(&w);
        let st = stages(&cmp.chopper);
        t.row(vec![
            label.into(),
            st[0].num_tasks.to_string(),
            format!("{:.1}s", cmp.chopper_time()),
        ]);
    }
    section(
        "Ablation: Eq. 1-2 feature basis",
        "The paper's additive basis has no D*P interaction, so it cannot          express work-per-task and systematically mispredicts the (large D,          small P) corner that partition-dependency group decisions must          evaluate. The extended basis (the default here) adds three          interaction terms while keeping the fit linear.",
        t.render(),
    )
}

/// Shuffle-significance weighting on/off (raw paper Eq. 3 vs weighted).
fn ablate_significance() -> String {
    let w = bench::pca_paper();
    let mut t = Table::new(&["beta weighting", "parse P", "total time"]);
    for (label, bw) in [
        ("raw Eq. 3 (significance off)", None),
        (
            "significance-weighted (default)",
            Some(4e8 / bench::DATA_SCALE as f64),
        ),
    ] {
        let mut tuner = paper_autotuner();
        tuner.optimizer.shuffle_bandwidth = bw;
        let cmp = tuner.compare(&w);
        let st = stages(&cmp.chopper);
        t.row(vec![
            label.into(),
            st[0].num_tasks.to_string(),
            format!("{:.1}s", cmp.chopper_time()),
        ]);
    }
    section(
        "Ablation: shuffle-term significance weighting",
        "Eq. 3's shuffle ratio is dimensionless: for a stage whose shuffle          is kilobytes inside a minutes-long stage, the raw formula can veto          decisions worth whole seconds to save bytes worth milliseconds.          The default scales beta's participation by the shuffle's plausible          share of stage time; setting shuffle_bandwidth to None restores          the paper's exact objective.",
        t.render(),
    )
}

fn section(title: &str, context: &str, body: String) -> String {
    format!(
        "================================================================\n\
         {title}\n{context}\n\
         ----------------------------------------------------------------\n\
         {body}\n"
    )
}
