//! Regenerates every table and figure of the CHOPPER paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- all
//! cargo run --release -p bench --bin repro -- fig3 fig7 table3
//! ```
//!
//! Output goes to stdout and, per experiment, to `results/<id>.txt`.
//! Experiment ids: table1, fig2, fig3, fig4, sec2b, fig7, fig8, table2,
//! table3, fig9, fig10, fig11, fig12, fig13, fig14, fig_mem, fig_faults,
//! fig_adaptive, fig_tenants, fig_scale, jobserver, dataplane,
//! shuffle_pipeline.
//!
//! `fig_scale` is the topology sweep: the same weak-scaled aggregation
//! auto-tuned at 6/96/1000 nodes on a flat fabric vs an oversubscribed
//! rack/spine fabric (netsim flow engine), with a flip table showing
//! where the tuned partition count or partitioner diverges. It is
//! virtual-clock deterministic and doc-sync-gated; perfgate re-runs its
//! 1000-node cells as a bit-identity floor.
//!
//! `fig_adaptive` is the adaptive-execution comparison: the skewed
//! aggregation workload with `--adaptive` off vs on (hot-partition
//! splitting plus the replan hook). It additionally writes
//! `results/BENCH_adaptive.json`; both outputs are virtual-clock
//! deterministic and doc-sync-gated, and perfgate re-measures them as a
//! bit-identity floor plus an absolute 1.3x speedup floor.
//!
//! `jobserver` additionally writes `results/BENCH_jobserver.json`: the
//! multi-tenant contention sweep (1/4/16 tenants, fair vs FIFO, plus a
//! one-slot serial baseline). All its figures are virtual-clock and
//! bit-deterministic, so unlike the wall-clock benchmarks the JSON is
//! regenerated verbatim and checked by the doc-sync drift gate.
//! `fig_tenants` renders the same sweep as the latency/throughput vs
//! tenant-count figure.
//!
//! `dataplane` additionally writes `results/BENCH_dataplane.json`: host
//! wall-clock of the executor's before/after kernels (seed spawn dispatch
//! vs persistent pool, op-at-a-time vs fused chain, seed vs hash-once
//! bucketize) plus real-workload wall-clock across worker counts.
//!
//! `shuffle_pipeline` writes `results/BENCH_shuffle_pipeline.json`: the
//! end-to-end SQL-join workload with the push-based pipelined shuffle on
//! vs off, plus the streaming-merge and owned-bucketize micro-kernels.

use bench::{
    fmt_kb, fmt_time, kmeans_motivation, kmeans_paper, kmeans_reduced, paper_autotuner,
    paper_autotuner_degraded, paper_autotuner_mem, paper_engine, pca_paper, sql_paper, stages,
    total_time, wordcount_paper, Table,
};
use chopper::{Comparison, Workload};
use engine::{Context, FaultPlan, StageMetrics, WorkloadConf};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "fig2",
            "fig3",
            "fig4",
            "sec2b",
            "fig7",
            "fig8",
            "table2",
            "table3",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig_mem",
            "fig_faults",
            "fig_adaptive",
            "fig_tenants",
            "fig_scale",
            "jobserver",
            "dataplane",
            "shuffle_pipeline",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    std::fs::create_dir_all("results").expect("create results dir");

    let mut runner = Runner::default();
    for id in wanted {
        let report = match id {
            "table1" => table1(),
            "fig2" => runner.motivation().fig2(),
            "fig3" => runner.motivation().fig3(),
            "fig4" => runner.motivation().fig4(),
            "sec2b" => runner.motivation().sec2b(),
            "fig7" => runner.fig7(),
            "fig8" => runner.fig8(),
            "table2" => runner.table2(),
            "table3" => runner.table3(),
            "fig9" => runner.fig9(),
            "fig10" => runner.fig10(),
            "fig11" => runner.trace_figure("fig11", "CPU utilization (%)", |p| p.cpu_pct),
            "fig12" => runner.trace_figure("fig12", "Memory utilization (%)", |p| p.mem_pct),
            "fig13" => {
                runner.trace_figure("fig13", "Packets tx+rx per second", |p| p.packets_per_sec)
            }
            "fig14" => runner.trace_figure("fig14", "Disk transactions per second", |p| {
                p.transactions_per_sec
            }),
            "fig_mem" => fig_mem(),
            "fig_faults" => fig_faults(),
            "fig_adaptive" => fig_adaptive(),
            "fig_tenants" => runner.fig_tenants(),
            "fig_scale" => fig_scale(),
            "jobserver" => runner.jobserver_bench(),
            "dataplane" => dataplane(),
            "shuffle_pipeline" => shuffle_pipeline(),
            other => {
                eprintln!("unknown experiment id: {other}");
                continue;
            }
        };
        println!("{report}");
        std::fs::write(format!("results/{id}.txt"), &report)
            .unwrap_or_else(|e| panic!("write results/{id}.txt: {e}"));
    }
}

/// Caches the expensive artifacts shared by several experiments.
#[derive(Default)]
struct Runner {
    motivation: Option<MotivationSweep>,
    kmeans: Option<Comparison>,
    pca: Option<Comparison>,
    sql: Option<Comparison>,
    jobserver: Option<bench::jobserver::JobserverReport>,
}

impl Runner {
    fn motivation(&mut self) -> &MotivationSweep {
        if self.motivation.is_none() {
            self.motivation = Some(MotivationSweep::run());
        }
        self.motivation.as_ref().expect("just set")
    }

    fn kmeans_cmp(&mut self) -> &Comparison {
        if self.kmeans.is_none() {
            eprintln!("[repro] auto-tuning kmeans (vanilla + test grid + tuned run)...");
            self.kmeans = Some(paper_autotuner().compare(&kmeans_paper()));
        }
        self.kmeans.as_ref().expect("just set")
    }

    fn pca_cmp(&mut self) -> &Comparison {
        if self.pca.is_none() {
            eprintln!("[repro] auto-tuning pca...");
            self.pca = Some(paper_autotuner().compare(&pca_paper()));
        }
        self.pca.as_ref().expect("just set")
    }

    fn sql_cmp(&mut self) -> &Comparison {
        if self.sql.is_none() {
            eprintln!("[repro] auto-tuning sql...");
            self.sql = Some(paper_autotuner().compare(&sql_paper()));
        }
        self.sql.as_ref().expect("just set")
    }

    // ---- Fig 7: overall execution time ---------------------------------
    fn fig7(&mut self) -> String {
        let mut t = Table::new(&["workload", "Spark", "CHOPPER", "improvement", "paper"]);
        let rows = [
            (
                "PCA",
                self.pca_cmp().vanilla_time(),
                self.pca_cmp().chopper_time(),
                "23.6%",
            ),
            (
                "KMeans",
                self.kmeans_cmp().vanilla_time(),
                self.kmeans_cmp().chopper_time(),
                "35.2%",
            ),
            (
                "SQL",
                self.sql_cmp().vanilla_time(),
                self.sql_cmp().chopper_time(),
                "33.9%",
            ),
        ];
        for (name, v, c, paper) in rows {
            t.row(vec![
                name.into(),
                fmt_time(v),
                fmt_time(c),
                format!("{:.1}%", 100.0 * (v - c) / v),
                paper.into(),
            ]);
        }
        section(
            "Fig 7 — Execution time of Spark vs CHOPPER",
            "Paper: CHOPPER improves PCA/KMeans/SQL by 23.6/35.2/33.9%. \
             Shape criterion: CHOPPER wins on all three workloads.",
            t.render(),
        )
    }

    // ---- Fig 8 / Tables II-III: KMeans breakdown -------------------------
    fn fig8(&mut self) -> String {
        let cmp = self.kmeans_cmp();
        let v = stages(&cmp.vanilla);
        let c = stages(&cmp.chopper);
        let mut t = Table::new(&["stage", "Spark", "CHOPPER"]);
        for i in 1..v.len().max(c.len()) {
            t.row(vec![
                i.to_string(),
                v.get(i).map(|s| fmt_time(s.duration())).unwrap_or_default(),
                c.get(i).map(|s| fmt_time(s.duration())).unwrap_or_default(),
            ]);
        }
        section(
            "Fig 8 — KMeans execution time per stage (stage 0 in Table II)",
            "Paper: CHOPPER reduces the execution time of (nearly) every stage. \
             Shape criterion: total and most stages improve; iteration stages \
             12-17 repeat with identical schemes.",
            t.render(),
        )
    }

    fn table2(&mut self) -> String {
        let cmp = self.kmeans_cmp();
        let v = &stages(&cmp.vanilla)[0];
        let c = &stages(&cmp.chopper)[0];
        let mut t = Table::new(&["system", "stage-0 time", "paper"]);
        t.row(vec![
            "CHOPPER".into(),
            fmt_time(c.duration()),
            "250s".into(),
        ]);
        t.row(vec!["Spark".into(), fmt_time(v.duration()), "372s".into()]);
        section(
            "Table II — Execution time for stage 0 in KMeans",
            "Shape criterion: CHOPPER's stage 0 is substantially faster than vanilla's.",
            t.render(),
        )
    }

    fn table3(&mut self) -> String {
        let cmp = self.kmeans_cmp();
        let v = stages(&cmp.vanilla);
        let c = stages(&cmp.chopper);
        let mut t = Table::new(&["stage", "CHOPPER P", "Spark P", "CHOPPER partitioner"]);
        for i in 0..v.len().max(c.len()) {
            let scheme = c
                .get(i)
                .and_then(|s| s.scheme)
                .map(|s| s.kind.to_string())
                .unwrap_or_default();
            t.row(vec![
                i.to_string(),
                c.get(i)
                    .map(|s| s.num_tasks.to_string())
                    .unwrap_or_default(),
                v.get(i)
                    .map(|s| s.num_tasks.to_string())
                    .unwrap_or_default(),
                scheme,
            ]);
        }
        section(
            "Table III — Repartition of stages using CHOPPER",
            "Paper: CHOPPER assigns per-stage counts (210/300/380/720...) instead of \
             a fixed 300; iterative stages 12-17 share one scheme. Shape criterion: \
             per-stage variety, iterations uniform, vanilla fixed at 300.",
            t.render(),
        )
    }

    // ---- Figs 9-10: SQL shuffle + per-stage times ------------------------
    fn fig9(&mut self) -> String {
        let cmp = self.sql_cmp();
        let v = stages(&cmp.vanilla);
        let c = stages(&cmp.chopper);
        let mut t = Table::new(&["stage", "Spark KB", "CHOPPER KB"]);
        for i in 0..4.min(v.len()).min(c.len()) {
            t.row(vec![
                i.to_string(),
                fmt_kb(v[i].shuffle_data()),
                fmt_kb(c[i].shuffle_data()),
            ]);
        }
        let j = 4;
        t.row(vec![
            format!("{j}*"),
            fmt_kb(v.get(j).map(|s| s.shuffle_data()).unwrap_or(0)),
            fmt_kb(c.get(j).map(|s| s.shuffle_data()).unwrap_or(0)),
        ]);
        section(
            "Fig 9 — SQL shuffle data per stage (stage 4 = join, marked *)",
            "Paper: CHOPPER shuffles less in stages 0-3; stage 4 moves the same \
             volume under both systems (4.7 GB there). Shape criterion: \
             CHOPPER <= Spark on stages 0-3; stage 4 volumes equal.",
            t.render(),
        )
    }

    fn fig10(&mut self) -> String {
        let cmp = self.sql_cmp();
        let v = stages(&cmp.vanilla);
        let c = stages(&cmp.chopper);
        let mut t = Table::new(&["stage", "Spark", "CHOPPER", "CHOPPER remote KB"]);
        for i in 0..v.len().max(c.len()) {
            t.row(vec![
                i.to_string(),
                v.get(i).map(|s| fmt_time(s.duration())).unwrap_or_default(),
                c.get(i).map(|s| fmt_time(s.duration())).unwrap_or_default(),
                c.get(i)
                    .map(|s| fmt_kb(s.remote_read_bytes))
                    .unwrap_or_default(),
            ]);
        }
        section(
            "Fig 10 — SQL execution time per stage (stage 4 = join)",
            "Paper: stage 4 takes 'comparatively shorter time' under CHOPPER \
             despite equal shuffle volume, thanks to co-partitioning. Shape \
             criterion: CHOPPER's join stage is faster and reads locally \
             (remote bytes ~0).",
            t.render(),
        )
    }

    // ---- Figs 11-14: utilization traces ----------------------------------
    fn trace_figure(
        &mut self,
        id: &str,
        label: &str,
        metric: fn(&simcluster::TracePoint) -> f64,
    ) -> String {
        let series: Vec<(String, Vec<simcluster::TracePoint>)> = vec![
            (
                "PCA-Spark".into(),
                self.pca_cmp().vanilla.sim().trace().points(),
            ),
            (
                "PCA-CHOPPER".into(),
                self.pca_cmp().chopper.sim().trace().points(),
            ),
            (
                "KMeans-Spark".into(),
                self.kmeans_cmp().vanilla.sim().trace().points(),
            ),
            (
                "KMeans-CHOPPER".into(),
                self.kmeans_cmp().chopper.sim().trace().points(),
            ),
            (
                "SQL-Spark".into(),
                self.sql_cmp().vanilla.sim().trace().points(),
            ),
            (
                "SQL-CHOPPER".into(),
                self.sql_cmp().chopper.sim().trace().points(),
            ),
        ];
        let max_len = series.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
        let header: Vec<&str> = std::iter::once("time(s)")
            .chain(series.iter().map(|(n, _)| n.as_str()))
            .collect();
        let mut t = Table::new(&header);
        // Sample every other bucket (20 s steps, like the paper's x-axis).
        for b in (0..max_len).step_by(2) {
            let mut row = vec![format!("{}", b * 10)];
            for (_, pts) in &series {
                row.push(
                    pts.get(b)
                        .map(|p| format!("{:.1}", metric(p)))
                        .unwrap_or_default(),
                );
            }
            t.row(row);
        }
        section(
            &format!("Fig {} — {} over workload execution", &id[3..], label),
            "Paper: CHOPPER's utilization is equivalent or better than vanilla \
             Spark's, and its runs finish sooner (series end earlier). Shape \
             criterion: comparable peaks, earlier completion for CHOPPER.",
            t.render(),
        )
    }

    // ---- Multi-tenant job server -----------------------------------------
    fn jobserver_report(&mut self) -> &bench::jobserver::JobserverReport {
        if self.jobserver.is_none() {
            eprintln!(
                "[repro] serving the multi-tenant contention sweep \
                 (1/4/16 tenants, fair + fifo + serial baseline)..."
            );
            self.jobserver = Some(bench::jobserver::measure_jobserver());
        }
        self.jobserver.as_ref().expect("just set")
    }

    fn jobserver_bench(&mut self) -> String {
        let report = self.jobserver_report().clone();
        std::fs::write("results/BENCH_jobserver.json", report.to_json())
            .expect("write results/BENCH_jobserver.json");
        let mut t = Table::new(&[
            "tenants", "policy", "jobs", "p50", "p99", "p99_int", "jobs/s", "makespan",
        ]);
        for r in &report.rows {
            t.row(vec![
                r.tenants.to_string(),
                r.policy.clone(),
                r.jobs.to_string(),
                fmt_time(r.p50_latency),
                fmt_time(r.p99_latency),
                fmt_time(r.p99_interactive),
                format!("{:.3}", r.throughput),
                fmt_time(r.makespan),
            ]);
        }
        let body = format!(
            "{}\nserial baseline (16 tenants, 1 slot): {:.3} jobs/s — concurrent \
             fair server is {:.2}x faster (gate floor {:.1}x).\n",
            t.render(),
            report.serial_throughput,
            report.speedup_16,
            bench::jobserver::JOBSERVER_SPEEDUP_FLOOR,
        );
        section(
            "Job server — multi-tenant contention sweep (BENCH_jobserver.json)",
            "Virtual-clock latencies and throughput of the long-lived job \
             server under the deterministic loadgen trace (14 jobs/tenant, \
             seed 5, 8 slots). Figures are bit-deterministic: the committed \
             JSON regenerates verbatim and perfgate bands it at the shared \
             tolerance with hard floors on 16-tenant speedup and fairness.",
            body,
        )
    }

    fn fig_tenants(&mut self) -> String {
        let report = self.jobserver_report();
        let mut t = Table::new(&[
            "tenants",
            "fair p99_int",
            "fifo p99_int",
            "fair p50",
            "fifo p50",
            "fair jobs/s",
            "fifo jobs/s",
        ]);
        for &n in &bench::jobserver::TENANT_COUNTS {
            let fair = report.row(n, "fair").expect("fair row");
            let fifo = report.row(n, "fifo").expect("fifo row");
            t.row(vec![
                n.to_string(),
                fmt_time(fair.p99_interactive),
                fmt_time(fifo.p99_interactive),
                fmt_time(fair.p50_latency),
                fmt_time(fifo.p50_latency),
                format!("{:.3}", fair.throughput),
                format!("{:.3}", fifo.throughput),
            ]);
        }
        section(
            "Fig tenants — latency and throughput vs tenant count, fair vs FIFO",
            "Start-time fair queueing shields interactive tenants from the \
             weight-1 batch tenant as contention grows: at 16 tenants the \
             fair server's interactive p99 (and overall p50) beats FIFO's, \
             at identical throughput, while the batch tenant absorbs the \
             deferred work. Shape criterion: fair p99_int < fifo p99_int \
             at 16 tenants; the gap widens with tenant count; single-tenant \
             rows coincide (no contention, nothing to arbitrate).",
            t.render(),
        )
    }
}

// ---- Table I ------------------------------------------------------------
fn table1() -> String {
    let workloads: Vec<(&str, Box<dyn Workload>, f64)> = vec![
        ("KMeans", Box::new(kmeans_paper()), 21.8),
        ("PCA", Box::new(pca_paper()), 27.6),
        ("SQL", Box::new(sql_paper()), 34.5),
    ];
    let kmeans_bytes = workloads[0].1.full_input_bytes() as f64;
    let mut t = Table::new(&[
        "workload",
        "input (MB, scaled)",
        "ratio vs KMeans",
        "paper (GB)",
    ]);
    for (name, w, paper_gb) in &workloads {
        let bytes = w.full_input_bytes() as f64;
        t.row(vec![
            (*name).into(),
            format!("{:.1}", bytes / 1e6),
            format!("{:.2}", bytes / kmeans_bytes),
            format!("{paper_gb}"),
        ]);
    }
    section(
        "Table I — Workloads and input data sizes",
        "The paper's inputs (21.8/27.6/34.5 GB) are scaled down ~300x for a \
         single-machine reproduction; the inter-workload ratios are preserved \
         (paper ratios: 1.00/1.27/1.58).",
        t.render(),
    )
}

// ---- Section II-B motivation sweep ---------------------------------------
struct MotivationSweep {
    /// `(P, per-stage metrics, total)` per sweep point.
    runs: Vec<(usize, Vec<StageMetrics>, f64)>,
}

impl MotivationSweep {
    fn run() -> Self {
        let w = kmeans_motivation();
        let ps = [100, 200, 300, 400, 500, 2000];
        let runs = ps
            .iter()
            .map(|&p| {
                eprintln!("[repro] motivation sweep P={p}...");
                let ctx: Context = w.run(&paper_engine(p, false), &WorkloadConf::new(), 1.0);
                let st = stages(&ctx);
                let total = total_time(&ctx);
                (p, st, total)
            })
            .collect();
        MotivationSweep { runs }
    }

    fn sweep_points(&self) -> impl Iterator<Item = &(usize, Vec<StageMetrics>, f64)> {
        self.runs.iter().filter(|(p, _, _)| *p != 2000)
    }

    fn fig2(&self) -> String {
        let header: Vec<String> = std::iter::once("stage".to_string())
            .chain(self.sweep_points().map(|(p, _, _)| format!("P={p}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        let num_stages = self.runs[0].1.len();
        for i in 1..num_stages {
            let mut row = vec![i.to_string()];
            for (_, st, _) in self.sweep_points() {
                row.push(format!("{:.1}", st[i].duration()));
            }
            t.row(row);
        }
        let mut totals = vec!["total".to_string()];
        for (_, _, total) in self.sweep_points() {
            totals.push(format!("{total:.1}"));
        }
        t.row(totals);
        section(
            "Fig 2 — KMeans execution time per stage under different partition counts",
            "Paper: per-stage times vary with P and each stage has its own optimum. \
             Shape criterion: stage times change with P; no single P is best for \
             every stage (times in seconds; stage 0 in Fig 3).",
            t.render(),
        )
    }

    fn fig3(&self) -> String {
        let mut t = Table::new(&["partitions", "stage-0 time"]);
        for (p, st, _) in self.sweep_points() {
            t.row(vec![p.to_string(), fmt_time(st[0].duration())]);
        }
        section(
            "Fig 3 — KMeans stage-0 execution time vs partition count",
            "Paper: worst at P=100 (~225 s), improving toward P=500. Shape \
             criterion: monotone decrease from 100 to 500 with P=100 the worst.",
            t.render(),
        )
    }

    fn fig4(&self) -> String {
        // Shuffle stages are the iteration stages; collect every stage with
        // nonzero shuffle volume, keyed by stage id.
        let mut by_stage: BTreeMap<usize, Vec<(usize, u64)>> = BTreeMap::new();
        for (p, st, _) in self.sweep_points() {
            for s in st {
                if s.shuffle_data() > 0 {
                    by_stage
                        .entry(s.stage_id)
                        .or_default()
                        .push((*p, s.shuffle_data()));
                }
            }
        }
        let header: Vec<String> = std::iter::once("stage".to_string())
            .chain(self.sweep_points().map(|(p, _, _)| format!("P={p} (KB)")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&header_refs);
        for (stage, vals) in &by_stage {
            let mut row = vec![stage.to_string()];
            for (p, _, _) in self.sweep_points() {
                let v = vals
                    .iter()
                    .find(|(vp, _)| vp == p)
                    .map(|(_, b)| *b)
                    .unwrap_or(0);
                row.push(format!("{:.1}", v as f64 / 1024.0));
            }
            t.row(row);
        }
        section(
            "Fig 4 — KMeans shuffle data per stage under different partition counts",
            "Paper: shuffle volume grows with the partition count at every shuffle \
             stage (434.83 KB at P=200 vs 1081.6 KB at P=500 for stage 17). Shape \
             criterion: monotone growth in P for every shuffle stage.",
            t.render(),
        )
    }

    fn sec2b(&self) -> String {
        let best = self
            .sweep_points()
            .map(|(p, _, total)| (*p, *total))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty sweep");
        let p2000 = self
            .runs
            .iter()
            .find(|(p, _, _)| *p == 2000)
            .expect("2000-partition run present");
        let last_shuffle = |st: &[StageMetrics]| {
            st.iter()
                .rev()
                .find(|s| s.shuffle_data() > 0)
                .map(|s| s.shuffle_data())
                .unwrap_or(0)
        };
        let best_st = &self
            .sweep_points()
            .find(|(p, _, _)| *p == best.0)
            .expect("present")
            .1;
        let mut t = Table::new(&["config", "total time", "last shuffle stage KB"]);
        t.row(vec![
            format!("best sweep point (P={})", best.0),
            fmt_time(best.1),
            fmt_kb(last_shuffle(best_st)),
        ]);
        t.row(vec![
            "P=2000".into(),
            fmt_time(p2000.2),
            fmt_kb(last_shuffle(&p2000.1)),
        ]);
        let impr = 100.0 * (p2000.2 - best.1) / p2000.2;
        let shuffle_red =
            100.0 * (1.0 - last_shuffle(best_st) as f64 / last_shuffle(&p2000.1).max(1) as f64);
        let body = format!(
            "{}\nvs P=2000: {impr:.1}% faster, {shuffle_red:.1}% less shuffle data \
             (paper: 46.1% time / 94.9% shuffle vs 2000 partitions).\n",
            t.render()
        );
        section(
            "Section II-B — the 2000-partition blow-up",
            "Paper: 2000 partitions take 4.53 min and 4300.8 KB of stage-17 shuffle; \
             a well-chosen count is ~46% faster with ~95% less shuffle. Shape \
             criterion: P=2000 is substantially slower and shuffles far more.",
            body,
        )
    }
}

// ---- Fig mem: memory-governed storage under a bounded executor -----------

/// Per-executor memory bound for the constrained rows (bytes). Sized so
/// the naive configuration's large tasks reserve enough execution memory
/// to squeeze the cached input out of storage, while the higher partition
/// counts the memory-aware optimizer selects leave it resident.
const FIG_MEM_BUDGET: u64 = 1150 * 1024;

/// A memory-oblivious default parallelism sized for roomy executors:
/// a handful of fat tasks, each holding a large working set.
const FIG_MEM_NAIVE_P: usize = 30;

/// Largest partition count the plan actually installed.
fn max_tuned_p(plan: &chopper::TuningPlan) -> usize {
    use chopper::DecisionAction;
    plan.decisions
        .iter()
        .filter_map(|d| match &d.action {
            DecisionAction::Retune(s)
            | DecisionAction::RetuneGrouped(s)
            | DecisionAction::InsertRepartition(s) => Some(s.partitions),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

fn fig_mem() -> String {
    let w = kmeans_reduced();

    eprintln!("[repro] fig_mem: tuning reduced kmeans with unbounded executors...");
    let free = paper_autotuner_mem(FIG_MEM_NAIVE_P, None).compare(&w);
    let p_free = max_tuned_p(&free.plan);

    eprintln!("[repro] fig_mem: naive run + memory-aware tune under the bound...");
    let aware = paper_autotuner_mem(FIG_MEM_NAIVE_P, Some(FIG_MEM_BUDGET)).compare(&w);
    let p_aware = max_tuned_p(&aware.plan);

    let rows: Vec<(&str, usize, &Context)> = vec![
        ("unbounded, naive P", FIG_MEM_NAIVE_P, &free.vanilla),
        ("unbounded, tuned", p_free, &free.chopper),
        ("bounded, naive P", FIG_MEM_NAIVE_P, &aware.vanilla),
        ("bounded, memory-aware", p_aware, &aware.chopper),
    ];
    let mut t = Table::new(&[
        "config",
        "max P",
        "evictions",
        "spills",
        "spill KB",
        "rereads",
        "reread KB",
        "time",
    ]);
    for (name, p, ctx) in rows {
        let mc = ctx.mem_counters();
        t.row(vec![
            name.into(),
            p.to_string(),
            mc.evictions.to_string(),
            mc.spills.to_string(),
            fmt_kb(mc.spill_bytes),
            mc.rereads.to_string(),
            fmt_kb(mc.reread_bytes),
            fmt_time(total_time(ctx)),
        ]);
    }
    section(
        &format!(
            "Fig mem — bounded executor memory ({} KB) vs partition count",
            FIG_MEM_BUDGET / 1024
        ),
        "A memory-oblivious configuration run on small-memory executors \
         spills: its fat tasks reserve execution memory that squeezes the \
         cached input out of storage, and every later iteration rereads \
         it from disk (the Fig-14 transaction counters account the \
         traffic). The memory-aware optimizer's feasibility bound selects \
         a higher partition count than the unconstrained tune, whose \
         smaller working sets leave the cache resident. Shape criterion: \
         memory-aware P > unbounded tuned P; the bounded naive run \
         spills and rereads; the bounded memory-aware run has zero \
         spills and matches the unbounded tuned profile.",
        t.render(),
    )
}

// ---- Fig faults: deterministic fault injection + lineage recovery ---------

/// Placement- and timing-independent view of a run: stage structure plus
/// every byte/record table. Faults must never move any of it.
fn byte_table(ctx: &Context) -> String {
    let mut s = String::new();
    for j in ctx.jobs() {
        let _ = writeln!(s, "job {} ({} stages)", j.name, j.stages.len());
        for m in &j.stages {
            let _ = writeln!(
                s,
                "  {} tasks={} in={}r/{}B out={}r/{}B shuffle_r={}B shuffle_w={}B",
                m.name,
                m.num_tasks,
                m.input_records,
                m.input_bytes,
                m.output_records,
                m.output_bytes,
                m.shuffle_read_bytes,
                m.shuffle_write_bytes
            );
        }
    }
    s
}

fn fig_faults() -> String {
    let plan = FaultPlan::from_text(include_str!("../../../../plans/fig_faults.plan"))
        .expect("shipped fig_faults plan parses");

    // Wordcount + SQL join under the canned three-fault plan, checked
    // against their fault-free twins.
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        ("wordcount", Box::new(wordcount_paper())),
        ("SQL join", Box::new(sql_paper())),
    ];
    let mut t = Table::new(&[
        "workload",
        "jobs ok",
        "clean time",
        "faulted time",
        "retries",
        "recomputed maps",
        "re-homed",
        "stragglers",
        "tables equal",
    ]);
    for (name, w) in &workloads {
        eprintln!("[repro] fig_faults: {name} fault-free + faulted runs...");
        let clean = w.run_full(&paper_engine(300, false), &WorkloadConf::new());
        let mut opts = paper_engine(300, false);
        opts.faults = Some(plan.clone());
        let faulted = w.run_full(&opts, &WorkloadConf::new());
        let fc = faulted.fault_counters();
        let equal = byte_table(&clean) == byte_table(&faulted);
        t.row(vec![
            (*name).into(),
            format!("{}/{}", faulted.jobs().len(), clean.jobs().len()),
            fmt_time(total_time(&clean)),
            fmt_time(total_time(&faulted)),
            fc.retried_tasks.to_string(),
            fc.recomputed_map_tasks.to_string(),
            fc.replica_rehomed_partitions.to_string(),
            fc.stragglers_applied.to_string(),
            if equal { "yes" } else { "NO" }.into(),
        ]);
    }

    // After the loss the cluster is one node smaller and tasks keep
    // failing at the plan's rate: CHOPPER re-tunes and chooses a new P.
    eprintln!("[repro] fig_faults: re-tuning wordcount on the degraded cluster...");
    let w = wordcount_paper();
    let healthy = paper_autotuner_mem(300, None).compare(&w);
    let degraded = paper_autotuner_degraded(300, 1, plan.task_fail_prob).compare(&w);
    let mut o = Table::new(&["cluster", "max tuned P", "tuned time"]);
    o.row(vec![
        "healthy (5 nodes)".into(),
        max_tuned_p(&healthy.plan).to_string(),
        fmt_time(healthy.chopper_time()),
    ]);
    o.row(vec![
        format!(
            "degraded (node B lost, {:.0}% task failures)",
            100.0 * plan.task_fail_prob
        ),
        max_tuned_p(&degraded.plan).to_string(),
        fmt_time(degraded.chopper_time()),
    ]);

    section(
        "Fig faults — deterministic fault injection and lineage recovery",
        "Wordcount and the SQL join run under plans/fig_faults.plan: 5% \
         seeded task failures, node B lost at t=60 (mid scan stage, while \
         its map outputs are live), and a 2x straggler on node D. Shape \
         criterion: every job completes, retries and lineage recomputation \
         are non-zero, and the faulted byte tables are identical to the \
         fault-free ones — recovery costs time, never answers. After the \
         loss, re-tuning on the shrunk cluster with the failure rate \
         charged into the cost model re-chooses the partition count.",
        format!("{}\n{}", t.render(), o.render()),
    )
}

// ---- Fig adaptive: runtime re-optimization on the skewed aggregation -----

fn fig_adaptive() -> String {
    eprintln!("[repro] fig_adaptive: skewed aggregation, static vs adaptive (virtual clock)...");
    let report = bench::adaptive::measure_adaptive();
    std::fs::write("results/BENCH_adaptive.json", report.to_json())
        .expect("write results/BENCH_adaptive.json");

    let mut t = Table::new(&[
        "job",
        "static time",
        "adaptive time",
        "static tasks",
        "adaptive tasks",
        "static scheme",
        "adaptive scheme",
    ]);
    for r in &report.jobs {
        t.row(vec![
            r.job.clone(),
            fmt_time(r.time_static),
            fmt_time(r.time_adaptive),
            r.tasks_static.to_string(),
            r.tasks_adaptive.to_string(),
            r.scheme_static.clone(),
            r.scheme_adaptive.clone(),
        ]);
    }
    let body = format!(
        "{}\ntotal: static {} vs adaptive {} — {:.2}x faster (gate floor \
         {:.1}x); sorted output tables bit-identical: {} (fingerprint \
         {:016x}).\n",
        t.render(),
        fmt_time(report.total_static),
        fmt_time(report.total_adaptive),
        report.speedup,
        bench::adaptive::ADAPTIVE_SPEEDUP_FLOOR,
        if report.tables_equal { "yes" } else { "NO" },
        report.fingerprint,
    );
    section(
        "Fig adaptive — runtime re-optimization vs the static plan \
         (BENCH_adaptive.json)",
        "The skewed aggregation workload under `--adaptive` off vs on. Job \
         hot-agg groups a byte-skewed table under a user-fixed range \
         partitioner whose count-balancing bounds leave one byte-hot \
         partition; the adaptive engine detects it from the per-bucket \
         byte columns and splits it into key-preserving sub-tasks \
         mid-job. The freq-agg rounds run the same hash aggregation twice \
         over a Zipf table; after round one the replan hook feeds observed \
         stage actuals back through the cost objective and retunes the \
         shared stage signature for round two. Shape criterion: the hot \
         job runs more virtual tasks than physical partitions, round two's \
         scheme differs from round one's, the adaptive total beats the \
         static total by the gate floor, and both modes' sorted output \
         tables are bit-identical. All figures are virtual-clock \
         deterministic: the committed JSON regenerates verbatim and \
         perfgate re-measures it with hard floors.",
        body,
    )
}

// ---- Data-plane before/after benchmark -----------------------------------

// ---- Fig scale: topology sweep 6 → 96 → 1000 nodes ------------------------

fn fig_scale() -> String {
    let sweep = bench::scale::run_sweep();
    let flips = sweep.flips().len();
    let body = format!(
        "{}\nStages re-tuned differently on the oversubscribed fabric ({flips}):\n{}",
        sweep.cells_table(),
        sweep.flips_table()
    );
    section(
        "Fig scale — tuned P and partitioner vs cluster size and fabric",
        "The same weak-scaled aggregation workload auto-tuned at 6, 96 and \
         1000 hosts, once on a flat fabric and once on a 4:1-oversubscribed \
         rack/spine fabric. Rack cells run on the netsim flow engine \
         (per-link max-min sharing, topology-aware reduce placement) and \
         the optimizer judges shuffle significance against the degraded \
         cross-rack bandwidth, so contention the flat model cannot see \
         reshapes its choices. Shape criterion: at least one stage's tuned \
         partition count or partitioner differs between the fabrics, and \
         the whole table regenerates bit-identically (doc-sync gated).",
        body,
    )
}

fn dataplane() -> String {
    let runs = (0..3).map(|_| bench::report::measure_dataplane()).collect();
    let report = bench::report::conservative_baseline(runs);
    std::fs::write("results/BENCH_dataplane.json", report.to_json())
        .expect("write results/BENCH_dataplane.json");

    let mut t = Table::new(&["kernel", "before ms", "after ms", "speedup"]);
    for k in &report.kernels {
        t.row(vec![
            k.name.clone(),
            format!("{:.2}", k.before_ms),
            format!("{:.2}", k.after_ms),
            format!("{:.2}x", k.speedup),
        ]);
    }
    if let [one, many] = report.workload_wallclock.as_slice() {
        t.row(vec![
            format!(
                "{} wall-clock {} -> {} workers",
                one.workload, one.workers, many.workers
            ),
            format!("{:.1}", one.host_ms),
            format!("{:.1}", many.host_ms),
            format!("{:.2}x", one.host_ms / many.host_ms),
        ]);
    }
    section(
        "Data plane — before/after host wall-clock (BENCH_dataplane.json)",
        "Before = seed kernels (scoped spawn dispatch, deep-copy + op-at-a-time \
         chains, re-hashing bucketize); after = persistent pool + fused \
         zero-copy data plane. Timings are interleaved best-of-7 host \
         milliseconds; per kernel, the most conservative of three runs is \
         committed so the one-sided CI gate never inherits an inflated floor.",
        t.render(),
    )
}

fn shuffle_pipeline() -> String {
    let runs = (0..3)
        .map(|_| bench::report::measure_shuffle_pipeline())
        .collect();
    let report = bench::report::conservative_baseline(runs);
    std::fs::write("results/BENCH_shuffle_pipeline.json", report.to_json())
        .expect("write results/BENCH_shuffle_pipeline.json");

    let mut t = Table::new(&["kernel", "before ms", "after ms", "speedup"]);
    for k in &report.kernels {
        t.row(vec![
            k.name.clone(),
            format!("{:.2}", k.before_ms),
            format!("{:.2}", k.after_ms),
            format!("{:.2}x", k.speedup),
        ]);
    }
    section(
        "Shuffle pipeline — barrier vs push-based (BENCH_shuffle_pipeline.json)",
        "pipeline_sql_join_e2e is the headline: host wall-clock of a \
         multi-stage SQL-join workload (two aggregations feeding a join and \
         a rebalance, 8 workers) with `--pipeline off` (stage-barrier \
         engine) vs `--pipeline on` (push-based exchange, streaming merges, \
         owned bucketize). The micro-kernels isolate the per-record wins \
         the pipeline rides on. Timings are interleaved best-of-7 host \
         milliseconds; per kernel, the most conservative of three runs is \
         committed so the one-sided CI gate never inherits an inflated floor.",
        t.render(),
    )
}

fn section(title: &str, context: &str, body: String) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "================================================================"
    );
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{context}");
    let _ = writeln!(
        s,
        "----------------------------------------------------------------"
    );
    let _ = writeln!(s, "{body}");
    s
}
