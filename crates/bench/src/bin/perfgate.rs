//! CI perf-regression gate over the data-plane kernels.
//!
//! ```text
//! cargo run --release -p bench --bin perfgate
//! cargo run --release -p bench --bin perfgate -- --baseline results/BENCH_dataplane.json \
//!     --tolerance 0.15 [--fresh-out results/BENCH_dataplane.fresh.json]
//! ```
//!
//! Re-measures the before/after kernels on this host and compares each
//! kernel's *speedup ratio* against the committed baseline. Ratios are
//! machine-portable (both sides of each ratio run on the same host), so
//! the gate works on heterogeneous CI runners where raw milliseconds
//! would not. Exits 1 if any kernel's fresh ratio falls more than the
//! tolerance (default 15%) below the baseline's.

use bench::report::{gate_checks, measure_dataplane, DataplaneReport};
use engine::{Context, EngineOptions, Key, MemCounters, Record, Value};
use simcluster::uniform_cluster;
use std::sync::Arc;

/// Deterministic memory-governance gate: the storage layer must stay
/// inert under a generous budget, spill under a tight budget with fat
/// tasks, and stop spilling once the partition count is raised — the
/// exact mechanism the memory-aware optimizer relies on. These runs are
/// virtual-clock simulations, so the assertions are exact, not
/// tolerance-banded.
fn mem_gate() -> Vec<(String, bool)> {
    let run = |partitions: usize, executor_mem: Option<u64>| -> MemCounters {
        let mut ctx = Context::new(EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: partitions,
            workers: 2,
            executor_mem,
            ..EngineOptions::default()
        });
        // Distinct keys so map-side combine cannot collapse the shuffle:
        // per-task write volume scales as 1/P.
        let data: Vec<Record> = (0..3000)
            .map(|i| Record::new(Key::Int(i), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, partitions, "src");
        let summed = ctx.reduce_by_key(
            src,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-6,
            "sum",
        );
        ctx.collect(summed, "mem-gate");
        ctx.mem_counters()
    };
    // Cache-squeeze shape (two cached RDDs under a bounded store): the
    // eviction machinery itself must engage.
    let cache_run = |executor_mem: u64| -> MemCounters {
        let mut ctx = Context::new(EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: 8,
            workers: 2,
            executor_mem: Some(executor_mem),
            ..EngineOptions::default()
        });
        let data: Vec<Record> = (0..3000)
            .map(|i| Record::new(Key::Int(i % 89), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, 8, "src");
        let mapped = ctx.map(
            src,
            Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 5))),
            1e-7,
            "mapped",
        );
        ctx.cache(mapped);
        let filtered = ctx.filter(
            mapped,
            Arc::new(|r: &Record| r.value.as_int() % 3 != 0),
            1e-7,
            "filtered",
        );
        ctx.cache(filtered);
        let reduced = ctx.reduce_by_key(
            filtered,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-6,
            "reduced",
        );
        ctx.collect(reduced, "materialize");
        let grouped = ctx.group_by_key(
            filtered,
            Some(engine::PartitionerSpec::range(6)),
            1e-6,
            "grouped",
        );
        ctx.count(grouped, "group");
        ctx.mem_counters()
    };

    let generous = run(4, Some(1 << 40));
    let naive = run(4, Some(16 * 1024));
    let tuned = run(64, Some(16 * 1024));
    let squeezed = cache_run(28 * 1024);
    vec![
        (
            format!("generous budget stays inert ({generous:?})"),
            generous == MemCounters::default(),
        ),
        (
            format!("tight budget + fat tasks spill (spills={})", naive.spills),
            naive.spills > 0 && naive.spill_bytes > 0,
        ),
        (
            format!("tight budget + high P spill-free (spills={})", tuned.spills),
            tuned.spills == 0 && tuned.spill_bytes == 0,
        ),
        (
            format!("bounded cache evicts (evictions={})", squeezed.evictions),
            squeezed.evictions > 0,
        ),
    ]
}

fn main() {
    let mut baseline_path = "results/BENCH_dataplane.json".to_string();
    let mut tolerance = 0.15f64;
    let mut fresh_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--tolerance" => {
                let raw = value("--tolerance");
                tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --tolerance '{raw}' (fraction, e.g. 0.15)");
                    std::process::exit(2);
                });
            }
            "--fresh-out" => fresh_out = Some(value("--fresh-out")),
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: perfgate [--baseline FILE] [--tolerance F] [--fresh-out FILE]");
                std::process::exit(2);
            }
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("error: --tolerance must be in [0, 1), got {tolerance}");
        std::process::exit(2);
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = DataplaneReport::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {baseline_path}: {e}");
        std::process::exit(2);
    });

    eprintln!("[perfgate] measuring data-plane kernels (best-of-5 per kernel)...");
    let fresh = measure_dataplane();
    if let Some(path) = &fresh_out {
        std::fs::write(path, fresh.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    }

    let checks = gate_checks(&baseline, &fresh, tolerance);
    println!(
        "{:<36} {:>9} {:>9} {:>9}  verdict",
        "kernel", "baseline", "fresh", "floor"
    );
    let mut failed = false;
    for c in &checks {
        let fresh_cell = c
            .fresh_speedup
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "missing".to_string());
        println!(
            "{:<36} {:>8.2}x {:>9} {:>8.2}x  {}",
            c.name,
            c.baseline_speedup,
            fresh_cell,
            c.floor,
            if c.ok() { "ok" } else { "REGRESSED" }
        );
        failed |= !c.ok();
    }
    eprintln!("[perfgate] checking memory-governance invariants...");
    for (name, ok) in mem_gate() {
        println!("{:<80} {}", name, if ok { "ok" } else { "VIOLATED" });
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "perfgate: FAIL — a kernel regressed more than {:.0}% vs {baseline_path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "perfgate: ok — all {} kernels within {:.0}% of {baseline_path}",
        checks.len(),
        tolerance * 100.0
    );
}
