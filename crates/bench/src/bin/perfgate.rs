//! CI perf-regression gate over the data-plane kernels.
//!
//! ```text
//! cargo run --release -p bench --bin perfgate
//! cargo run --release -p bench --bin perfgate -- --baseline results/BENCH_dataplane.json \
//!     --shuffle-baseline results/BENCH_shuffle_pipeline.json \
//!     --jobserver-baseline results/BENCH_jobserver.json \
//!     --tolerance 0.15 [--fresh-out results/BENCH_dataplane.fresh.json] \
//!     [--shuffle-fresh-out results/BENCH_shuffle_pipeline.fresh.json] \
//!     [--jobserver-fresh-out results/BENCH_jobserver.fresh.json]
//! ```
//!
//! Re-measures the before/after kernels on this host and compares each
//! kernel's *speedup ratio* against the committed baselines (data-plane
//! and shuffle-pipeline). Ratios are machine-portable (both sides of each
//! ratio run on the same host), so the gate works on heterogeneous CI
//! runners where raw milliseconds would not. Exits 1 if any kernel's
//! fresh ratio falls more than the tolerance (default 15%) below the
//! baseline's, or if the pipelined shuffle's end-to-end speedup drops
//! below its hard 1.3x floor.
//!
//! The job-server gate re-serves the multi-tenant contention sweep and
//! compares its *virtual-clock* p99 latency and throughput against
//! `results/BENCH_jobserver.json` at the same tolerance, with two
//! absolute floors: 16-tenant throughput at least 2x the serial server,
//! and fair-share beating FIFO on interactive p99 under contention.
//!
//! The netsim gate holds the topology subsystem to its scale contract:
//! event-queue and 1000-node-fabric churn at ≥ 1M events/s, the
//! 1000-node fig_scale cells re-tuned under a wall-clock budget with at
//! least one stage flipped on the oversubscribed fabric, and the fresh
//! cells bit-identical to the committed `results/fig_scale.txt`.
//!
//! The adaptive gate re-runs the skewed-aggregation comparison
//! (virtual clock) and holds it to the committed
//! `results/BENCH_adaptive.json` bit-identically, plus hard floors: the
//! adaptive run at least 1.3x faster than the static run with
//! bit-identical sorted output tables, the hot range partition actually
//! split, and the repeated hash aggregation actually retuned.

use bench::jobserver::{jobserver_gate_checks, measure_jobserver, JobserverReport};
use bench::report::{
    best_fresh, gate_checks, measure_dataplane, measure_shuffle_pipeline, DataplaneReport,
};
use engine::{Context, EngineOptions, FaultCounters, FaultPlan, Key, MemCounters, Record, Value};
use simcluster::uniform_cluster;
use std::sync::Arc;

/// Deterministic memory-governance gate: the storage layer must stay
/// inert under a generous budget, spill under a tight budget with fat
/// tasks, and stop spilling once the partition count is raised — the
/// exact mechanism the memory-aware optimizer relies on. These runs are
/// virtual-clock simulations, so the assertions are exact, not
/// tolerance-banded.
fn mem_gate() -> Vec<(String, bool)> {
    let run = |partitions: usize, executor_mem: Option<u64>| -> MemCounters {
        let mut ctx = Context::new(EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: partitions,
            workers: 2,
            executor_mem,
            ..EngineOptions::default()
        });
        // Distinct keys so map-side combine cannot collapse the shuffle:
        // per-task write volume scales as 1/P.
        let data: Vec<Record> = (0..3000)
            .map(|i| Record::new(Key::Int(i), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, partitions, "src");
        let summed = ctx.reduce_by_key(
            src,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-6,
            "sum",
        );
        ctx.collect(summed, "mem-gate");
        ctx.mem_counters()
    };
    // Cache-squeeze shape (two cached RDDs under a bounded store): the
    // eviction machinery itself must engage.
    let cache_run = |executor_mem: u64| -> MemCounters {
        let mut ctx = Context::new(EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: 8,
            workers: 2,
            executor_mem: Some(executor_mem),
            ..EngineOptions::default()
        });
        let data: Vec<Record> = (0..3000)
            .map(|i| Record::new(Key::Int(i % 89), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, 8, "src");
        let mapped = ctx.map(
            src,
            Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 5))),
            1e-7,
            "mapped",
        );
        ctx.cache(mapped);
        let filtered = ctx.filter(
            mapped,
            Arc::new(|r: &Record| r.value.as_int() % 3 != 0),
            1e-7,
            "filtered",
        );
        ctx.cache(filtered);
        let reduced = ctx.reduce_by_key(
            filtered,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-6,
            "reduced",
        );
        ctx.collect(reduced, "materialize");
        let grouped = ctx.group_by_key(
            filtered,
            Some(engine::PartitionerSpec::range(6)),
            1e-6,
            "grouped",
        );
        ctx.count(grouped, "group");
        ctx.mem_counters()
    };

    let generous = run(4, Some(1 << 40));
    let naive = run(4, Some(16 * 1024));
    let tuned = run(64, Some(16 * 1024));
    let squeezed = cache_run(28 * 1024);
    vec![
        (
            format!("generous budget stays inert ({generous:?})"),
            generous == MemCounters::default(),
        ),
        (
            format!("tight budget + fat tasks spill (spills={})", naive.spills),
            naive.spills > 0 && naive.spill_bytes > 0,
        ),
        (
            format!("tight budget + high P spill-free (spills={})", tuned.spills),
            tuned.spills == 0 && tuned.spill_bytes == 0,
        ),
        (
            format!("bounded cache evicts (evictions={})", squeezed.evictions),
            squeezed.evictions > 0,
        ),
    ]
}

/// Deterministic fault-recovery gate. The kernel ratio gates above
/// already police the *wall-clock* cost of carrying the recovery hooks:
/// the committed baselines predate the fault subsystem, so a fresh
/// measurement that fell more than the tolerance below them would fail
/// the run. What this gate adds are the exact virtual-clock invariants:
/// an inert plan is bit-identical to no plan, an active plan injects
/// faults without moving results, and a node loss blacklists the node
/// and recomputes its live map outputs through lineage.
fn fault_gate() -> Vec<(String, bool)> {
    // Results + virtual stage metrics + fault counters of a two-job run
    // (cached map feeding two shuffles) under the given plan. Per-record
    // costs are sized so the virtual clock passes the lossy plan's t=20
    // node loss while the first shuffle's map outputs are live.
    let run = |faults: Option<FaultPlan>| -> (String, String, FaultCounters) {
        let mut ctx = Context::new(EngineOptions {
            cluster: uniform_cluster(3, 4, 2.0),
            default_parallelism: 8,
            workers: 2,
            faults,
            ..EngineOptions::default()
        });
        let data: Vec<Record> = (0..4000)
            .map(|i| Record::new(Key::Int(i % 97), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, 8, "src");
        let mapped = ctx.map(
            src,
            Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 3))),
            0.25,
            "scale",
        );
        ctx.cache(mapped);
        let sum = |a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int());
        let reduced = ctx.reduce_by_key(mapped, Arc::new(sum), None, 0.02, "sum");
        let mut out = ctx.collect(reduced, "first");
        let again = ctx.reduce_by_key(mapped, Arc::new(sum), None, 0.02, "sum-again");
        out.extend(ctx.collect(again, "second"));
        out.sort_by(|a, b| a.key.cmp(&b.key));
        (
            format!("{out:?}"),
            format!("{:?}", ctx.all_stages()),
            ctx.fault_counters(),
        )
    };

    let plan = |text: &str| FaultPlan::from_text(text).expect("shipped plan parses");
    let (clean_out, clean_stages, _) = run(None);
    let (inert_out, inert_stages, _) = run(Some(FaultPlan::default()));
    let (smoke_out, _, smoke) = run(Some(plan(include_str!(
        "../../../../plans/plan_smoke.plan"
    ))));
    let (lossy_out, _, lossy) = run(Some(plan(include_str!(
        "../../../../plans/plan_lossy.plan"
    ))));
    vec![
        (
            "inert fault plan is bit-identical to no plan".to_string(),
            inert_out == clean_out && inert_stages == clean_stages,
        ),
        (
            format!(
                "smoke plan injects retries without moving results (retried={})",
                smoke.retried_tasks
            ),
            smoke.retried_tasks > 0 && smoke_out == clean_out,
        ),
        (
            format!(
                "lossy plan loses the node and recovers (lost={} recomputed={} rehomed={})",
                lossy.nodes_lost, lossy.recomputed_map_tasks, lossy.replica_rehomed_partitions
            ),
            lossy.nodes_lost == 1
                && lossy.recomputed_map_tasks + lossy.replica_rehomed_partitions > 0
                && lossy_out == clean_out,
        ),
    ]
}

/// Event-throughput floor for the netsim structures (events per second),
/// per the fig_scale contract: the indexed queue and the 1000-node flow
/// fabric must both sustain at least a million events per second or the
/// scale sweep stops being tractable.
const NETSIM_EVENTS_PER_SEC_FLOOR: f64 = 1e6;

/// Wall-clock budget for re-tuning the two 1000-node fig_scale cells.
/// The committed sweep covers 6/96/1000 nodes; perfgate re-runs only the
/// 1000-node pair, so this bounds the whole sweep at roughly 3x.
const SCALE_CELLS_BUDGET_SECS: f64 = 150.0;

/// The netsim / topology-sweep gate. Four floors:
///
/// 1. event-queue churn ≥ 1M events/s (interleaved push/pop, the exact
///    structure the 1000-node sweep's completion stream runs through);
/// 2. flow churn on the 1000-node rack fabric ≥ 1M events/s through the
///    max-min engine (schedules + pops, including rate-change
///    reschedules);
/// 3. both 1000-node fig_scale cells re-tune inside the wall-clock
///    budget, with the rack cell flipping at least one stage's choice —
///    the headline claim of the figure;
/// 4. the fresh cells reproduce `results/fig_scale.txt` verbatim
///    (whitespace-canonicalized rows) — a bit-identity floor proving
///    flat-topology output and the netsim-backed rack output match the
///    committed figures.
fn scale_gate() -> Vec<(String, bool)> {
    use bench::scale;

    let (qe, qs) = scale::queue_churn(4_000_000);
    let queue_rate = qe as f64 / qs.max(1e-9);
    let (fe, fs) = scale::fabric_churn(20_000);
    let fabric_rate = fe as f64 / fs.max(1e-9);

    eprintln!("[perfgate] re-tuning the 1000-node fig_scale cells (virtual clock)...");
    let start = std::time::Instant::now();
    let flat = scale::run_cell(1000, simcluster::Topology::Flat);
    let rack = scale::run_cell(1000, scale::rack_topology(1000));
    let elapsed = start.elapsed().as_secs_f64();

    let committed = std::fs::read_to_string("results/fig_scale.txt").unwrap_or_default();
    let committed_rows: std::collections::HashSet<String> = committed
        .lines()
        .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
        .collect();
    let canon = |cell: &scale::CellResult| {
        cell.row_cells()
            .join(" ")
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
    };
    let flipped = flat.decisions != rack.decisions;

    vec![
        (
            format!("netsim event-queue churn sustains >= 1M events/s ({queue_rate:.2e}/s)"),
            queue_rate >= NETSIM_EVENTS_PER_SEC_FLOOR,
        ),
        (
            format!("netsim 1000-node fabric churn sustains >= 1M events/s ({fabric_rate:.2e}/s)"),
            fabric_rate >= NETSIM_EVENTS_PER_SEC_FLOOR,
        ),
        (
            format!(
                "1000-node flat+rack cells re-tune in {elapsed:.1}s \
                 (budget {SCALE_CELLS_BUDGET_SECS:.0}s), rack flips a stage: {flipped}"
            ),
            elapsed <= SCALE_CELLS_BUDGET_SECS && flipped,
        ),
        (
            "fresh 1000-node cells match committed results/fig_scale.txt bit-identically"
                .to_string(),
            committed_rows.contains(&canon(&flat)) && committed_rows.contains(&canon(&rack)),
        ),
    ]
}

/// The adaptive-execution gate: the skewed-aggregation comparison is
/// virtual-clock deterministic, so the fresh report must match the
/// committed `results/BENCH_adaptive.json` byte for byte, on top of the
/// absolute floors ([`bench::adaptive::ADAPTIVE_SPEEDUP_FLOOR`]x
/// speedup, bit-identical output tables, split and replan both firing).
fn adaptive_gate() -> Vec<(String, bool)> {
    let committed = std::fs::read_to_string("results/BENCH_adaptive.json").unwrap_or_default();
    let fresh = bench::adaptive::measure_adaptive();
    bench::adaptive::adaptive_gate_checks(&committed, &fresh)
}

/// Hard floor on the fresh `pipeline_sql_join_e2e` speedup: the pipelined
/// shuffle must beat the barrier engine by at least this much end-to-end,
/// regardless of what the committed baseline says.
const PIPELINE_E2E_FLOOR: f64 = 1.3;

/// Hard floors on the columnar data plane: the vectorized fused chain and
/// the per-batch bucketize must beat their row-at-a-time counterparts by
/// at least this much, regardless of what the committed baseline says.
const COLUMNAR_FLOOR: f64 = 1.5;
const COLUMNAR_FLOOR_KERNELS: [&str; 2] = ["columnar_fused_chain", "columnar_bucketize"];

fn main() {
    let mut baseline_path = "results/BENCH_dataplane.json".to_string();
    let mut shuffle_baseline_path = "results/BENCH_shuffle_pipeline.json".to_string();
    let mut jobserver_baseline_path = "results/BENCH_jobserver.json".to_string();
    let mut tolerance = 0.15f64;
    let mut fresh_out: Option<String> = None;
    let mut shuffle_fresh_out: Option<String> = None;
    let mut jobserver_fresh_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--shuffle-baseline" => shuffle_baseline_path = value("--shuffle-baseline"),
            "--jobserver-baseline" => jobserver_baseline_path = value("--jobserver-baseline"),
            "--tolerance" => {
                let raw = value("--tolerance");
                tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --tolerance '{raw}' (fraction, e.g. 0.15)");
                    std::process::exit(2);
                });
            }
            "--fresh-out" => fresh_out = Some(value("--fresh-out")),
            "--shuffle-fresh-out" => shuffle_fresh_out = Some(value("--shuffle-fresh-out")),
            "--jobserver-fresh-out" => jobserver_fresh_out = Some(value("--jobserver-fresh-out")),
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!(
                    "usage: perfgate [--baseline FILE] [--shuffle-baseline FILE] \
                     [--jobserver-baseline FILE] [--tolerance F] [--fresh-out FILE] \
                     [--shuffle-fresh-out FILE] [--jobserver-fresh-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("error: --tolerance must be in [0, 1), got {tolerance}");
        std::process::exit(2);
    }

    let load = |path: &str| -> DataplaneReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: read baseline {path}: {e}");
            std::process::exit(2);
        });
        DataplaneReport::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&baseline_path);
    let shuffle_baseline = load(&shuffle_baseline_path);
    let jobserver_baseline = {
        let text = std::fs::read_to_string(&jobserver_baseline_path).unwrap_or_else(|e| {
            eprintln!("error: read baseline {jobserver_baseline_path}: {e}");
            std::process::exit(2);
        });
        JobserverReport::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {jobserver_baseline_path}: {e}");
            std::process::exit(2);
        })
    };

    eprintln!("[perfgate] measuring data-plane kernels (interleaved best-of-7, best of 2 runs)...");
    let fresh = best_fresh((0..2).map(|_| measure_dataplane()).collect());
    if let Some(path) = &fresh_out {
        std::fs::write(path, fresh.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    }
    eprintln!(
        "[perfgate] measuring shuffle-pipeline kernels (interleaved best-of-7, best of 2 runs)..."
    );
    let shuffle_fresh = best_fresh((0..2).map(|_| measure_shuffle_pipeline()).collect());
    if let Some(path) = &shuffle_fresh_out {
        std::fs::write(path, shuffle_fresh.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    }

    let mut checks = gate_checks(&baseline, &fresh, tolerance);
    checks.extend(gate_checks(&shuffle_baseline, &shuffle_fresh, tolerance));
    println!(
        "{:<36} {:>9} {:>9} {:>9}  verdict",
        "kernel", "baseline", "fresh", "floor"
    );
    let mut failed = false;
    for c in &checks {
        let fresh_cell = c
            .fresh_speedup
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "missing".to_string());
        println!(
            "{:<36} {:>8.2}x {:>9} {:>8.2}x  {}",
            c.name,
            c.baseline_speedup,
            fresh_cell,
            c.floor,
            if c.ok() { "ok" } else { "REGRESSED" }
        );
        failed |= !c.ok();
    }
    // The end-to-end pipelining win also has an absolute floor: whatever
    // the committed baseline says, `--pipeline on` must beat `--pipeline
    // off` by at least 1.3x on the SQL-join workload.
    let e2e = shuffle_fresh
        .kernel("pipeline_sql_join_e2e")
        .map(|k| k.speedup);
    let e2e_ok = matches!(e2e, Some(s) if s >= PIPELINE_E2E_FLOOR);
    println!(
        "{:<36} {:>8.2}x {:>9} {:>8.2}x  {}",
        "pipeline_sql_join_e2e (abs floor)",
        PIPELINE_E2E_FLOOR,
        e2e.map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "missing".to_string()),
        PIPELINE_E2E_FLOOR,
        if e2e_ok { "ok" } else { "REGRESSED" }
    );
    failed |= !e2e_ok;
    // So do the columnar data-plane wins: the vectorized fused chain and
    // the per-batch bucketize carry absolute 1.5x floors over the row path.
    for name in COLUMNAR_FLOOR_KERNELS {
        let got = fresh.kernel(name).map(|k| k.speedup);
        let ok = matches!(got, Some(s) if s >= COLUMNAR_FLOOR);
        println!(
            "{:<36} {:>8.2}x {:>9} {:>8.2}x  {}",
            format!("{name} (abs floor)"),
            COLUMNAR_FLOOR,
            got.map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "missing".to_string()),
            COLUMNAR_FLOOR,
            if ok { "ok" } else { "REGRESSED" }
        );
        failed |= !ok;
    }
    eprintln!("[perfgate] serving the multi-tenant contention sweep (virtual clock)...");
    // One run suffices: every figure is virtual-clock deterministic.
    let jobserver_fresh = measure_jobserver();
    if let Some(path) = &jobserver_fresh_out {
        std::fs::write(path, jobserver_fresh.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    }
    for (name, ok) in jobserver_gate_checks(&jobserver_baseline, &jobserver_fresh, tolerance) {
        println!("{:<80} {}", name, if ok { "ok" } else { "REGRESSED" });
        failed |= !ok;
    }
    eprintln!("[perfgate] checking memory-governance invariants...");
    for (name, ok) in mem_gate() {
        println!("{:<80} {}", name, if ok { "ok" } else { "VIOLATED" });
        failed |= !ok;
    }
    eprintln!("[perfgate] checking fault-recovery invariants...");
    for (name, ok) in fault_gate() {
        println!("{:<80} {}", name, if ok { "ok" } else { "VIOLATED" });
        failed |= !ok;
    }
    eprintln!("[perfgate] checking netsim throughput + fig_scale floors...");
    for (name, ok) in scale_gate() {
        println!("{:<80} {}", name, if ok { "ok" } else { "VIOLATED" });
        failed |= !ok;
    }
    eprintln!("[perfgate] re-running the adaptive-execution comparison (virtual clock)...");
    for (name, ok) in adaptive_gate() {
        println!("{:<80} {}", name, if ok { "ok" } else { "VIOLATED" });
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "perfgate: FAIL — a kernel or job-server figure regressed more than {:.0}% vs \
             {baseline_path} / {shuffle_baseline_path} / {jobserver_baseline_path}, or an \
             absolute pipeline/columnar/job-server floor was missed",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "perfgate: ok — all {} kernels within {:.0}% of {baseline_path} / {shuffle_baseline_path}",
        checks.len(),
        tolerance * 100.0
    );
}
