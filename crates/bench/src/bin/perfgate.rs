//! CI perf-regression gate over the data-plane kernels.
//!
//! ```text
//! cargo run --release -p bench --bin perfgate
//! cargo run --release -p bench --bin perfgate -- --baseline results/BENCH_dataplane.json \
//!     --tolerance 0.15 [--fresh-out results/BENCH_dataplane.fresh.json]
//! ```
//!
//! Re-measures the before/after kernels on this host and compares each
//! kernel's *speedup ratio* against the committed baseline. Ratios are
//! machine-portable (both sides of each ratio run on the same host), so
//! the gate works on heterogeneous CI runners where raw milliseconds
//! would not. Exits 1 if any kernel's fresh ratio falls more than the
//! tolerance (default 15%) below the baseline's.

use bench::report::{gate_checks, measure_dataplane, DataplaneReport};

fn main() {
    let mut baseline_path = "results/BENCH_dataplane.json".to_string();
    let mut tolerance = 0.15f64;
    let mut fresh_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--tolerance" => {
                let raw = value("--tolerance");
                tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --tolerance '{raw}' (fraction, e.g. 0.15)");
                    std::process::exit(2);
                });
            }
            "--fresh-out" => fresh_out = Some(value("--fresh-out")),
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: perfgate [--baseline FILE] [--tolerance F] [--fresh-out FILE]");
                std::process::exit(2);
            }
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("error: --tolerance must be in [0, 1), got {tolerance}");
        std::process::exit(2);
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("error: read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = DataplaneReport::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {baseline_path}: {e}");
        std::process::exit(2);
    });

    eprintln!("[perfgate] measuring data-plane kernels (best-of-5 per kernel)...");
    let fresh = measure_dataplane();
    if let Some(path) = &fresh_out {
        std::fs::write(path, fresh.to_json()).unwrap_or_else(|e| {
            eprintln!("error: write {path}: {e}");
            std::process::exit(2);
        });
    }

    let checks = gate_checks(&baseline, &fresh, tolerance);
    println!(
        "{:<36} {:>9} {:>9} {:>9}  verdict",
        "kernel", "baseline", "fresh", "floor"
    );
    let mut failed = false;
    for c in &checks {
        let fresh_cell = c
            .fresh_speedup
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "missing".to_string());
        println!(
            "{:<36} {:>8.2}x {:>9} {:>8.2}x  {}",
            c.name,
            c.baseline_speedup,
            fresh_cell,
            c.floor,
            if c.ok() { "ok" } else { "REGRESSED" }
        );
        failed |= !c.ok();
    }
    if failed {
        eprintln!(
            "perfgate: FAIL — a kernel regressed more than {:.0}% vs {baseline_path}",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "perfgate: ok — all {} kernels within {:.0}% of {baseline_path}",
        checks.len(),
        tolerance * 100.0
    );
}
