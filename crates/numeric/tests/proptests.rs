//! Property-based tests for the numeric substrate.

use numeric::{
    feature_vector, least_squares, percentile, solve_linear, FeatureScaler, Matrix, Reservoir,
    Summary, NUM_FEATURES,
};
use proptest::prelude::*;

/// Strategy: a diagonally-dominant square matrix (guaranteed non-singular)
/// plus a solution vector.
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let entry = -1.0..1.0f64;
    (
        proptest::collection::vec(proptest::collection::vec(entry.clone(), n), n),
        proptest::collection::vec(-10.0..10.0f64, n),
    )
        .prop_map(move |(mut rows, x)| {
            for (i, row) in rows.iter_mut().enumerate() {
                let off: f64 = row.iter().map(|v| v.abs()).sum();
                row[i] = off + 1.0; // strict diagonal dominance
            }
            (rows, x)
        })
}

proptest! {
    #[test]
    fn solve_roundtrips_dominant_systems((rows, x) in dominant_system(5)) {
        let a = Matrix::from_rows(&rows);
        let b = a.matvec(&x);
        let solved = solve_linear(&a, &b).expect("dominant systems are solvable");
        for (got, want) in solved.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }

    #[test]
    fn least_squares_recovers_noiseless_model(
        coeffs in proptest::collection::vec(-5.0..5.0f64, NUM_FEATURES),
        // observation grid large enough to be overdetermined and varied
        seeds in proptest::collection::vec((0.05..1.0f64, 0.05..1.0f64), 20..40)
    ) {
        let rows: Vec<Vec<f64>> = seeds.iter().map(|&(d, p)| feature_vector(d, p)).collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = rows.iter()
            .map(|r| r.iter().zip(&coeffs).map(|(a, b)| a * b).sum())
            .collect();
        let beta = least_squares(&x, &y).expect("fit should succeed");
        // The basis can be near-collinear on random grids, so compare
        // predictions rather than coefficients.
        for (row, want) in rows.iter().zip(&y) {
            let got: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            prop_assert!((got - want).abs() < 1e-4 * (1.0 + want.abs()),
                "prediction {got} vs {want}");
        }
    }

    #[test]
    fn transpose_is_involution(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0..100.0f64, 4), 1..8)) {
        let a = Matrix::from_rows(&rows);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associative_with_vector(
        rows in proptest::collection::vec(proptest::collection::vec(-3.0..3.0f64, 3), 3..6),
        v in proptest::collection::vec(-3.0..3.0f64, 3),
    ) {
        // (A * I) v == A v
        let a = Matrix::from_rows(&rows);
        let ai = a.matmul(&Matrix::identity(3));
        let lhs = ai.matvec(&v);
        let rhs = a.matvec(&v);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn summary_mean_is_bounded_by_extremes(values in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn summary_merge_equals_whole(
        values in proptest::collection::vec(-1e3..1e3f64, 2..100),
        split in 0usize..100,
    ) {
        let k = split % values.len();
        let mut a = Summary::of(&values[..k]);
        a.merge(&Summary::of(&values[k..]));
        let whole = Summary::of(&values);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4);
    }

    #[test]
    fn percentile_is_monotone(values in proptest::collection::vec(-1e3..1e3f64, 1..50)) {
        let p25 = percentile(&values, 0.25);
        let p50 = percentile(&values, 0.50);
        let p75 = percentile(&values, 0.75);
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn reservoir_size_invariant(cap in 1usize..64, n in 0usize..500, seed in any::<u64>()) {
        let mut r = Reservoir::new(cap, seed);
        for i in 0..n {
            r.offer(i);
        }
        prop_assert_eq!(r.items().len(), cap.min(n));
        prop_assert_eq!(r.seen(), n as u64);
        // every kept item must have actually been offered
        for &it in r.items() {
            prop_assert!(it < n);
        }
    }

    #[test]
    fn scaler_maps_training_points_into_unit_box(
        pts in proptest::collection::vec((1.0..1e9f64, 1.0..4096.0f64), 1..20)
    ) {
        let s = FeatureScaler::from_observations(&pts);
        for &(d, p) in &pts {
            let (ds, ps) = s.scale(d, p);
            prop_assert!(ds > 0.0 && ds <= 1.0 + 1e-12);
            prop_assert!(ps > 0.0 && ps <= 1.0 + 1e-12);
        }
    }
}
