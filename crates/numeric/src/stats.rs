//! Summary statistics used by the statistics collector and skew metrics.

/// Summary of a sample: count, mean, variance, extrema.
///
/// Built incrementally with Welford's online algorithm so it can be fed from
/// streaming task metrics without buffering.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Max/mean ratio — the skew metric CHOPPER uses to flag imbalanced
    /// partitionings (1.0 = perfectly balanced). Returns 1.0 when empty or
    /// when the mean is zero.
    pub fn skew(&self) -> f64 {
        let m = self.mean();
        if self.count == 0 || m == 0.0 {
            1.0
        } else {
            self.max / m
        }
    }

    /// Coefficient of variation (std-dev / mean), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }
}

/// Linear-interpolated percentile of a sample (`q` in `[0, 1]`).
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.skew(), 1.0);
    }

    #[test]
    fn merge_matches_single_pass() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut a = Summary::of(&all[..37]);
        let b = Summary::of(&all[37..]);
        a.merge(&b);
        let whole = Summary::of(&all);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn skew_flags_imbalance() {
        let balanced = Summary::of(&[10.0, 10.0, 10.0]);
        let skewed = Summary::of(&[1.0, 1.0, 28.0]);
        assert!((balanced.skew() - 1.0).abs() < 1e-12);
        assert!(skewed.skew() > 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 0.5);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        assert_eq!(Summary::of(&[5.0, 5.0, 5.0]).cv(), 0.0);
    }
}
