//! Deterministic reservoir sampling.
//!
//! Spark's range partitioner estimates key-range bounds by sampling the RDD
//! contents; our engine does the same. The sampler here is seeded explicitly
//! (an xorshift64* generator — no external RNG dependency) so partitioning
//! decisions, and therefore every experiment, are reproducible.

/// A fixed-capacity reservoir sampler (Vitter's Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
    rng: XorShift64,
}

impl<T> Reservoir<T> {
    /// Creates a reservoir that keeps at most `capacity` items, using the
    /// given RNG seed.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: XorShift64::new(seed),
        }
    }

    /// Offers one item to the reservoir.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Total number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The sampled items (at most `capacity`, in insertion/replacement order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the reservoir, returning the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// xorshift64* PRNG — tiny, fast, deterministic, good enough for sampling.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift; slight modulo bias is irrelevant for sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_when_under_capacity() {
        let mut r = Reservoir::new(10, 42);
        for i in 0..5 {
            r.offer(i);
        }
        assert_eq!(r.items(), &[0, 1, 2, 3, 4]);
        assert_eq!(r.seen(), 5);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = Reservoir::new(8, 7);
        for i in 0..1000 {
            r.offer(i);
        }
        assert_eq!(r.items().len(), 8);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(16, seed);
            for i in 0..500 {
                r.offer(i);
            }
            r.into_items()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn sample_is_roughly_uniform() {
        // Offer 0..10_000 into a reservoir of 1000; mean of the kept sample
        // should be near the population mean of ~5000.
        let mut r = Reservoir::new(1000, 12345);
        for i in 0..10_000u64 {
            r.offer(i as f64);
        }
        let mean: f64 = r.items().iter().sum::<f64>() / r.items().len() as f64;
        assert!(
            (mean - 5000.0).abs() < 500.0,
            "sample mean {mean} too far from 5000"
        );
    }

    #[test]
    fn xorshift_next_below_respects_bound() {
        let mut rng = XorShift64::new(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn xorshift_f64_in_unit_interval() {
        let mut rng = XorShift64::new(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: Reservoir<u32> = Reservoir::new(0, 1);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = XorShift64::new(0);
        // Must not get stuck at zero.
        assert_ne!(a.next_u64(), 0);
    }
}
