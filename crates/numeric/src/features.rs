//! The CHOPPER model feature basis.
//!
//! Paper Eq. 1 models stage execution time as
//! `t = a·D³ + b·D² + c·D + d·√D + e·P³ + f·P² + g·P + h·√P`
//! and Eq. 2 models shuffle volume with the same basis (different
//! coefficients). We add a constant intercept term, which the paper's
//! formulation absorbs into the coefficients; with it the fit degrades
//! gracefully for stages whose time is independent of `D` or `P`.
//!
//! Raw `D³` for multi-gigabyte inputs overflows the dynamic range that keeps
//! the normal equations well-conditioned, so callers fit in *scaled* space:
//! [`FeatureScaler`] maps `(D, P)` to dimensionless `(D/D₀, P/P₀)` before the
//! basis is expanded.

/// Number of features in the basis (8 paper terms + intercept).
pub const NUM_FEATURES: usize = 9;

/// Number of features in the extended basis ([`NUM_FEATURES`] plus the
/// `D/P`, `D·P`, and `D/√P` interaction terms).
pub const NUM_FEATURES_EXTENDED: usize = NUM_FEATURES + 3;

/// Human-readable names of the basis features, in `feature_vector` order.
pub fn feature_names() -> [&'static str; NUM_FEATURES] {
    [
        "D^3", "D^2", "D", "sqrt(D)", "P^3", "P^2", "P", "sqrt(P)", "1",
    ]
}

/// Expands `(d, p)` into the paper's feature basis (plus intercept).
///
/// `d` and `p` are expected to already be scaled to O(1) magnitudes; see
/// [`FeatureScaler`].
pub fn feature_vector(d: f64, p: f64) -> Vec<f64> {
    debug_assert!(
        d >= 0.0 && p >= 0.0,
        "sizes and partition counts are non-negative"
    );
    vec![
        d * d * d,
        d * d,
        d,
        d.sqrt(),
        p * p * p,
        p * p,
        p,
        p.sqrt(),
        1.0,
    ]
}

/// The paper basis extended with interaction terms. The additive Eq. 1–2
/// basis cannot express work-per-task (`D/P`) — the dominant term of any
/// embarrassingly parallel stage — so a model trained across input scales
/// systematically mispredicts the (large `D`, small `P`) corner. The three
/// cross terms fix that while keeping the fit linear.
pub fn extended_feature_vector(d: f64, p: f64) -> Vec<f64> {
    let mut f = feature_vector(d, p);
    let p_safe = p.max(1e-9);
    f.push(d / p_safe);
    f.push(d * p);
    f.push(d / p_safe.sqrt());
    f
}

/// Maps raw `(D, P)` observations into a dimensionless space where the
/// polynomial basis stays numerically tame.
///
/// The reference scales are chosen as the maximum observed `D` and `P`, so
/// all scaled training inputs lie in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureScaler {
    d_scale: f64,
    p_scale: f64,
}

impl FeatureScaler {
    /// Builds a scaler from raw training observations `(D, P)`.
    ///
    /// # Panics
    /// Panics if `points` is empty or contains non-positive entries.
    pub fn from_observations(points: &[(f64, f64)]) -> Self {
        assert!(!points.is_empty(), "need at least one observation");
        let mut d_max = 0.0_f64;
        let mut p_max = 0.0_f64;
        for &(d, p) in points {
            assert!(
                d > 0.0 && p > 0.0,
                "observations must be positive, got ({d}, {p})"
            );
            d_max = d_max.max(d);
            p_max = p_max.max(p);
        }
        FeatureScaler {
            d_scale: d_max,
            p_scale: p_max,
        }
    }

    /// A scaler with explicit reference scales.
    pub fn new(d_scale: f64, p_scale: f64) -> Self {
        assert!(d_scale > 0.0 && p_scale > 0.0, "scales must be positive");
        FeatureScaler { d_scale, p_scale }
    }

    /// Scales a raw `(D, P)` pair.
    pub fn scale(&self, d: f64, p: f64) -> (f64, f64) {
        (d / self.d_scale, p / self.p_scale)
    }

    /// Convenience: scaled feature vector for a raw `(D, P)` pair.
    pub fn features(&self, d: f64, p: f64) -> Vec<f64> {
        let (ds, ps) = self.scale(d, p);
        feature_vector(ds, ps)
    }

    /// Scaled extended feature vector (paper basis + interaction terms).
    pub fn extended_features(&self, d: f64, p: f64) -> Vec<f64> {
        let (ds, ps) = self.scale(d, p);
        extended_feature_vector(ds, ps)
    }

    /// The reference input-size scale.
    pub fn d_scale(&self) -> f64 {
        self.d_scale
    }

    /// The reference partition-count scale.
    pub fn p_scale(&self) -> f64 {
        self.p_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_has_expected_terms() {
        let f = feature_vector(2.0, 4.0);
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[0], 8.0); // D^3
        assert_eq!(f[1], 4.0); // D^2
        assert_eq!(f[2], 2.0); // D
        assert!((f[3] - 2.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(f[4], 64.0); // P^3
        assert_eq!(f[5], 16.0); // P^2
        assert_eq!(f[6], 4.0); // P
        assert_eq!(f[7], 2.0); // sqrt(P)
        assert_eq!(f[8], 1.0); // intercept
    }

    #[test]
    fn extended_basis_appends_interactions() {
        let f = extended_feature_vector(2.0, 4.0);
        assert_eq!(f.len(), NUM_FEATURES_EXTENDED);
        assert_eq!(f[9], 0.5); // D/P
        assert_eq!(f[10], 8.0); // D*P
        assert_eq!(f[11], 1.0); // D/sqrt(P)
        assert_eq!(&f[..NUM_FEATURES], &feature_vector(2.0, 4.0)[..]);
    }

    #[test]
    fn names_align_with_vector() {
        assert_eq!(feature_names().len(), NUM_FEATURES);
        assert_eq!(feature_names()[8], "1");
    }

    #[test]
    fn scaler_normalizes_max_to_one() {
        let s = FeatureScaler::from_observations(&[(10.0, 100.0), (20.0, 400.0)]);
        assert_eq!(s.scale(20.0, 400.0), (1.0, 1.0));
        assert_eq!(s.scale(10.0, 100.0), (0.5, 0.25));
    }

    #[test]
    fn scaler_features_are_bounded_for_training_points() {
        let pts = [(1.0e9, 100.0), (7.0e9, 500.0), (3.0e9, 300.0)];
        let s = FeatureScaler::from_observations(&pts);
        for &(d, p) in &pts {
            for v in s.features(d, p) {
                assert!((0.0..=1.0).contains(&v), "scaled feature {v} out of range");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_observations_panic() {
        let _ = FeatureScaler::from_observations(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_observation_panics() {
        let _ = FeatureScaler::from_observations(&[(0.0, 10.0)]);
    }
}
