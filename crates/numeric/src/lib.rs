//! Small, dependency-free numerical substrate for the CHOPPER reproduction.
//!
//! CHOPPER (CLUSTER 2016) models per-stage execution time and shuffle volume
//! as linear combinations of polynomial/sub-linear features of the input size
//! `D` and the partition count `P` (paper Eq. 1–2), fitted by least squares
//! over observations gathered from test runs. This crate provides exactly the
//! numerical machinery that requires:
//!
//! * [`matrix::Matrix`] — dense row-major matrices with the handful of
//!   operations the fitting pipeline needs,
//! * [`solve`] — Gaussian elimination with partial pivoting and
//!   (ridge-regularized) normal-equation least squares,
//! * [`features`] — the paper's 8-term feature basis over `(D, P)`,
//! * [`stats`] — summary statistics used by the statistics collector and the
//!   skew metrics,
//! * [`sample`] — deterministic reservoir sampling used by the range
//!   partitioner to estimate key-range bounds.
//!
//! Everything is deterministic and `f64`-based; no external linear-algebra
//! dependency is used.

pub mod features;
pub mod matrix;
pub mod sample;
pub mod solve;
pub mod stats;

pub use features::{
    extended_feature_vector, feature_names, feature_vector, FeatureScaler, NUM_FEATURES,
    NUM_FEATURES_EXTENDED,
};
pub use matrix::Matrix;
pub use sample::{Reservoir, XorShift64};
pub use solve::{least_squares, least_squares_ridge, r_squared, solve_linear, SolveError};
pub use stats::{percentile, Summary};
