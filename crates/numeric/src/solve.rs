//! Linear system solving and least-squares fitting.
//!
//! CHOPPER's per-stage models (paper Eq. 1–2) are linear in their nine
//! coefficients, so fitting reduces to an ordinary least-squares problem
//! `min ‖Xβ − y‖²`. We solve it through the normal equations
//! `(XᵀX + λI)β = Xᵀy` with a small ridge term `λ` available for the
//! ill-conditioned systems produced when only a handful of test-run
//! observations exist — exactly the regime the paper's "lightweight test
//! runs" operate in.

use crate::matrix::Matrix;

/// Errors from the direct solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (or numerically so) and no solution was found.
    Singular,
    /// Shapes of the inputs are inconsistent.
    ShapeMismatch,
    /// Fewer observations than required for the requested fit.
    NotEnoughObservations,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::ShapeMismatch => write!(f, "input shapes are inconsistent"),
            SolveError::NotEnoughObservations => {
                write!(f, "not enough observations for the requested fit")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the square system `a * x = b` by Gaussian elimination with partial
/// pivoting.
///
/// Returns `Err(SolveError::Singular)` when a pivot smaller than `1e-12`
/// relative to the largest element is encountered.
pub fn solve_linear(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    let scale = m.max_abs().max(1.0);
    let eps = 1e-12 * scale;

    for col in 0..n {
        // Partial pivot: largest |entry| in this column at or below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                m[(r1, col)]
                    .abs()
                    .partial_cmp(&m[(r2, col)].abs())
                    .expect("matrix entries must not be NaN")
            })
            .expect("non-empty range");
        if m[(pivot_row, col)].abs() < eps {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[(col, col)];
        for row in col + 1..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(row, c)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for c in row + 1..n {
            acc -= m[(row, c)] * x[c];
        }
        x[row] = acc / m[(row, row)];
    }
    Ok(x)
}

/// Ordinary least squares: finds `beta` minimizing `‖X·beta − y‖²`.
///
/// Falls back to a small ridge term when the normal equations are singular
/// (collinear features, too few observations), so the caller always gets a
/// usable — if regularized — model once `X` is non-empty.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, SolveError> {
    match least_squares_ridge(x, y, 0.0) {
        Ok(beta) => Ok(beta),
        Err(SolveError::Singular) => least_squares_ridge(x, y, 1e-6),
        Err(e) => Err(e),
    }
}

/// Ridge-regularized least squares: solves `(XᵀX + λI)β = Xᵀy`.
///
/// `lambda` must be non-negative. `lambda == 0` is ordinary least squares.
pub fn least_squares_ridge(x: &Matrix, y: &[f64], lambda: f64) -> Result<Vec<f64>, SolveError> {
    if x.rows() != y.len() {
        return Err(SolveError::ShapeMismatch);
    }
    if x.rows() == 0 {
        return Err(SolveError::NotEnoughObservations);
    }
    assert!(lambda >= 0.0, "ridge parameter must be non-negative");

    let xt = x.transpose();
    let mut xtx = xt.matmul(x);
    if lambda > 0.0 {
        // Scale the ridge with the magnitude of XᵀX so the regularization
        // strength is unit-free.
        let scaled = lambda * xtx.max_abs().max(1.0);
        for i in 0..xtx.rows() {
            xtx[(i, i)] += scaled;
        }
    }
    let xty = xt.matvec(y);
    solve_linear(&xtx, &xty)
}

/// Coefficient of determination (R²) of predictions against observations.
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean predictor. Returns 1.0 when `y` is constant and perfectly predicted,
/// 0.0 when constant and mispredicted.
pub fn r_squared(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len());
    if observed.is_empty() {
        return 1.0;
    }
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let ss_tot: f64 = observed.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(observed)
        .map(|(p, y)| (y - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} !~ {b:?}");
        }
    }

    #[test]
    fn solves_identity_system() {
        let a = Matrix::identity(3);
        let x = solve_linear(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn solves_known_2x2() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve_linear(&a, &[5.0, 1.0]).unwrap();
        assert_close(&x, &[2.0, 1.0], 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve_linear(&a, &[3.0, 4.0]).unwrap();
        assert_close(&x, &[4.0, 3.0], 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve_linear(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn shape_mismatch_reported() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            solve_linear(&a, &[0.0, 0.0]),
            Err(SolveError::ShapeMismatch)
        );
        assert_eq!(
            least_squares(&Matrix::zeros(2, 2), &[0.0; 3]),
            Err(SolveError::ShapeMismatch)
        );
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        assert_eq!(solve_linear(&Matrix::zeros(0, 0), &[]), Ok(vec![]));
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3 + 2t sampled at t = 0..5, X = [1, t]
        let rows: Vec<Vec<f64>> = (0..6).map(|t| vec![1.0, t as f64]).collect();
        let y: Vec<f64> = (0..6).map(|t| 3.0 + 2.0 * t as f64).collect();
        let beta = least_squares(&Matrix::from_rows(&rows), &y).unwrap();
        assert_close(&beta, &[3.0, 2.0], 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 1 + t with symmetric noise; OLS must land between.
        let rows = vec![
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
        ];
        let y = vec![0.9, 1.1, 2.9, 3.1];
        let beta = least_squares(&Matrix::from_rows(&rows), &y).unwrap();
        assert_close(&beta, &[1.0, 1.0], 1e-9);
    }

    #[test]
    fn collinear_features_fall_back_to_ridge() {
        // Second column duplicates the first: XᵀX singular, ridge kicks in.
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let beta = least_squares(&Matrix::from_rows(&rows), &[2.0, 4.0, 6.0]).unwrap();
        // Ridge splits the weight between the two identical columns; the
        // prediction is what matters.
        let pred = beta[0] + beta[1];
        assert!(
            (pred - 2.0).abs() < 1e-3,
            "prediction for x=1 should be ~2, got {pred}"
        );
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let rows: Vec<Vec<f64>> = (0..6).map(|t| vec![1.0, t as f64]).collect();
        let y: Vec<f64> = (0..6).map(|t| 3.0 + 2.0 * t as f64).collect();
        let x = Matrix::from_rows(&rows);
        let ols = least_squares_ridge(&x, &y, 0.0).unwrap();
        let ridge = least_squares_ridge(&x, &y, 0.5).unwrap();
        assert!(ridge[1].abs() < ols[1].abs());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let y = [1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean = [2.0, 2.0, 2.0];
        assert!(r_squared(&mean, &y).abs() < 1e-12);
    }

    #[test]
    fn no_observations_is_an_error() {
        assert_eq!(
            least_squares(&Matrix::zeros(0, 3), &[]),
            Err(SolveError::NotEnoughObservations)
        );
    }
}
