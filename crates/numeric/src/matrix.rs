//! Dense row-major `f64` matrices.
//!
//! Only the operations needed by the least-squares pipeline are implemented:
//! construction, indexing, transpose, matrix multiplication, and
//! matrix-vector products. Dimensions are checked with panics, matching the
//! convention of the standard library's slice indexing: shape errors are
//! programming errors, not recoverable conditions.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows are not all the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length does not match shape"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order: the innermost loop walks both `rhs` and `out`
        // contiguously, which matters once the observation matrices get wide.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]]);
        assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Matrix::from_rows(&[vec![1.0, -9.5], vec![3.0, 4.0]]);
        assert_eq!(a.max_abs(), 9.5);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn row_views_are_consistent_with_indexing() {
        let mut a = Matrix::zeros(2, 2);
        a.row_mut(1)[0] = 5.0;
        assert_eq!(a[(1, 0)], 5.0);
        assert_eq!(a.row(1), &[5.0, 0.0]);
    }
}
