//! The flow-level network simulator.
//!
//! A [`Network`] is a set of capacitated links and a set of *flows*, each
//! carrying a byte count over a fixed path of links. Bandwidth is shared
//! by progressive-filling **max-min fairness**: repeatedly find the most
//! contended link (smallest `capacity / flows` share), freeze every flow
//! crossing it at that share, subtract, and continue until every flow has
//! a rate. Rates are recomputed *event-driven* — on every flow arrival and
//! completion — never on a fixed tick, so an idle network costs nothing.
//!
//! Completions are tracked through an [`EventQueue`] with per-flow
//! generation counters: when a recomputation changes a flow's rate, its
//! old completion prediction becomes stale (the generation no longer
//! matches) and is skipped when popped. A flow whose rate did not change
//! keeps its prediction — under a constant rate the predicted completion
//! instant is a fixed point, so steady traffic does not churn the queue.
//!
//! Everything is deterministic: links and flows are iterated in id order,
//! the queue breaks time ties by insertion sequence, and the arithmetic
//! performs the same operations in the same order for identical call
//! sequences.

use crate::queue::EventQueue;

/// Index of a link within a [`Network`].
pub type LinkId = usize;
/// Index of a flow within a [`Network`].
pub type FlowId = usize;

struct Link {
    capacity: f64,
}

struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    last_update: f64,
    gen: u64,
    done: bool,
}

/// Lifetime counters, exposed for the perfgate throughput gate and the
/// repro figures.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetworkStats {
    /// Flows ever started.
    pub flows_started: u64,
    /// Flows that ran to completion.
    pub flows_completed: u64,
    /// Completion events scheduled (including ones later invalidated).
    pub events_scheduled: u64,
    /// Completion events popped (valid + stale).
    pub events_processed: u64,
    /// Max-min rate recomputations performed.
    pub recomputes: u64,
}

impl std::ops::AddAssign for NetworkStats {
    fn add_assign(&mut self, o: Self) {
        self.flows_started += o.flows_started;
        self.flows_completed += o.flows_completed;
        self.events_scheduled += o.events_scheduled;
        self.events_processed += o.events_processed;
        self.recomputes += o.recomputes;
    }
}

/// A deterministic flow-level network with max-min fair sharing.
pub struct Network {
    links: Vec<Link>,
    flows: Vec<Flow>,
    /// Active flow ids, kept sorted — the deterministic iteration order
    /// for rate assignment.
    active: Vec<FlowId>,
    completions: EventQueue<(FlowId, u64)>,
    now: f64,
    stats: NetworkStats,
    /// Recompute scratch (persistent so a 1000-link fabric does not pay
    /// five allocations plus an all-links sweep per event): remaining
    /// capacity and active-flow count per link, valid only for links in
    /// `touched`; `at_min` holds round stamps; `fixed`/`new_rate` are
    /// indexed by position in `active`.
    scratch: Scratch,
}

#[derive(Default)]
struct Scratch {
    cap: Vec<f64>,
    cnt: Vec<u32>,
    at_min: Vec<u64>,
    touched: Vec<LinkId>,
    work: Vec<usize>,
    new_rate: Vec<f64>,
    round: u64,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Self {
        Network {
            links: Vec::new(),
            flows: Vec::new(),
            active: Vec::new(),
            completions: EventQueue::new(),
            now: 0.0,
            stats: NetworkStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// Adds a link of `capacity` bytes/s. Infinite capacity is allowed —
    /// such a link never bottlenecks anything (the flat fabric).
    ///
    /// # Panics
    /// Panics on a zero, negative, or NaN capacity.
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        assert!(capacity > 0.0, "link capacity must be positive");
        self.links.push(Link { capacity });
        self.links.len() - 1
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Number of flows still transferring.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }

    /// The current max-min rate of a flow (0 once complete).
    pub fn rate_of(&self, flow: FlowId) -> f64 {
        if self.flows[flow].done {
            0.0
        } else {
            self.flows[flow].rate
        }
    }

    /// Moves the clock forward to `t` (between events). `t` must not skip
    /// past a pending completion.
    pub fn sync_to(&mut self, t: f64) {
        assert!(
            t >= self.now - 1e-12,
            "clock cannot rewind: {t} < {}",
            self.now
        );
        if let Some(next) = self.next_completion_time() {
            assert!(
                t <= next + 1e-9,
                "sync_to({t}) would skip a completion at {next}"
            );
        }
        self.now = self.now.max(t);
    }

    /// Starts a flow of `bytes` over `path` at the current time and
    /// returns its id. Rates of all active flows are recomputed.
    ///
    /// # Panics
    /// Panics on an empty path or a non-positive byte count.
    pub fn start_flow(&mut self, path: Vec<LinkId>, bytes: f64) -> FlowId {
        assert!(!path.is_empty(), "a flow needs at least one link");
        assert!(bytes > 0.0, "a flow needs a positive byte count");
        debug_assert!(path.iter().all(|&l| l < self.links.len()));
        let id = self.flows.len();
        self.flows.push(Flow {
            path,
            remaining: bytes,
            rate: -1.0, // sentinel: always differs from the first real rate
            last_update: self.now,
            gen: 0,
            done: false,
        });
        self.active.push(id); // ids are increasing, so `active` stays sorted
        self.stats.flows_started += 1;
        self.recompute();
        id
    }

    /// The time of the next genuine flow completion, if any flows are
    /// active. Stale predictions are discarded on the way.
    pub fn next_completion_time(&mut self) -> Option<f64> {
        self.skim_stale();
        self.completions.peek_time()
    }

    /// Pops the next completion: advances the clock to it, retires the
    /// flow, recomputes the survivors' rates, and returns `(time, flow)`.
    pub fn pop_completion(&mut self) -> Option<(f64, FlowId)> {
        self.skim_stale();
        let ev = self.completions.pop()?;
        self.stats.events_processed += 1;
        let (flow, _) = ev.item;
        self.now = self.now.max(ev.time);
        let f = &mut self.flows[flow];
        f.done = true;
        f.remaining = 0.0;
        f.rate = 0.0;
        let pos = self
            .active
            .binary_search(&flow)
            .expect("completed flow was active");
        self.active.remove(pos);
        self.stats.flows_completed += 1;
        self.recompute();
        Some((ev.time, flow))
    }

    /// Drops queued completion events whose generation no longer matches
    /// their flow (the rate changed after they were scheduled).
    fn skim_stale(&mut self) {
        while let Some((_, &(flow, gen))) = self.completions.peek() {
            let f = &self.flows[flow];
            if !f.done && f.gen == gen {
                return;
            }
            self.completions.pop();
            self.stats.events_processed += 1;
        }
    }

    /// Progressive-filling max-min fair rate assignment over the active
    /// flows, rescheduling completion predictions for flows whose rate
    /// changed.
    ///
    /// Only links actually crossed by an active flow are visited (a link
    /// nobody uses cannot bottleneck anyone), and all working storage is
    /// persistent scratch — on a rack fabric with a thousand NICs this is
    /// what keeps per-event cost proportional to the *traffic*, not the
    /// topology.
    fn recompute(&mut self) {
        self.stats.recomputes += 1;
        if self.active.is_empty() {
            return;
        }
        let s = &mut self.scratch;
        s.cap.resize(self.links.len(), 0.0);
        s.cnt.resize(self.links.len(), 0);
        s.at_min.resize(self.links.len(), 0);
        s.touched.clear();
        for &fid in &self.active {
            for &l in &self.flows[fid].path {
                if s.cnt[l] == 0 {
                    s.cap[l] = self.links[l].capacity;
                    s.touched.push(l);
                }
                s.cnt[l] += 1;
            }
        }

        s.new_rate.clear();
        s.new_rate.resize(self.active.len(), f64::INFINITY);
        s.work.clear();
        s.work.extend(0..self.active.len());
        while !s.work.is_empty() {
            // The most contended link determines this round's share.
            // Links drained of flows are compacted out of `touched` as
            // rounds proceed, and fixed flows out of `work`, so total
            // round cost shrinks with progress instead of rescanning
            // everything every time.
            let mut share = f64::INFINITY;
            for &l in &s.touched {
                share = share.min(s.cap[l] / s.cnt[l] as f64);
            }
            if !share.is_finite() {
                // Every remaining flow crosses only infinite links.
                break;
            }
            // Freeze every unfixed flow crossing a link at exactly that
            // share (identical links produce identical f64 shares, so a
            // homogeneous tier resolves in one round). The at-min set is
            // stamped before any subtraction, so later flows in the same
            // round see the same snapshot.
            s.round += 1;
            let round = s.round;
            for &l in &s.touched {
                if s.cap[l] / s.cnt[l] as f64 == share {
                    s.at_min[l] = round;
                }
            }
            let before = s.work.len();
            let mut work = std::mem::take(&mut s.work);
            work.retain(|&i| {
                let fid = self.active[i];
                if !self.flows[fid].path.iter().any(|&l| s.at_min[l] == round) {
                    return true;
                }
                s.new_rate[i] = share;
                for &l in &self.flows[fid].path {
                    s.cap[l] = (s.cap[l] - share).max(0.0);
                    s.cnt[l] -= 1;
                }
                false
            });
            s.work = work;
            let mut touched = std::mem::take(&mut s.touched);
            touched.retain(|&l| s.cnt[l] > 0);
            s.touched = touched;
            debug_assert!(
                s.work.len() < before,
                "each round must fix at least one flow"
            );
            if s.work.len() == before {
                break;
            }
        }

        // Apply: only flows whose rate changed get touched — a constant
        // rate keeps its completion prediction valid, so steady flows do
        // not churn the event queue.
        for (i, &fid) in self.active.iter().enumerate() {
            let new_rate = self.scratch.new_rate[i];
            let f = &mut self.flows[fid];
            if f.rate == new_rate {
                continue;
            }
            if f.rate > 0.0 && f.rate.is_finite() {
                f.remaining = (f.remaining - f.rate * (self.now - f.last_update)).max(0.0);
            }
            f.last_update = self.now;
            f.rate = new_rate;
            f.gen += 1;
            let eta = if f.rate.is_finite() {
                self.now + f.remaining / f.rate
            } else {
                self.now
            };
            self.completions.push(eta, (fid, f.gen));
            self.stats.events_scheduled += 1;
        }
    }

    /// Runs the network until every flow has completed, returning the
    /// completions in order.
    pub fn drain(&mut self) -> Vec<(f64, FlowId)> {
        let mut out = Vec::with_capacity(self.active.len());
        while let Some(done) = self.pop_completion() {
            out.push(done);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_runs_at_link_capacity() {
        let mut net = Network::new();
        let l = net.add_link(10.0);
        let f = net.start_flow(vec![l], 25.0);
        assert_eq!(net.rate_of(f), 10.0);
        let done = net.drain();
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn two_flows_split_a_link_evenly() {
        let mut net = Network::new();
        let l = net.add_link(10.0);
        let a = net.start_flow(vec![l], 10.0);
        let b = net.start_flow(vec![l], 10.0);
        assert_eq!(net.rate_of(a), 5.0);
        assert_eq!(net.rate_of(b), 5.0);
        let done = net.drain();
        assert!((done[0].0 - 2.0).abs() < 1e-12);
        assert!((done[1].0 - 2.0).abs() < 1e-12);
        // Equal completion times resolve in flow-start order.
        assert_eq!((done[0].1, done[1].1), (a, b));
    }

    #[test]
    fn late_arrival_slows_then_releases_bandwidth() {
        let mut net = Network::new();
        let l = net.add_link(10.0);
        let a = net.start_flow(vec![l], 20.0); // alone: done at t=2
        net.sync_to(1.0);
        let b = net.start_flow(vec![l], 5.0); // shares 5/5 from t=1
        assert_eq!(net.rate_of(a), 5.0);
        let (tb, fb) = net.pop_completion().unwrap();
        assert_eq!(fb, b);
        assert!((tb - 2.0).abs() < 1e-12, "5 bytes at rate 5 from t=1");
        // A had 10 left at t=1, ran at 5 until t=2 (5 left), then back to 10.
        assert_eq!(net.rate_of(a), 10.0);
        let (ta, fa) = net.pop_completion().unwrap();
        assert_eq!(fa, a);
        assert!((ta - 2.5).abs() < 1e-12);
    }

    #[test]
    fn max_min_redistributes_headroom() {
        // f1 on L1 only; f2 on L1+L2; f3 on L2 only. L2 (cap 2) is the
        // bottleneck: f2 = f3 = 1. Max-min then gives f1 the L1 headroom:
        // 10 - 1 = 9 — a plain equal-share split would cap it at 5.
        let mut net = Network::new();
        let l1 = net.add_link(10.0);
        let l2 = net.add_link(2.0);
        let f1 = net.start_flow(vec![l1], 9.0);
        let f2 = net.start_flow(vec![l1, l2], 100.0);
        let f3 = net.start_flow(vec![l2], 100.0);
        assert_eq!(net.rate_of(f2), 1.0);
        assert_eq!(net.rate_of(f3), 1.0);
        assert_eq!(net.rate_of(f1), 9.0);
        let (t, f) = net.pop_completion().unwrap();
        assert_eq!(f, f1);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_links_never_bottleneck() {
        let mut net = Network::new();
        let spine = net.add_link(f64::INFINITY);
        let nic = net.add_link(4.0);
        let f = net.start_flow(vec![spine, nic], 8.0);
        assert_eq!(net.rate_of(f), 4.0);
        let done = net.drain();
        assert!((done[0].0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_rack_fetches() {
        // Four host NICs of 10 behind an uplink of 10 (oversub 4): each
        // cross-rack flow gets 2.5, not its NIC's 10.
        let mut net = Network::new();
        let uplink = net.add_link(10.0);
        let nics: Vec<LinkId> = (0..4).map(|_| net.add_link(10.0)).collect();
        let flows: Vec<FlowId> = nics
            .iter()
            .map(|&n| net.start_flow(vec![uplink, n], 25.0))
            .collect();
        for &f in &flows {
            assert_eq!(net.rate_of(f), 2.5);
        }
        let done = net.drain();
        assert!(done.iter().all(|&(t, _)| (t - 10.0).abs() < 1e-12));
    }

    #[test]
    fn identical_runs_produce_identical_completion_sequences() {
        let run = || {
            let mut net = Network::new();
            let links: Vec<LinkId> = (0..8).map(|i| net.add_link(5.0 + (i % 3) as f64)).collect();
            let mut out = Vec::new();
            for i in 0..50 {
                net.start_flow(
                    vec![links[i % 8], links[(i * 3 + 1) % 8]],
                    10.0 + (i % 7) as f64,
                );
                if i % 5 == 4 {
                    out.push(net.pop_completion().unwrap());
                }
            }
            out.extend(net.drain());
            out
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "bit-identical times");
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn steady_flows_do_not_churn_the_queue() {
        let mut net = Network::new();
        let l = net.add_link(10.0);
        net.start_flow(vec![l], 100.0);
        let scheduled = net.stats().events_scheduled;
        // Adding and completing a flow on an unrelated link must not
        // reschedule the steady flow.
        let l2 = net.add_link(10.0);
        net.start_flow(vec![l2], 1.0);
        net.pop_completion();
        assert_eq!(
            net.stats().events_scheduled,
            scheduled + 1,
            "only the new flow gets a prediction"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Network::new().add_link(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_path_rejected() {
        let mut net = Network::new();
        net.start_flow(vec![], 1.0);
    }
}
