//! The indexed event queue.
//!
//! A thin wrapper over a binary heap that imposes the *total* order
//! `(time, seq)`: `seq` is a monotone counter stamped at push, so events
//! scheduled for the same instant pop in the order they were scheduled.
//! That tie-break is what makes simulations built on the queue
//! bit-deterministic — a plain `f64`-keyed heap reorders equal-time events
//! arbitrarily as the heap's internal layout shifts.
//!
//! Push and pop are `O(log n)`; the queue comfortably sustains millions of
//! events per second (the `perfgate` CI binary pins a ≥ 1M events/s floor
//! on a push/pop churn at simulation-realistic sizes).

use std::collections::BinaryHeap;

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduled<T> {
    /// The time the event was scheduled for.
    pub time: f64,
    /// Its sequence stamp: unique, increasing in push order.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

/// Heap entry. Ordering ignores the payload entirely: time first, then the
/// sequence stamp, both reversed so the `BinaryHeap` max-heap pops the
/// earliest event.
struct Entry<T> {
    time: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Finite times are enforced at push, so partial_cmp cannot fail.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with a stable `(time, seq)` tie-break.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    pushes: u64,
    pops: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// Schedules `item` at `time` and returns its sequence stamp.
    ///
    /// # Panics
    /// Panics on a non-finite time — NaN would poison the heap order.
    pub fn push(&mut self, time: f64, item: T) -> u64 {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushes += 1;
        self.heap.push(Entry { time, seq, item });
        seq
    }

    /// Removes and returns the earliest event (ties in push order).
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop().map(|e| {
            self.pops += 1;
            Scheduled {
                time: e.time,
                seq: e.seq,
                item: e.item,
            }
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event's time and payload, without removing it.
    pub fn peek(&self) -> Option<(f64, &T)> {
        self.heap.peek().map(|e| (e.time, &e.item))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushes
    }

    /// Total events popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.item)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(10.0, 'x');
        q.push(1.0, 'a');
        assert_eq!(q.pop().unwrap().item, 'a');
        q.push(5.0, 'm');
        q.push(5.0, 'n');
        assert_eq!(q.pop().unwrap().item, 'm');
        q.push(2.0, 'b');
        assert_eq!(q.pop().unwrap().item, 'b');
        assert_eq!(q.pop().unwrap().item, 'n');
        assert_eq!(q.pop().unwrap().item, 'x');
        assert!(q.pop().is_none());
    }

    #[test]
    fn counters_track_lifetime_totals() {
        let mut q = EventQueue::new();
        q.push(1.0, ());
        q.push(2.0, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }
}
