//! Deterministic flow-level network simulation.
//!
//! The crate has three layers, each usable on its own:
//!
//! * [`queue`] — an indexed event queue ordered by `(time, seq)`: events at
//!   equal times pop in insertion order, making every simulation built on
//!   it bit-deterministic. The queue is a binary heap and stays fast at
//!   millions of events.
//! * [`topology`] — hierarchical cluster topology descriptions: `flat`
//!   (every NIC wired to a non-blocking fabric, the historical model) and
//!   `rack:<racks>x<hosts>[:oversub]` (host NIC → ToR → spine, with the
//!   rack uplink/downlink capacity oversubscribed by the given factor).
//! * [`flow`] — a flow-level network: links with capacities, flows with
//!   byte counts routed over link paths, and progressive-filling max-min
//!   fair bandwidth sharing recomputed event-driven on every flow arrival
//!   and completion.
//!
//! Time is a dimensionless `f64` of seconds; bytes are `f64` so rates
//! divide exactly. Nothing in the crate consults a wall clock, a random
//! number generator, or iteration order of a hash map — two identical call
//! sequences produce bit-identical event sequences.

pub mod flow;
pub mod queue;
pub mod topology;

pub use flow::{FlowId, LinkId, Network, NetworkStats};
pub use queue::EventQueue;
pub use topology::{Topology, TopologyParseError};
