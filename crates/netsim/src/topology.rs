//! Hierarchical cluster topology descriptions.
//!
//! Two shapes cover the repo's needs:
//!
//! * [`Topology::Flat`] — the historical model: every NIC hangs off a
//!   non-blocking fabric, so the only network constraints are the two
//!   endpoints' NICs. This is the default, and simulations under it must
//!   be bit-identical to the pre-topology code.
//! * [`Topology::Rack`] — a two-tier leaf/spine: hosts are grouped into
//!   racks of `hosts` machines behind a ToR switch whose uplink into the
//!   (non-blocking) spine carries `hosts × NIC / oversub` in each
//!   direction. `oversub` is the usual oversubscription factor: 1.0 is a
//!   full-bisection fabric, 4.0 means four hosts' worth of traffic
//!   compete for one host's worth of core bandwidth.
//!
//! The textual form is the CLI syntax: `flat` or
//! `rack:<racks>x<hosts>[:oversub]`, e.g. `rack:8x12:4`. Parsing is
//! strict — malformed specs are rejected with a message naming the
//! offending part, so a typo dies at argument-parse time rather than
//! producing a silently flat cluster.

use serde::{Deserialize, Json, Serialize};
use std::fmt;
use std::str::FromStr;

/// A cluster network topology.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Topology {
    /// Non-blocking fabric: NICs are the only constraint.
    #[default]
    Flat,
    /// Two-tier leaf/spine with oversubscribed rack uplinks.
    Rack {
        /// Number of racks.
        racks: usize,
        /// Hosts per rack.
        hosts: usize,
        /// Oversubscription factor (≥ 1.0): the rack uplink carries
        /// `hosts × NIC / oversub` each way.
        oversub: f64,
    },
}

/// Why a topology spec string failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyParseError(pub String);

impl fmt::Display for TopologyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad topology spec: {} (expected `flat` or `rack:<racks>x<hosts>[:oversub]`)",
            self.0
        )
    }
}

impl std::error::Error for TopologyParseError {}

impl FromStr for Topology {
    type Err = TopologyParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "flat" {
            return Ok(Topology::Flat);
        }
        let Some(rest) = s.strip_prefix("rack:") else {
            return Err(TopologyParseError(format!("unknown topology '{s}'")));
        };
        let (grid, oversub) = match rest.split_once(':') {
            None => (rest, 1.0),
            Some((grid, o)) => {
                let oversub: f64 = o
                    .parse()
                    .map_err(|_| TopologyParseError(format!("oversub '{o}' is not a number")))?;
                if !oversub.is_finite() || oversub < 1.0 {
                    return Err(TopologyParseError(format!(
                        "oversub must be a finite factor >= 1, got '{o}'"
                    )));
                }
                (grid, oversub)
            }
        };
        let Some((r, h)) = grid.split_once('x') else {
            return Err(TopologyParseError(format!(
                "'{grid}' is not of the form <racks>x<hosts>"
            )));
        };
        let racks: usize = r
            .parse()
            .map_err(|_| TopologyParseError(format!("rack count '{r}' is not an integer")))?;
        let hosts: usize = h
            .parse()
            .map_err(|_| TopologyParseError(format!("host count '{h}' is not an integer")))?;
        if racks == 0 || hosts == 0 {
            return Err(TopologyParseError(format!(
                "rack grid {racks}x{hosts} must be at least 1x1"
            )));
        }
        Ok(Topology::Rack {
            racks,
            hosts,
            oversub,
        })
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Flat => write!(f, "flat"),
            Topology::Rack {
                racks,
                hosts,
                oversub,
            } => write!(f, "rack:{racks}x{hosts}:{oversub}"),
        }
    }
}

// The spec is carried inside `ClusterSpec` JSON as its textual form; the
// vendored serde derive only handles named-field structs and fieldless
// enums, and the string form round-trips exactly (usize and a `{}`-printed
// f64 both reparse to the same value).
impl Serialize for Topology {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for Topology {
    fn from_json(v: &Json) -> Result<Self, serde::Error> {
        match v {
            Json::Str(s) => s.parse().map_err(|e: TopologyParseError| serde::Error(e.0)),
            other => Err(serde::Error::expected("topology string", other)),
        }
    }
}

impl Topology {
    /// Whether this is the non-blocking flat fabric.
    pub fn is_flat(&self) -> bool {
        matches!(self, Topology::Flat)
    }

    /// Number of racks (1 for flat).
    pub fn num_racks(&self) -> usize {
        match self {
            Topology::Flat => 1,
            Topology::Rack { racks, .. } => *racks,
        }
    }

    /// The rack a node lives in: nodes fill racks in id order.
    pub fn rack_of(&self, node: usize) -> usize {
        match self {
            Topology::Flat => 0,
            Topology::Rack { racks, hosts, .. } => (node / hosts).min(racks - 1),
        }
    }

    /// Whether the rack grid has room for `nodes` hosts.
    pub fn covers(&self, nodes: usize) -> bool {
        match self {
            Topology::Flat => true,
            Topology::Rack { racks, hosts, .. } => racks.saturating_mul(*hosts) >= nodes,
        }
    }

    /// Capacity of one rack's uplink (and downlink) in bytes/s, given the
    /// per-host NIC bandwidth.
    pub fn uplink_capacity(&self, nic_bandwidth: f64) -> f64 {
        match self {
            Topology::Flat => f64::INFINITY,
            Topology::Rack { hosts, oversub, .. } => *hosts as f64 * nic_bandwidth / oversub,
        }
    }

    /// The effective bandwidth one host can count on for cross-rack
    /// traffic when every host in the rack competes for the uplink:
    /// `NIC / oversub` under a rack topology, the NIC itself when flat.
    pub fn cross_rack_bandwidth(&self, nic_bandwidth: f64) -> f64 {
        match self {
            Topology::Flat => nic_bandwidth,
            Topology::Rack { oversub, .. } => nic_bandwidth / oversub,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_and_rack_forms() {
        assert_eq!("flat".parse::<Topology>().unwrap(), Topology::Flat);
        assert_eq!(
            "rack:8x12".parse::<Topology>().unwrap(),
            Topology::Rack {
                racks: 8,
                hosts: 12,
                oversub: 1.0
            }
        );
        assert_eq!(
            "rack:25x40:4.5".parse::<Topology>().unwrap(),
            Topology::Rack {
                racks: 25,
                hosts: 40,
                oversub: 4.5
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "Flat",
            "rack",
            "rack:",
            "rack:8",
            "rack:x12",
            "rack:8x",
            "rack:0x4",
            "rack:4x0",
            "rack:ax4",
            "rack:4xb",
            "rack:8x12:",
            "rack:8x12:zero",
            "rack:8x12:0.5",
            "rack:8x12:-1",
            "rack:8x12:inf",
            "mesh:4x4",
        ] {
            assert!(bad.parse::<Topology>().is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn display_round_trips() {
        for t in [
            Topology::Flat,
            Topology::Rack {
                racks: 8,
                hosts: 12,
                oversub: 4.0,
            },
            Topology::Rack {
                racks: 25,
                hosts: 40,
                oversub: 2.5,
            },
        ] {
            assert_eq!(t.to_string().parse::<Topology>().unwrap(), t);
        }
    }

    #[test]
    fn serde_round_trips_through_string_form() {
        let t = Topology::Rack {
            racks: 3,
            hosts: 2,
            oversub: 4.0,
        };
        assert_eq!(Topology::from_json(&t.to_json()).unwrap(), t);
        assert!(Topology::from_json(&Json::Int(3)).is_err());
    }

    #[test]
    fn rack_membership_fills_in_id_order() {
        let t = Topology::Rack {
            racks: 3,
            hosts: 2,
            oversub: 1.0,
        };
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(1), 0);
        assert_eq!(t.rack_of(2), 1);
        assert_eq!(t.rack_of(5), 2);
        // Nodes past the grid clamp into the last rack rather than index
        // out of range — `covers` is the caller's guard.
        assert_eq!(t.rack_of(7), 2);
        assert!(t.covers(6));
        assert!(!t.covers(7));
        assert!(Topology::Flat.covers(10_000));
    }

    #[test]
    fn bandwidth_helpers_apply_oversubscription() {
        let t = Topology::Rack {
            racks: 8,
            hosts: 12,
            oversub: 4.0,
        };
        let nic = 1.25e9;
        assert!((t.uplink_capacity(nic) - 12.0 * nic / 4.0).abs() < 1e-6);
        assert!((t.cross_rack_bandwidth(nic) - nic / 4.0).abs() < 1e-6);
        assert_eq!(Topology::Flat.cross_rack_bandwidth(nic), nic);
        assert!(Topology::Flat.uplink_capacity(nic).is_infinite());
    }
}
