//! Property-based tests for the netsim event queue and flow network.
//!
//! Two invariants the whole subsystem rests on:
//!
//! 1. The queue's pop sequence is the total order `(time, seq)` regardless
//!    of how pushes and pops interleave — equal-time events never reorder.
//! 2. A million-event churn is deterministic: two identical runs produce
//!    bit-identical pop sequences.

use netsim::{EventQueue, Network};
use proptest::prelude::*;

/// A random interleaving of pushes (time drawn from a coarse grid so time
/// collisions are frequent) and pops.
fn arb_ops() -> impl Strategy<Value = Vec<Option<f64>>> {
    proptest::collection::vec(
        proptest::option::of((0u64..40).prop_map(|t| t as f64 * 0.25)),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replaying any interleaved push/pop script, every pop returns the
    /// `(time, seq)`-minimal pending event: times never decrease between
    /// consecutive pops of the same pending set, and equal times pop in
    /// push order.
    #[test]
    fn pops_follow_the_total_order(ops in arb_ops()) {
        let mut q = EventQueue::new();
        // Mirror of the queue's pending set, kept brute-force sorted.
        let mut pending: Vec<(f64, u64)> = Vec::new();
        for op in ops {
            match op {
                Some(time) => {
                    let seq = q.push(time, ());
                    pending.push((time, seq));
                }
                None => {
                    let got = q.pop();
                    let want = pending
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
                        })
                        .map(|(i, _)| i);
                    match (got, want) {
                        (Some(s), Some(i)) => {
                            let (time, seq) = pending.remove(i);
                            prop_assert_eq!(s.time.to_bits(), time.to_bits());
                            prop_assert_eq!(s.seq, seq);
                        }
                        (None, None) => {}
                        (g, w) => panic!("queue/model disagree: {g:?} vs {w:?}"),
                    }
                }
            }
        }
        prop_assert_eq!(q.len(), pending.len());
    }

    /// Sequence stamps are unique and increase monotonically in push
    /// order, so they are a valid tie-break.
    #[test]
    fn seq_stamps_are_monotone(times in proptest::collection::vec(0.0f64..10.0, 1..200)) {
        let mut q = EventQueue::new();
        let mut last = None;
        for t in times {
            let seq = q.push(t, ());
            if let Some(prev) = last {
                prop_assert!(seq > prev);
            }
            last = Some(seq);
        }
    }
}

/// Deterministic xorshift64* — the churn driver needs reproducible
/// pseudo-random times without touching any global RNG.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn time(&mut self) -> f64 {
        // Coarse grid: ~6% of pushes collide with an existing time.
        (self.next() % 65_536) as f64 * 0.125
    }
}

/// One million events through the queue, popped in blocks, hashing the
/// `(time-bits, seq)` pop sequence. Runs twice; the digests must match
/// exactly. This is the same churn shape `perfgate` holds to ≥ 1M
/// events/s.
#[test]
fn million_event_churn_is_deterministic() {
    fn churn() -> (u64, u64) {
        let mut q = EventQueue::with_capacity(1 << 16);
        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |time: f64, seq: u64| {
            for word in [time.to_bits(), seq] {
                digest ^= word;
                digest = digest.wrapping_mul(0x1000_0000_01b3);
            }
        };
        const TOTAL: u64 = 1_000_000;
        let mut pushed = 0u64;
        while pushed < TOTAL || !q.is_empty() {
            // Push a burst, then drain roughly half the backlog.
            let burst = 64.min(TOTAL - pushed);
            for _ in 0..burst {
                q.push(rng.time(), pushed);
                pushed += 1;
            }
            let drain = if pushed < TOTAL { q.len() / 2 } else { q.len() };
            for _ in 0..drain {
                let ev = q.pop().expect("backlog is non-empty");
                fold(ev.time, ev.seq);
            }
        }
        assert_eq!(q.total_pushed(), TOTAL);
        assert_eq!(q.total_popped(), TOTAL);
        (digest, q.total_popped())
    }
    let (d1, n1) = churn();
    let (d2, n2) = churn();
    assert_eq!(n1, n2);
    assert_eq!(d1, d2, "identical churns must pop identical sequences");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flow-level conservation: on a single shared link, every flow's
    /// completion time matches a brute-force fluid re-simulation, and the
    /// link is never oversubscribed.
    #[test]
    fn shared_link_completions_match_fluid_model(
        sizes in proptest::collection::vec(0.5f64..50.0, 1..12),
    ) {
        let cap = 10.0;
        let mut net = Network::new();
        let link = net.add_link(cap);
        for &s in &sizes {
            net.start_flow(vec![link], s);
        }
        let done = {
            let mut out = Vec::new();
            while let Some(c) = net.pop_completion() {
                out.push(c);
            }
            out
        };
        prop_assert_eq!(done.len(), sizes.len());

        // Fluid model: equal shares; smallest remaining finishes first.
        let mut remaining: Vec<(usize, f64)> =
            sizes.iter().copied().enumerate().collect();
        let mut now = 0.0;
        let mut expect: Vec<(f64, usize)> = Vec::new();
        while !remaining.is_empty() {
            let share = cap / remaining.len() as f64;
            let (pos, &(id, rem)) = remaining
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
                .unwrap();
            let dt = rem / share;
            now += dt;
            for (_, r) in remaining.iter_mut() {
                *r -= share * dt;
            }
            expect.push((now, id));
            remaining.remove(pos);
        }
        for ((t, f), (te, fe)) in done.iter().zip(&expect) {
            prop_assert_eq!(*f, *fe);
            prop_assert!((t - te).abs() < 1e-6 * te.max(1.0),
                "completion {} at {} vs fluid {}", f, t, te);
        }
    }
}
