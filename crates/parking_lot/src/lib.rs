//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `parking_lot` it uses: `Mutex` and `RwLock` with the
//! non-poisoning `lock()` / `read()` / `write()` API. Backed by `std::sync`
//! primitives; a poisoned lock (a panic while held) is re-entered rather
//! than propagated, matching `parking_lot` semantics closely enough for
//! this codebase, which never relies on poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose accessors return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unwraps() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
