//! The multi-tenant job server: bounded-queue admission, weighted-fair
//! (start-time fair queueing) or FIFO dispatch, tenant-scoped memory
//! budgets, and a deterministic fluid contention model.
//!
//! # Two clocks, one more time
//!
//! The engine already splits *data* (real, host threads) from *timing*
//! (virtual cluster). The server adds a third layer with the same split:
//! jobs **execute** for real on tenant contexts sharing one host worker
//! pool, but **when** they dispatch and complete is decided on the
//! server's own virtual clock by a fluid processor-sharing model fed with
//! each job's uncontended service time and core demand. Scheduling state
//! (virtual time, fair tags, queue contents, the memory ledger) is keyed
//! only on trace content — never on host timing — so a fixed trace + seed
//! replays bit-identically regardless of worker count, pipeline/batch
//! mode, or how tenant executions physically interleave.
//!
//! # Scheduling
//!
//! * **Admission**: arrivals enter a bounded server-wide queue
//!   (per-tenant FIFO order is preserved); overflow is rejected.
//! * **Dispatch** fills `slots` concurrently-running jobs. `Policy::Fair`
//!   implements start-time fair queueing over tenant flows: a job's start
//!   tag is `max(v, tenant finish tag)`, the smallest tag dispatches
//!   first, and the tenant's finish tag advances by `service /
//!   weight` — so a tenant's backlog cannot starve light tenants.
//!   `Policy::Fifo` dispatches strictly by arrival time.
//! * **Memory**: dispatch must first reserve the job's (deterministic,
//!   pre-execution) memory demand from the tenant's
//!   [`memman::TenantLedger`] budget — a per-tenant guarantee plus a
//!   shared overflow pool. Denied reservations stall the job without
//!   blocking other tenants.
//! * **Contention**: running jobs share the virtual cluster's cores by
//!   weighted water-filling; a job's progress rate is capped at 1 (its
//!   solo speed) and shrinks when demand exceeds capacity.

use std::sync::Arc;

use engine::{EngineOptions, FaultPlan, WorkerPool};
use memman::TenantLedger;
use serde::{Deserialize, Serialize};
use trace::{pids, ArgValue, Clock, TraceSink, Track};

use crate::jobs::{mem_demand, JobOutcome, TenantRuntime};
use crate::trace_file::JobTrace;

/// Dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Start-time fair queueing over tenant flows, weighted.
    Fair,
    /// Strict arrival order, tenants undifferentiated.
    Fifo,
}

impl Policy {
    /// Parses the CLI token.
    pub fn parse(s: &str) -> Result<Policy, String> {
        match s {
            "fair" => Ok(Policy::Fair),
            "fifo" => Ok(Policy::Fifo),
            other => Err(format!("unknown policy '{other}' (expected fair|fifo)")),
        }
    }

    /// The CLI token.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Fair => "fair",
            Policy::Fifo => "fifo",
        }
    }
}

/// How tenant executions physically interleave on the host. Purely a
/// host-side choice — reports are bit-identical across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interleave {
    /// Execute each job inline at its dispatch point, one at a time.
    Serial,
    /// Pre-execute every tenant's job stream on its own OS thread, all
    /// tenants concurrently on the shared pool; the scheduler then
    /// consumes recorded outcomes. Requires `queue_cap >= jobs` (a
    /// rejected job must not execute).
    TenantThreads,
}

/// Server configuration.
pub struct ServerConfig {
    /// Dispatch policy.
    pub policy: Policy,
    /// Concurrent running-job slots.
    pub slots: usize,
    /// Bounded admission-queue capacity (queued, not yet dispatched).
    pub queue_cap: usize,
    /// Shared memory overflow pool in bytes.
    pub mem_shared: u64,
    /// Default per-tenant memory guarantee (a trace `tenant ... mem`
    /// clause overrides it).
    pub mem_guarantee: u64,
    /// Engine options for every tenant context (cluster, workers,
    /// pipeline/batch, parallelism). `shared_pool` is overwritten by the
    /// server.
    pub engine: EngineOptions,
    /// Host-side execution interleaving.
    pub interleave: Interleave,
    /// Server-level trace sink (queue depth, per-job spans).
    pub trace: TraceSink,
    /// Fault plans by tenant name — that tenant's context runs with
    /// deterministic fault injection enabled.
    pub fault_plans: Vec<(String, FaultPlan)>,
}

/// Engine defaults tuned for many small jobs: modest parallelism and
/// small blocks so a scale-0.1 job still has a few tasks per stage.
pub fn server_engine_defaults() -> EngineOptions {
    EngineOptions {
        default_parallelism: 12,
        block_size: 256 * 1024,
        ..EngineOptions::default()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            policy: Policy::Fair,
            slots: 8,
            queue_cap: 1024,
            mem_shared: 1 << 30,
            mem_guarantee: 256 << 20,
            engine: server_engine_defaults(),
            interleave: Interleave::TenantThreads,
            trace: TraceSink::disabled(),
            fault_plans: Vec::new(),
        }
    }
}

/// One completed job's row in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRow {
    /// Trace job id.
    pub id: usize,
    /// Tenant name.
    pub tenant: String,
    /// Workload kind token.
    pub kind: String,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Dispatch time (virtual seconds).
    pub dispatched: f64,
    /// Completion time (virtual seconds).
    pub completed: f64,
    /// `completed - arrival`.
    pub latency: f64,
    /// Result-table row count.
    pub rows: usize,
    /// FNV-1a fingerprint of the result table.
    pub hash: u64,
    /// Whether the tenant's dataset cache served this job's sources.
    pub cache_hit: bool,
}

/// The server's run report. Every field derives from trace content and
/// virtual time only, so it is bit-identical across host configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Dispatch policy token.
    pub policy: String,
    /// Running-job slots.
    pub slots: usize,
    /// Tenant count.
    pub tenants: usize,
    /// Jobs in the trace.
    pub total_jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs rejected at the bounded queue.
    pub rejected: Vec<usize>,
    /// Dispatch attempts stalled by a denied memory reservation.
    pub mem_stalls: u64,
    /// Dataset-cache hits across all tenants.
    pub cache_hits: u64,
    /// Fault-injection events across all tenant contexts.
    pub faults_injected: u64,
    /// Median job latency (virtual seconds).
    pub p50_latency: f64,
    /// 99th-percentile job latency (virtual seconds).
    pub p99_latency: f64,
    /// 99th-percentile latency over *interactive* tenants only — tenants
    /// whose weight exceeds the trace's minimum weight (all tenants when
    /// weights are uniform). This is the multi-tenancy headline: fair
    /// scheduling protects it from a batch tenant's backlog, at the
    /// deliberate cost of the batch tenant's own tail (which dominates
    /// `p99_latency`).
    pub p99_interactive: f64,
    /// Completed jobs per virtual second of makespan.
    pub throughput: f64,
    /// Last completion time (virtual seconds).
    pub makespan: f64,
    /// Per-job rows, in trace order (rejected jobs absent).
    pub per_job: Vec<JobRow>,
}

impl ServeReport {
    /// Parses the JSON rendering.
    pub fn parse(text: &str) -> Result<ServeReport, String> {
        serde_json::from_str(text).map_err(|e| format!("parse serve report: {e}"))
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Policy-independent result-table fingerprint: one line per job with
    /// its rows and hash. CI compares this text across schedulers,
    /// pipeline/batch modes, and worker counts — it must be identical as
    /// long as the same jobs ran.
    pub fn tables_text(&self) -> String {
        let mut out = String::new();
        for row in &self.per_job {
            out.push_str(&format!(
                "job {} tenant {} kind {} rows {} hash {:016x}\n",
                row.id, row.tenant, row.kind, row.rows, row.hash
            ));
        }
        for id in &self.rejected {
            out.push_str(&format!("job {id} rejected\n"));
        }
        out
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "job server: policy={} slots={} tenants={} jobs={}\n",
            self.policy, self.slots, self.tenants, self.total_jobs
        ));
        out.push_str(&format!(
            "  completed={} rejected={} mem_stalls={} cache_hits={} faults={}\n",
            self.completed,
            self.rejected.len(),
            self.mem_stalls,
            self.cache_hits,
            self.faults_injected
        ));
        out.push_str(&format!(
            "  p50={:.3}s p99={:.3}s p99_interactive={:.3}s throughput={:.3} jobs/s makespan={:.3}s\n",
            self.p50_latency,
            self.p99_latency,
            self.p99_interactive,
            self.throughput,
            self.makespan
        ));
        out.push_str(&format!(
            "  {:>4} {:>8} {:>10} {:>9} {:>10} {:>10} {:>9} {:>6} {:>5}\n",
            "id", "tenant", "kind", "arrive", "dispatch", "complete", "latency", "rows", "cache"
        ));
        for row in &self.per_job {
            out.push_str(&format!(
                "  {:>4} {:>8} {:>10} {:>9.3} {:>10.3} {:>10.3} {:>9.3} {:>6} {:>5}\n",
                row.id,
                row.tenant,
                row.kind,
                row.arrival,
                row.dispatched,
                row.completed,
                row.latency,
                row.rows,
                if row.cache_hit { "hit" } else { "miss" }
            ));
        }
        for id in &self.rejected {
            out.push_str(&format!("  {id:>4} rejected (queue full)\n"));
        }
        out
    }
}

/// A job currently occupying a slot in the fluid model.
struct Running {
    id: usize,
    tenant: usize,
    /// Remaining service in solo-seconds.
    remaining: f64,
    /// Core demand while running.
    cores: f64,
    /// Progress rate in solo-seconds per virtual second (0, 1].
    speed: f64,
    dispatched: f64,
    mem: u64,
    outcome: JobOutcome,
}

/// Per-tenant flow state.
struct Flow {
    /// Queued job ids, arrival order.
    queue: std::collections::VecDeque<usize>,
    /// SFQ finish tag of the tenant's last dispatched job.
    finish_tag: f64,
    weight: f64,
}

/// Runs a job trace to completion and reports per-job latencies and
/// result fingerprints. See the module docs for the model.
pub fn serve(trace: &JobTrace, cfg: &ServerConfig) -> Result<ServeReport, String> {
    if trace.tenants.is_empty() {
        return Err("trace declares no tenants".to_string());
    }
    if cfg.slots == 0 {
        return Err("slots must be >= 1".to_string());
    }
    cfg.engine.validate()?;
    if cfg.engine.faults.is_some() {
        return Err(
            "set per-tenant fault plans via ServerConfig::fault_plans, not EngineOptions::faults"
                .to_string(),
        );
    }
    for (name, _) in &cfg.fault_plans {
        if !trace.tenants.iter().any(|t| &t.name == name) {
            return Err(format!("fault plan names unknown tenant '{name}'"));
        }
    }
    if cfg.interleave == Interleave::TenantThreads && trace.jobs.len() > cfg.queue_cap {
        return Err(format!(
            "interleave=tenant-threads pre-executes every job, which is only sound when no job \
             can be rejected: need queue_cap >= {} jobs, got {}",
            trace.jobs.len(),
            cfg.queue_cap
        ));
    }

    let guarantees: Vec<u64> = trace
        .tenants
        .iter()
        .map(|t| t.mem.unwrap_or(cfg.mem_guarantee))
        .collect();
    for job in &trace.jobs {
        let need = mem_demand(job.kind, job.scale);
        let most = guarantees[job.tenant] + cfg.mem_shared;
        if need > most {
            return Err(format!(
                "job {} needs {need} bytes but tenant '{}' can reserve at most {most} \
                 (guarantee + shared pool); it would stall forever",
                job.id, trace.tenants[job.tenant].name
            ));
        }
    }

    // --- Host side: tenant contexts over one shared worker pool. -------
    let pool = Arc::new(WorkerPool::with_trace(
        cfg.engine.workers,
        cfg.engine.trace.clone(),
    ));
    let total_weight: f64 = trace.tenants.iter().map(|t| t.weight).sum();
    let mut runtimes: Vec<TenantRuntime> = trace
        .tenants
        .iter()
        .map(|t| {
            let faults = cfg
                .fault_plans
                .iter()
                .find(|(name, _)| name == &t.name)
                .map(|(_, plan)| plan.clone());
            let options = EngineOptions {
                shared_pool: Some(Arc::clone(&pool)),
                faults,
                ..cfg.engine.clone()
            };
            let rt = TenantRuntime::new(options);
            // Weighted share of host lanes, at least one.
            let lanes = ((cfg.engine.workers as f64) * t.weight / total_weight).round() as usize;
            rt.ctx
                .slot_cap_handle()
                .store(lanes.max(1), std::sync::atomic::Ordering::Relaxed);
            rt
        })
        .collect();

    // Pre-execute per tenant when asked: every tenant's stream runs on
    // its own OS thread, so data planes genuinely contend on the shared
    // pool. Outcomes (and therefore the schedule) are identical to
    // serial execution because each tenant's job order is preserved.
    let mut prerun: Vec<Option<JobOutcome>> = Vec::new();
    if cfg.interleave == Interleave::TenantThreads {
        prerun = trace.jobs.iter().map(|_| None).collect();
        let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new();
        let order = trace.arrival_order();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, rt) in runtimes.iter_mut().enumerate() {
                let jobs: Vec<&crate::trace_file::JobRequest> = order
                    .iter()
                    .map(|&id| &trace.jobs[id])
                    .filter(|j| j.tenant == t)
                    .collect();
                handles.push(scope.spawn(move || {
                    jobs.into_iter()
                        .map(|job| (job.id, rt.run(job)))
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                outcomes.extend(handle.join().expect("tenant thread panicked"));
            }
        });
        for (id, outcome) in outcomes {
            prerun[id] = Some(outcome);
        }
    }

    // --- Virtual side: the fluid scheduling model. ----------------------
    let sink = &cfg.trace;
    sink.name_process(pids::SERVER, "job server (virtual time)");
    sink.name_thread(Track::new(pids::SERVER, 0), "admission queue");
    for (t, spec) in trace.tenants.iter().enumerate() {
        sink.name_thread(
            Track::new(pids::SERVER, 1 + t as u32),
            &format!("tenant {}", spec.name),
        );
    }

    let capacity: f64 = cfg
        .engine
        .cluster
        .nodes
        .iter()
        .map(|n| n.cores as f64)
        .sum();
    let mut ledger = TenantLedger::new(cfg.mem_shared, guarantees);
    let mut flows: Vec<Flow> = trace
        .tenants
        .iter()
        .map(|t| Flow {
            queue: std::collections::VecDeque::new(),
            finish_tag: 0.0,
            weight: t.weight,
        })
        .collect();
    let arrivals = trace.arrival_order();
    let mut next_arrival = 0usize;
    let mut running: Vec<Running> = Vec::new();
    let mut v = 0.0f64; // virtual now
    let mut vtag = 0.0f64; // SFQ virtual start-tag clock
    let mut queued = 0usize;
    let mut rejected: Vec<usize> = Vec::new();
    let mut mem_stalls = 0u64;
    let mut rows_out: Vec<Option<JobRow>> = trace.jobs.iter().map(|_| None).collect();

    // Weighted water-filling of cluster cores over running jobs; rates
    // iterate in stored (job-id) order, so the fill is deterministic.
    let recompute_rates = |running: &mut Vec<Running>, policy: Policy, flows: &[Flow]| {
        if running.is_empty() {
            return;
        }
        let mut remaining_capacity = capacity;
        let mut unfilled: Vec<usize> = (0..running.len()).collect();
        // Fair: tenant weight split over the tenant's running jobs.
        // FIFO: every job asks for its own core demand (plain processor
        // sharing of the cluster).
        let share = |r: &Running| -> f64 {
            match policy {
                Policy::Fair => {
                    let siblings = running.iter().filter(|o| o.tenant == r.tenant).count();
                    flows[r.tenant].weight / siblings as f64
                }
                Policy::Fifo => r.cores,
            }
        };
        let shares: Vec<f64> = running.iter().map(share).collect();
        // Water-fill: grant each unfilled job its proportional share of
        // the remaining capacity, cap at its demand (speed 1 = `cores`
        // cores), repeat until nothing caps.
        loop {
            let total_share: f64 = unfilled.iter().map(|&i| shares[i]).sum();
            if total_share <= 0.0 || remaining_capacity <= 1e-12 {
                for &i in &unfilled {
                    running[i].speed = 1e-9; // starved, negligible progress
                }
                break;
            }
            // Snapshot the pass's capacity so grants don't depend on the
            // order jobs cap within the pass.
            let pass_capacity = remaining_capacity;
            let mut capped = Vec::new();
            for &i in &unfilled {
                let grant = pass_capacity * shares[i] / total_share;
                if grant >= running[i].cores {
                    running[i].speed = 1.0;
                    remaining_capacity -= running[i].cores;
                    capped.push(i);
                }
            }
            if capped.is_empty() {
                // Nobody caps: everyone runs slowed by their grant.
                for &i in &unfilled {
                    let grant = pass_capacity * shares[i] / total_share;
                    running[i].speed = (grant / running[i].cores).clamp(1e-9, 1.0);
                }
                break;
            }
            unfilled.retain(|i| !capped.contains(i));
            if unfilled.is_empty() {
                break;
            }
        }
    };

    let total_jobs = trace.jobs.len();
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 20 * total_jobs + 1000 {
            return Err("scheduler stalled (internal error)".to_string());
        }

        // Dispatch as many queued jobs as fit (slots + memory).
        let mut dispatched_any = false;
        while running.len() < cfg.slots {
            // Candidate = head of each non-empty flow, ordered by policy.
            let mut candidates: Vec<usize> = (0..flows.len())
                .filter(|&t| !flows[t].queue.is_empty())
                .collect();
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by(|&a, &b| {
                let (ja, jb) = (flows[a].queue[0], flows[b].queue[0]);
                match cfg.policy {
                    Policy::Fair => {
                        let sa = vtag.max(flows[a].finish_tag);
                        let sb = vtag.max(flows[b].finish_tag);
                        sa.partial_cmp(&sb)
                            .expect("tags are finite")
                            .then(
                                trace.jobs[ja]
                                    .at
                                    .partial_cmp(&trace.jobs[jb].at)
                                    .expect("arrivals are finite"),
                            )
                            .then(ja.cmp(&jb))
                    }
                    Policy::Fifo => trace.jobs[ja]
                        .at
                        .partial_cmp(&trace.jobs[jb].at)
                        .expect("arrivals are finite")
                        .then(ja.cmp(&jb)),
                }
            });
            let mut picked = None;
            for &t in &candidates {
                let id = flows[t].queue[0];
                let need = mem_demand(trace.jobs[id].kind, trace.jobs[id].scale);
                if ledger.try_admit(t, need) {
                    picked = Some((t, id, need));
                    break;
                }
                mem_stalls += 1;
            }
            let Some((t, id, need)) = picked else { break };
            flows[t].queue.pop_front();
            queued -= 1;
            let req = &trace.jobs[id];
            let outcome = match cfg.interleave {
                Interleave::TenantThreads => prerun[id].clone().expect("job pre-executed"),
                Interleave::Serial => runtimes[t].run(req),
            };
            let service = outcome.t_solo.max(1e-9);
            if cfg.policy == Policy::Fair {
                let start_tag = vtag.max(flows[t].finish_tag);
                flows[t].finish_tag = start_tag + service / flows[t].weight;
                vtag = start_tag;
            }
            let slot = running
                .binary_search_by(|r| r.id.cmp(&id))
                .expect_err("job ids are unique");
            running.insert(
                slot,
                Running {
                    id,
                    tenant: t,
                    remaining: service,
                    cores: outcome.cores,
                    speed: 1.0,
                    dispatched: v,
                    mem: need,
                    outcome,
                },
            );
            dispatched_any = true;
        }
        if dispatched_any {
            recompute_rates(&mut running, cfg.policy, &flows);
            sink.counter(
                Clock::Virtual,
                Track::new(pids::SERVER, 0),
                "queued jobs",
                "server",
                v,
                queued as f64,
            );
        }

        // Next event: earliest completion vs next arrival. Completions
        // win ties so freed slots are visible to same-instant arrivals.
        let next_completion = running
            .iter()
            .map(|r| v + r.remaining / r.speed)
            .fold(f64::INFINITY, f64::min);
        let next_arrival_at = arrivals
            .get(next_arrival)
            .map(|&id| trace.jobs[id].at)
            .unwrap_or(f64::INFINITY);
        if next_completion.is_infinite() && next_arrival_at.is_infinite() {
            break;
        }

        if next_completion <= next_arrival_at {
            let dt = (next_completion - v).max(0.0);
            for r in running.iter_mut() {
                r.remaining -= r.speed * dt;
            }
            v = next_completion;
            // Complete every job that just drained (id order, since
            // `running` is id-sorted).
            let mut i = 0;
            while i < running.len() {
                if running[i].remaining <= 1e-9 {
                    let done = running.remove(i);
                    ledger.release(done.tenant, done.mem);
                    let req = &trace.jobs[done.id];
                    let latency = v - req.at;
                    sink.span(
                        Clock::Virtual,
                        Track::new(pids::SERVER, 1 + done.tenant as u32),
                        format!("{} #{}", req.kind.name(), done.id),
                        "job",
                        done.dispatched,
                        v,
                        vec![
                            ("job", ArgValue::UInt(done.id as u64)),
                            ("kind", ArgValue::Str(req.kind.name().to_string())),
                            ("latency_s", ArgValue::Float(latency)),
                            ("rows", ArgValue::UInt(done.outcome.rows as u64)),
                        ],
                    );
                    rows_out[done.id] = Some(JobRow {
                        id: done.id,
                        tenant: trace.tenants[done.tenant].name.clone(),
                        kind: req.kind.name().to_string(),
                        arrival: req.at,
                        dispatched: done.dispatched,
                        completed: v,
                        latency,
                        rows: done.outcome.rows,
                        hash: done.outcome.hash,
                        cache_hit: done.outcome.cache_hit,
                    });
                } else {
                    i += 1;
                }
            }
            recompute_rates(&mut running, cfg.policy, &flows);
        } else {
            let dt = (next_arrival_at - v).max(0.0);
            for r in running.iter_mut() {
                r.remaining -= r.speed * dt;
            }
            v = next_arrival_at;
            // Admit every arrival at this instant (arrival order).
            while next_arrival < arrivals.len() && trace.jobs[arrivals[next_arrival]].at <= v {
                let id = arrivals[next_arrival];
                next_arrival += 1;
                if queued >= cfg.queue_cap {
                    rejected.push(id);
                    sink.instant(
                        Clock::Virtual,
                        Track::new(pids::SERVER, 0),
                        format!("reject #{id}"),
                        "server",
                        v,
                        vec![("job", ArgValue::UInt(id as u64))],
                    );
                    continue;
                }
                flows[trace.jobs[id].tenant].queue.push_back(id);
                queued += 1;
                sink.counter(
                    Clock::Virtual,
                    Track::new(pids::SERVER, 0),
                    "queued jobs",
                    "server",
                    v,
                    queued as f64,
                );
            }
        }
    }

    // --- Report. --------------------------------------------------------
    let per_job: Vec<JobRow> = rows_out.into_iter().flatten().collect();
    let mut latencies: Vec<f64> = per_job.iter().map(|r| r.latency).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let min_weight = trace
        .tenants
        .iter()
        .map(|t| t.weight)
        .fold(f64::INFINITY, f64::min);
    let uniform = trace.tenants.iter().all(|t| t.weight == min_weight);
    let interactive: Vec<&str> = trace
        .tenants
        .iter()
        .filter(|t| uniform || t.weight > min_weight)
        .map(|t| t.name.as_str())
        .collect();
    let mut interactive_lat: Vec<f64> = per_job
        .iter()
        .filter(|r| interactive.contains(&r.tenant.as_str()))
        .map(|r| r.latency)
        .collect();
    interactive_lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let makespan = per_job.iter().map(|r| r.completed).fold(0.0, f64::max);
    let cache_hits: u64 = runtimes.iter().map(|rt| rt.cache_hits).sum();
    let faults_injected: u64 = runtimes
        .iter()
        .map(|rt| rt.ctx.fault_counters().injected_failures)
        .sum();
    rejected.sort_unstable();
    Ok(ServeReport {
        policy: cfg.policy.name().to_string(),
        slots: cfg.slots,
        tenants: trace.tenants.len(),
        total_jobs,
        completed: per_job.len(),
        rejected,
        mem_stalls,
        cache_hits,
        faults_injected,
        p50_latency: trace::percentile(&latencies, 50.0),
        p99_latency: trace::percentile(&latencies, 99.0),
        p99_interactive: trace::percentile(&interactive_lat, 99.0),
        throughput: if makespan > 0.0 {
            per_job.len() as f64 / makespan
        } else {
            0.0
        },
        makespan,
        per_job,
    })
}
