//! Multi-tenant job server over the mini DAG engine.
//!
//! The engine's [`engine::Context`] is a single-tenant driver: one
//! program, one lineage graph, one virtual cluster. This crate promotes
//! it into a long-lived **job server** that admits a stream of jobs from
//! multiple tenants:
//!
//! * [`trace_file`] — the job-trace text format (`tenant`/`job` lines)
//!   and the deterministic load generator behind `chopper-cli loadgen`.
//! * [`jobs`] — per-tenant runtimes: four workload kinds (wordcount,
//!   sql, kmeans, logreg) built over one persistent context per tenant,
//!   with cross-job reuse of cached source RDDs.
//! * [`server`] — bounded-queue admission, weighted-fair (SFQ) or FIFO
//!   dispatch, tenant memory budgets via [`memman::TenantLedger`], and a
//!   fluid contention model on the server's virtual clock.
//!
//! The cross-cutting invariant, inherited from the engine: **data is
//! real, time is virtual**. Tenant data planes really execute — on one
//! shared host [`engine::WorkerPool`], capped per tenant — while every
//! scheduling decision keys on virtual-clock state only. A fixed trace
//! therefore produces bit-identical per-job result tables and latencies
//! across worker counts, pipeline/batch modes, and physical
//! interleavings; `tests/server_equivalence.rs` pins this.

pub mod jobs;
pub mod server;
pub mod trace_file;

pub use jobs::{mem_demand, JobOutcome, TenantRuntime};
pub use server::{
    serve, server_engine_defaults, Interleave, JobRow, Policy, ServeReport, ServerConfig,
};
pub use trace_file::{generate, JobKind, JobRequest, JobTrace, TenantSpec};
