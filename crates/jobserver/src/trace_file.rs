//! Job-trace text format and the deterministic load generator.
//!
//! A job trace is the server's input: a set of tenants (name, fair-share
//! weight, optional memory guarantee) and a stream of job requests
//! (tenant, virtual arrival time, workload kind, scale, seed). The format
//! is line-oriented, `#`-commented, and round-trips through
//! [`JobTrace::to_text`] — the same conventions as `faults::FaultPlan`:
//!
//! ```text
//! # tenants first, then jobs
//! tenant batch weight 1 mem 512m
//! tenant t1 weight 2
//! job batch at 0.0 sql scale 0.6 seed 7
//! job t1 at 1.5 wordcount scale 0.1 seed 8
//! ```
//!
//! Arrival times are **virtual seconds** on the server's clock; nothing
//! here reads the host clock, so a trace replays bit-identically.

use numeric::XorShift64;

/// One tenant declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (unique, no whitespace).
    pub name: String,
    /// Weighted-fair share weight (> 0).
    pub weight: f64,
    /// Memory guarantee override in bytes (`None` = server default).
    pub mem: Option<u64>,
}

/// The four workload kinds the load generator mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobKind {
    /// Skewed word histogram (`count_by_key`).
    WordCount,
    /// Aggregate + join (orders revenue joined against customers).
    Sql,
    /// One Lloyd assignment + centroid-update step.
    KMeans,
    /// One logistic-regression gradient step.
    LogReg,
}

impl JobKind {
    /// Parses the trace-file token.
    pub fn parse(s: &str) -> Result<JobKind, String> {
        match s {
            "wordcount" => Ok(JobKind::WordCount),
            "sql" => Ok(JobKind::Sql),
            "kmeans" => Ok(JobKind::KMeans),
            "logreg" => Ok(JobKind::LogReg),
            other => Err(format!(
                "unknown job kind '{other}' (expected wordcount|sql|kmeans|logreg)"
            )),
        }
    }

    /// The trace-file token.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::WordCount => "wordcount",
            JobKind::Sql => "sql",
            JobKind::KMeans => "kmeans",
            JobKind::LogReg => "logreg",
        }
    }
}

/// One job request from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Position in the trace file (stable job id).
    pub id: usize,
    /// Index into [`JobTrace::tenants`].
    pub tenant: usize,
    /// Arrival time in virtual seconds.
    pub at: f64,
    /// Workload kind.
    pub kind: JobKind,
    /// Input-size scale factor in `(0, 1]` relative to the kind's nominal
    /// dataset.
    pub scale: f64,
    /// Dataset seed. Jobs of one tenant sharing `(kind, scale, seed)`
    /// reuse the tenant's cached source RDDs.
    pub seed: u64,
}

/// A parsed job trace: tenants plus an arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Declared tenants, in declaration order.
    pub tenants: Vec<TenantSpec>,
    /// Job requests, in file order (ids are file positions).
    pub jobs: Vec<JobRequest>,
}

/// Parses a memory size with optional `k`/`m`/`g` suffix.
pub fn parse_mem(s: &str) -> Result<u64, String> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => {
            let mult = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1u64 << 20,
                _ => 1u64 << 30,
            };
            (d, mult)
        }
        None => (lower.as_str(), 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad memory size '{s}'"))?;
    Ok(n * mult)
}

/// Renders a memory size with the largest exact `k`/`m`/`g` suffix.
fn render_mem(bytes: u64) -> String {
    if bytes > 0 && bytes.is_multiple_of(1 << 30) {
        format!("{}g", bytes >> 30)
    } else if bytes > 0 && bytes.is_multiple_of(1 << 20) {
        format!("{}m", bytes >> 20)
    } else if bytes > 0 && bytes.is_multiple_of(1 << 10) {
        format!("{}k", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

impl JobTrace {
    /// Parses the text format. Errors carry 1-based line numbers.
    pub fn from_text(text: &str) -> Result<JobTrace, String> {
        let mut tenants: Vec<TenantSpec> = Vec::new();
        let mut jobs: Vec<JobRequest> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            let fail =
                |msg: String| -> Result<JobTrace, String> { Err(format!("line {line_no}: {msg}")) };
            match toks[0] {
                "tenant" => {
                    // tenant <name> weight <w> [mem <size>]
                    if !(toks.len() == 4 || toks.len() == 6) || toks[2] != "weight" {
                        return fail(format!(
                            "expected 'tenant <name> weight <w> [mem <size>]', got '{line}'"
                        ));
                    }
                    let name = toks[1].to_string();
                    if tenants.iter().any(|t| t.name == name) {
                        return fail(format!("duplicate tenant '{name}'"));
                    }
                    let weight: f64 = match toks[3].parse() {
                        Ok(w) => w,
                        Err(_) => return fail(format!("bad weight '{}'", toks[3])),
                    };
                    if !(weight > 0.0 && weight.is_finite()) {
                        return fail(format!("weight must be positive and finite, got {weight}"));
                    }
                    let mem = if toks.len() == 6 {
                        if toks[4] != "mem" {
                            return fail(format!("expected 'mem', got '{}'", toks[4]));
                        }
                        match parse_mem(toks[5]) {
                            Ok(m) => Some(m),
                            Err(e) => return fail(e),
                        }
                    } else {
                        None
                    };
                    tenants.push(TenantSpec { name, weight, mem });
                }
                "job" => {
                    // job <tenant> at <secs> <kind> scale <f> seed <u64>
                    if toks.len() != 9 || toks[2] != "at" || toks[5] != "scale" || toks[7] != "seed"
                    {
                        return fail(format!(
                            "expected 'job <tenant> at <secs> <kind> scale <f> seed <n>', got '{line}'"
                        ));
                    }
                    let tenant = match tenants.iter().position(|t| t.name == toks[1]) {
                        Some(t) => t,
                        None => return fail(format!("unknown tenant '{}'", toks[1])),
                    };
                    let at: f64 = match toks[3].parse() {
                        Ok(a) => a,
                        Err(_) => return fail(format!("bad arrival time '{}'", toks[3])),
                    };
                    if !(at >= 0.0 && at.is_finite()) {
                        return fail(format!("arrival time must be >= 0 and finite, got {at}"));
                    }
                    let kind = match JobKind::parse(toks[4]) {
                        Ok(k) => k,
                        Err(e) => return fail(e),
                    };
                    let scale: f64 = match toks[6].parse() {
                        Ok(s) => s,
                        Err(_) => return fail(format!("bad scale '{}'", toks[6])),
                    };
                    if !(scale > 0.0 && scale <= 1.0) {
                        return fail(format!("scale must be in (0, 1], got {scale}"));
                    }
                    let seed: u64 = match toks[8].parse() {
                        Ok(s) => s,
                        Err(_) => return fail(format!("bad seed '{}'", toks[8])),
                    };
                    jobs.push(JobRequest {
                        id: jobs.len(),
                        tenant,
                        at,
                        kind,
                        scale,
                        seed,
                    });
                }
                other => {
                    return fail(format!("unknown directive '{other}'"));
                }
            }
        }
        if tenants.is_empty() {
            return Err("trace declares no tenants".to_string());
        }
        Ok(JobTrace { tenants, jobs })
    }

    /// Renders the trace back to the text format (round-trips through
    /// [`JobTrace::from_text`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# chopper job trace\n");
        for t in &self.tenants {
            match t.mem {
                Some(m) => out.push_str(&format!(
                    "tenant {} weight {} mem {}\n",
                    t.name,
                    t.weight,
                    render_mem(m)
                )),
                None => out.push_str(&format!("tenant {} weight {}\n", t.name, t.weight)),
            }
        }
        for j in &self.jobs {
            out.push_str(&format!(
                "job {} at {} {} scale {} seed {}\n",
                self.tenants[j.tenant].name,
                j.at,
                j.kind.name(),
                j.scale,
                j.seed
            ));
        }
        out
    }

    /// Job ids sorted by `(arrival, id)` — the server's admission order.
    pub fn arrival_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            self.jobs[a]
                .at
                .partial_cmp(&self.jobs[b].at)
                .expect("arrival times are finite")
                .then(a.cmp(&b))
        });
        order
    }
}

/// Generates a mixed multi-tenant trace: tenant 0 (`batch`, weight 1) sends
/// bursts of heavy sql/kmeans jobs; tenants 1.. (`t1`…, weight 2) send a
/// steady trickle of light wordcount/logreg/sql jobs. Same `(tenants,
/// jobs, seed)` always yields the same trace — the generator draws from a
/// seeded [`XorShift64`] only.
pub fn generate(tenants: usize, jobs: usize, seed: u64) -> JobTrace {
    let tenants = tenants.max(1);
    let mut rng = XorShift64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut spec: Vec<TenantSpec> = Vec::with_capacity(tenants);
    spec.push(TenantSpec {
        name: "batch".to_string(),
        weight: 1.0,
        mem: None,
    });
    for t in 1..tenants {
        spec.push(TenantSpec {
            name: format!("t{t}"),
            weight: 2.0,
            mem: None,
        });
    }

    const HEAVY: [JobKind; 3] = [JobKind::Sql, JobKind::KMeans, JobKind::WordCount];
    const LIGHT: [JobKind; 4] = [
        JobKind::WordCount,
        JobKind::LogReg,
        JobKind::Sql,
        JobKind::KMeans,
    ];

    let mut reqs: Vec<JobRequest> = Vec::with_capacity(jobs);
    for i in 0..jobs {
        // Round-robin jobs over tenants so every tenant gets work even in
        // short traces.
        let tenant = i % tenants;
        let round = i / tenants;
        // The batch tenant sends a heavy job every few rounds and fills
        // the gaps with light ones, so heavy jobs stay a small fraction
        // of the trace (they are the tail fairness deliberately trades
        // away). A single tenant mixes both in one stream.
        let heavy = if tenants == 1 {
            i.is_multiple_of(8)
        } else {
            tenant == 0 && round.is_multiple_of(4)
        };
        let (kind, scale, at) = if heavy {
            let kind = HEAVY[(round / 4) % HEAVY.len()];
            let scale = 0.5 + 0.3 * rng.next_f64();
            // Heavy arrivals cluster early in their round: a burst the
            // light trickle then runs into.
            let at = round as f64 * 6.0 + 2.0 * rng.next_f64();
            (kind, scale, at)
        } else {
            let kind = LIGHT[round % LIGHT.len()];
            let scale = 0.05 + 0.1 * rng.next_f64();
            // Steady per-tenant trickle, jittered.
            let at = round as f64 * 6.0 + 5.0 * rng.next_f64();
            (kind, scale, at)
        };
        // Quantize so to_text round-trips exactly through decimal.
        let scale = (scale * 1000.0).round() / 1000.0;
        let at = (at * 1000.0).round() / 1000.0;
        // A small seed pool per tenant so repeat jobs hit the tenant's
        // dataset cache.
        let seed = 100 + (rng.next_u64() % 3) * 17 + tenant as u64;
        reqs.push(JobRequest {
            id: i,
            tenant,
            at,
            kind,
            scale,
            seed,
        });
    }
    JobTrace {
        tenants: spec,
        jobs: reqs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let text = "\
# demo
tenant batch weight 1 mem 512m
tenant t1 weight 2
job batch at 0 sql scale 0.6 seed 7
job t1 at 1.5 wordcount scale 0.1 seed 8
";
        let trace = JobTrace::from_text(text).unwrap();
        assert_eq!(trace.tenants.len(), 2);
        assert_eq!(trace.tenants[0].mem, Some(512 << 20));
        assert_eq!(trace.jobs.len(), 2);
        assert_eq!(trace.jobs[1].tenant, 1);
        assert_eq!(trace.jobs[1].kind, JobKind::WordCount);
        let again = JobTrace::from_text(&trace.to_text()).unwrap();
        assert_eq!(again, trace);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = JobTrace::from_text("tenant a weight 1\njob b at 0 sql scale 0.5 seed 1\n")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = JobTrace::from_text("tenant a weight 0\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = JobTrace::from_text("frob x\n").unwrap_err();
        assert!(err.contains("unknown directive"), "{err}");
        let err = JobTrace::from_text("").unwrap_err();
        assert!(err.contains("no tenants"), "{err}");
    }

    #[test]
    fn generate_is_deterministic_and_round_trips() {
        let a = generate(4, 56, 11);
        let b = generate(4, 56, 11);
        assert_eq!(a, b);
        assert_eq!(a.tenants.len(), 4);
        assert_eq!(a.jobs.len(), 56);
        // Every tenant got jobs; scales are in range.
        for t in 0..4 {
            assert!(a.jobs.iter().any(|j| j.tenant == t));
        }
        for j in &a.jobs {
            assert!(j.scale > 0.0 && j.scale <= 1.0);
            assert!(j.at >= 0.0);
        }
        let round = JobTrace::from_text(&a.to_text()).unwrap();
        assert_eq!(round, a);
        // Different seed, different trace.
        assert_ne!(generate(4, 56, 12), a);
    }

    #[test]
    fn arrival_order_sorts_by_time_then_id() {
        let trace = JobTrace::from_text(
            "tenant a weight 1\n\
             job a at 5 sql scale 0.5 seed 1\n\
             job a at 1 sql scale 0.5 seed 1\n\
             job a at 1 sql scale 0.5 seed 2\n",
        )
        .unwrap();
        assert_eq!(trace.arrival_order(), vec![1, 2, 0]);
    }
}
