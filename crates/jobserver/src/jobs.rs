//! Per-tenant job execution: four workload builders over a long-lived
//! engine [`Context`], with cross-job reuse of cached source RDDs.
//!
//! Each tenant owns one ungoverned `Context` for the server's lifetime.
//! Ungoverned contexts never evict (`memman` only governs when
//! `executor_mem` is set), so a dataset cached by one job is still
//! materialized when a later job of the same tenant asks for the same
//! `(kind, scale, seed)` — the cross-job cache reuse the job server
//! advertises. Every generator is a pure function of `(seed, global
//! record index)`, so results are independent of partition count, worker
//! count, and physical interleaving.

use std::collections::HashMap;
use std::sync::Arc;

use engine::record::Fnv;
use engine::{Context, EngineOptions, GenFn, Key, Rdd, Record, Value};

use crate::trace_file::{JobKind, JobRequest};

/// Nominal record counts at `scale = 1.0`.
const WC_RECORDS: f64 = 30_000.0;
const SQL_ORDERS: f64 = 20_000.0;
const SQL_CUSTOMERS: f64 = 2_000.0;
const ML_POINTS: f64 = 6_000.0;
/// Feature dimension for the ML kinds.
const DIM: usize = 4;
/// K-means cluster count.
const KM_K: usize = 8;

/// Per-record virtual compute costs (seconds per record before node
/// speed). Sized so a light (scale ~0.1) job takes a couple of virtual
/// seconds and a heavy (scale ~0.65) one tens of seconds — enough for a
/// loadgen trace's arrivals to actually contend. Purely virtual: host
/// execution time is unaffected.
const GEN_COST: f64 = 4800e-6;
const MAP_COST: f64 = 3600e-6;
const REDUCE_COST: f64 = 2400e-6;
const JOIN_COST: f64 = 4800e-6;

/// SplitMix64 finalizer: a pure, index-addressable random stream.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` draw at stream position `i`.
fn unit(seed: u64, i: u64) -> f64 {
    (mix(seed, i) >> 11) as f64 / (1u64 << 53) as f64
}

/// Global index range of partition `part` of `parts` over `n` records.
fn span(n: u64, part: usize, parts: usize) -> (u64, u64) {
    let parts = parts.max(1) as u64;
    let part = part as u64;
    (part * n / parts, (part + 1) * n / parts)
}

/// Scaled record count, at least `floor`.
fn scaled(nominal: f64, scale: f64, floor: u64) -> u64 {
    ((nominal * scale).ceil() as u64).max(floor)
}

/// Deterministic pre-execution estimate of a job's peak memory demand in
/// bytes — what admission control charges against the tenant's budget.
/// A pure function of the request (kind + scale), so admission decisions
/// never depend on execution timing.
pub fn mem_demand(kind: JobKind, scale: f64) -> u64 {
    let input = match kind {
        JobKind::WordCount => scaled(WC_RECORDS, scale, 64) * 24,
        JobKind::Sql => scaled(SQL_ORDERS, scale, 64) * 18 + scaled(SQL_CUSTOMERS, scale, 16) * 18,
        JobKind::KMeans | JobKind::LogReg => scaled(ML_POINTS, scale, 64) * (16 + 8 * DIM as u64),
    };
    // Cached input + shuffle working set + fixed overhead.
    input * 3 + (1 << 20)
}

/// What one finished job reports back to the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Rows in the collected result table.
    pub rows: usize,
    /// FNV-1a hash over the result rows' `Debug` renderings, in order —
    /// the bit-determinism fingerprint CI compares across configs.
    pub hash: u64,
    /// Uncontended service time in virtual seconds (the job's span on the
    /// tenant context's clock).
    pub t_solo: f64,
    /// Mean core demand while running (total task-seconds / span).
    pub cores: f64,
    /// Whether the tenant's dataset cache already held this job's sources.
    pub cache_hit: bool,
}

/// A tenant's long-lived execution state.
pub struct TenantRuntime {
    /// The tenant's private engine context (shared host pool, own virtual
    /// cluster clock).
    pub ctx: Context,
    /// Source RDDs built so far, keyed by `(kind, scale-millis, seed)`.
    datasets: HashMap<(JobKind, u32, u64), Vec<Rdd>>,
    /// Dataset-cache hits across jobs.
    pub cache_hits: u64,
    /// Dataset-cache misses (first builds).
    pub cache_misses: u64,
}

impl TenantRuntime {
    /// Builds the runtime. `options` should carry the server's shared
    /// worker pool and (for fault-injection tenants) a fault plan.
    pub fn new(options: EngineOptions) -> TenantRuntime {
        TenantRuntime {
            ctx: Context::new(options),
            datasets: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Runs one job to completion on the tenant's context and reports the
    /// outcome. Execution is real (host threads); timing is virtual.
    pub fn run(&mut self, req: &JobRequest) -> JobOutcome {
        let key = (req.kind, (req.scale * 1000.0).round() as u32, req.seed);
        let cache_hit = self.datasets.contains_key(&key);
        if cache_hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
            let sources = build_sources(&mut self.ctx, req);
            for &rdd in &sources {
                self.ctx.cache(rdd);
            }
            self.datasets.insert(key, sources);
        }
        let sources = self.datasets[&key].clone();
        let out = run_query(&mut self.ctx, req, &sources);

        let mut h = Fnv::new();
        for rec in &out {
            h.write(format!("{rec:?}").as_bytes());
            h.write_u8(b'\n');
        }
        let job = self.ctx.jobs().last().expect("collect records job metrics");
        let t_solo = (job.end - job.start).max(1e-9);
        let task_secs: f64 = job
            .stages
            .iter()
            .map(|s| s.task_durations.iter().sum::<f64>())
            .sum();
        JobOutcome {
            rows: out.len(),
            hash: h.finish(),
            t_solo,
            cores: (task_secs / t_solo).max(0.05),
            cache_hit,
        }
    }
}

/// Builds (without materializing) the source RDDs for a request.
fn build_sources(ctx: &mut Context, req: &JobRequest) -> Vec<Rdd> {
    let scale = req.scale;
    let seed = req.seed;
    let milli = (scale * 1000.0).round() as u32;
    match req.kind {
        JobKind::WordCount => {
            let n = scaled(WC_RECORDS, scale, 64);
            let vocab = 100 + (300.0 * scale) as u64;
            let s = mix(seed, 0);
            let gen: GenFn = Arc::new(move |part, parts| {
                let (lo, hi) = span(n, part, parts);
                (lo..hi)
                    .map(|i| {
                        let u = unit(s, i);
                        let w = ((u * u) * vocab as f64) as u64;
                        Record::new(Key::str(&format!("w{w:05}")), Value::Int(1))
                    })
                    .collect()
            });
            let file = format!("jobs/wc-{milli}-{seed}");
            vec![ctx.text_file(&file, n * 24, gen, GEN_COST, "wc_src")]
        }
        JobKind::Sql => {
            let keys = scaled(1_500.0, scale, 16);
            let n_orders = scaled(SQL_ORDERS, scale, 64);
            let s_ord = mix(seed, 1);
            let gen_orders: GenFn = Arc::new(move |part, parts| {
                let (lo, hi) = span(n_orders, part, parts);
                (lo..hi)
                    .map(|i| {
                        // Quadratic key skew: popular customers order more.
                        let u = unit(s_ord, i);
                        let k = ((u * u) * keys as f64) as i64;
                        let amount = 1 + (mix(s_ord, i ^ 0x5a5a) % 100) as i64;
                        Record::new(Key::Int(k), Value::Int(amount))
                    })
                    .collect()
            });
            let n_cust = scaled(SQL_CUSTOMERS, scale, 16).min(keys);
            let s_cust = mix(seed, 2);
            let gen_cust: GenFn = Arc::new(move |part, parts| {
                let (lo, hi) = span(n_cust, part, parts);
                (lo..hi)
                    .map(|i| {
                        let region = (mix(s_cust, i) % 10) as i64;
                        Record::new(Key::Int(i as i64), Value::Int(region))
                    })
                    .collect()
            });
            let orders = ctx.text_file(
                &format!("jobs/orders-{milli}-{seed}"),
                n_orders * 18,
                gen_orders,
                GEN_COST,
                "sql_orders",
            );
            let customers = ctx.text_file(
                &format!("jobs/customers-{milli}-{seed}"),
                n_cust * 18,
                gen_cust,
                GEN_COST,
                "sql_customers",
            );
            vec![orders, customers]
        }
        JobKind::KMeans | JobKind::LogReg => {
            let n = scaled(ML_POINTS, scale, 64);
            let s = mix(seed, 3);
            let labelled = req.kind == JobKind::LogReg;
            let gen: GenFn = Arc::new(move |part, parts| {
                let (lo, hi) = span(n, part, parts);
                (lo..hi)
                    .map(|i| {
                        let x: Vec<f64> = (0..DIM)
                            .map(|d| 4.0 * unit(s, i * DIM as u64 + d as u64) - 2.0)
                            .collect();
                        let value = if labelled {
                            // Linearly separable-ish labels from a fixed plane.
                            let y = if x.iter().sum::<f64>() > 0.0 { 1 } else { 0 };
                            Value::Pair(Box::new(Value::vector(x)), Box::new(Value::Int(y)))
                        } else {
                            Value::vector(x)
                        };
                        Record::new(Key::None, value)
                    })
                    .collect()
            });
            let tag = if labelled { "lr_points" } else { "km_points" };
            let file = format!("jobs/{}-{milli}-{seed}", if labelled { "lr" } else { "km" });
            vec![ctx.text_file(&file, n * (16 + 8 * DIM as u64), gen, GEN_COST, tag)]
        }
    }
}

/// Appends the request's query over pre-built sources and collects it.
fn run_query(ctx: &mut Context, req: &JobRequest, sources: &[Rdd]) -> Vec<Record> {
    match req.kind {
        JobKind::WordCount => {
            let counts = ctx.count_by_key(sources[0], None, "wc_count");
            ctx.collect(counts, "wordcount")
        }
        JobKind::Sql => {
            let revenue = ctx.reduce_by_key(
                sources[0],
                Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
                None,
                REDUCE_COST,
                "sql_revenue",
            );
            let joined = ctx.join(revenue, sources[1], None, JOIN_COST, "sql_join");
            ctx.collect(joined, "sql")
        }
        JobKind::KMeans => {
            let centers = fixed_centers(req.seed);
            let assigned = ctx.map(
                sources[0],
                Arc::new(move |r: &Record| {
                    let x = r.value.as_vector();
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for (c, center) in centers.iter().enumerate() {
                        let d: f64 = x
                            .iter()
                            .zip(center.iter())
                            .map(|(a, b)| (a - b) * (a - b))
                            .sum();
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    Record::new(
                        Key::Int(best as i64),
                        Value::Pair(
                            Box::new(Value::Vector(Arc::new(x.to_vec()))),
                            Box::new(Value::Int(1)),
                        ),
                    )
                }),
                MAP_COST,
                "km_assign",
            );
            let summed = ctx.reduce_by_key(
                assigned,
                Arc::new(|a: &Value, b: &Value| pair_vec_add(a, b)),
                None,
                REDUCE_COST,
                "km_sum",
            );
            let centroids = ctx.map_values(
                summed,
                Arc::new(|r: &Record| {
                    let (sum, count) = match &r.value {
                        Value::Pair(s, c) => (s.as_vector(), c.as_int() as f64),
                        other => panic!("expected (sum, count) pair, got {other:?}"),
                    };
                    let mean: Vec<f64> = sum.iter().map(|v| v / count).collect();
                    Record::new(r.key.clone(), Value::vector(mean))
                }),
                MAP_COST,
                "km_centroid",
            );
            ctx.collect(centroids, "kmeans")
        }
        JobKind::LogReg => {
            let w = fixed_weights(req.seed);
            let grads = ctx.map(
                sources[0],
                Arc::new(move |r: &Record| {
                    let (x, y) = match &r.value {
                        Value::Pair(x, y) => (x.as_vector(), y.as_int() as f64),
                        other => panic!("expected (x, y) pair, got {other:?}"),
                    };
                    let dot: f64 = w.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
                    let sigma = 1.0 / (1.0 + (-dot).exp());
                    let g: Vec<f64> = x.iter().map(|xi| xi * (sigma - y)).collect();
                    Record::new(Key::Int(0), Value::vector(g))
                }),
                MAP_COST,
                "lr_grad",
            );
            let total = ctx.reduce_by_key(
                grads,
                Arc::new(|a: &Value, b: &Value| {
                    let (va, vb) = (a.as_vector(), b.as_vector());
                    Value::vector(va.iter().zip(vb.iter()).map(|(x, y)| x + y).collect())
                }),
                None,
                REDUCE_COST,
                "lr_sum",
            );
            ctx.collect(total, "logreg")
        }
    }
}

/// Adds two `(sum-vector, count)` accumulators.
fn pair_vec_add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Pair(sa, ca), Value::Pair(sb, cb)) => {
            let (va, vb) = (sa.as_vector(), sb.as_vector());
            Value::Pair(
                Box::new(Value::vector(
                    va.iter().zip(vb.iter()).map(|(x, y)| x + y).collect(),
                )),
                Box::new(Value::Int(ca.as_int() + cb.as_int())),
            )
        }
        other => panic!("expected accumulator pairs, got {other:?}"),
    }
}

/// K fixed k-means centers derived from the job seed.
fn fixed_centers(seed: u64) -> Arc<Vec<Vec<f64>>> {
    let s = mix(seed, 4);
    Arc::new(
        (0..KM_K)
            .map(|c| {
                (0..DIM)
                    .map(|d| 4.0 * unit(s, (c * DIM + d) as u64) - 2.0)
                    .collect()
            })
            .collect(),
    )
}

/// Fixed logistic-regression weight vector derived from the job seed.
fn fixed_weights(seed: u64) -> Arc<Vec<f64>> {
    let s = mix(seed, 5);
    Arc::new((0..DIM).map(|d| unit(s, d as u64) - 0.5).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_file::JobKind;

    fn small_opts() -> EngineOptions {
        EngineOptions {
            cluster: simcluster::uniform_cluster(2, 4, 2.0),
            default_parallelism: 6,
            block_size: 64 * 1024,
            workers: 2,
            ..EngineOptions::default()
        }
    }

    fn req(kind: JobKind, scale: f64, seed: u64) -> JobRequest {
        JobRequest {
            id: 0,
            tenant: 0,
            at: 0.0,
            kind,
            scale,
            seed,
        }
    }

    #[test]
    fn every_kind_runs_and_is_deterministic() {
        for kind in [
            JobKind::WordCount,
            JobKind::Sql,
            JobKind::KMeans,
            JobKind::LogReg,
        ] {
            let mut a = TenantRuntime::new(small_opts());
            let mut b = TenantRuntime::new(small_opts());
            let r = req(kind, 0.2, 7);
            let oa = a.run(&r);
            let ob = b.run(&r);
            assert!(oa.rows > 0, "{kind:?} returned no rows");
            assert!(oa.t_solo > 0.0);
            assert_eq!(oa, ob, "{kind:?} not deterministic");
        }
    }

    #[test]
    fn repeat_jobs_hit_the_dataset_cache_and_match() {
        let mut rt = TenantRuntime::new(small_opts());
        let r = req(JobKind::Sql, 0.3, 9);
        let first = rt.run(&r);
        let second = rt.run(&r);
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(rt.cache_hits, 1);
        assert_eq!(first.hash, second.hash);
        assert_eq!(first.rows, second.rows);
        // Cached sources skip the generate stage, so the repeat is faster.
        assert!(second.t_solo <= first.t_solo);
    }

    #[test]
    fn results_are_independent_of_workers_and_data_plane() {
        let r = req(JobKind::KMeans, 0.25, 3);
        let base = TenantRuntime::new(EngineOptions {
            workers: 1,
            pipeline: false,
            batch: false,
            ..small_opts()
        })
        .run(&r);
        for (workers, pipeline, batch) in [(4, true, true), (2, true, false), (4, false, true)] {
            let got = TenantRuntime::new(EngineOptions {
                workers,
                pipeline,
                batch,
                ..small_opts()
            })
            .run(&r);
            assert_eq!(got.rows, base.rows);
            assert_eq!(got.hash, base.hash);
            assert_eq!(got.t_solo.to_bits(), base.t_solo.to_bits());
        }
    }

    #[test]
    fn mem_demand_is_monotone_in_scale() {
        for kind in [
            JobKind::WordCount,
            JobKind::Sql,
            JobKind::KMeans,
            JobKind::LogReg,
        ] {
            assert!(mem_demand(kind, 0.1) <= mem_demand(kind, 0.9));
            assert!(mem_demand(kind, 1.0) > 1 << 20);
        }
    }
}
