//! Job-server equivalence suite, in the style of `pipeline_equivalence`:
//! a fixed trace + seed must produce a bit-identical [`ServeReport`] —
//! per-job result hashes, dispatch/completion times, latencies, queue
//! and ledger counters — regardless of host worker count, pipeline/batch
//! data-plane mode, or how tenant executions physically interleave.
//!
//! This is the property that makes the contention benchmark and the CI
//! matrix meaningful: scheduling decisions key on virtual-clock state
//! only, never on host timing.

use jobserver::{generate, serve, Interleave, Policy, ServeReport, ServerConfig};

fn engine(workers: usize, pipeline: bool, batch: bool) -> engine::EngineOptions {
    engine::EngineOptions {
        cluster: simcluster::uniform_cluster(4, 4, 2.0),
        default_parallelism: 8,
        block_size: 128 * 1024,
        workers,
        pipeline,
        batch,
        ..jobserver::server_engine_defaults()
    }
}

fn run_with_slots(
    policy: Policy,
    workers: usize,
    pipeline: bool,
    batch: bool,
    interleave: Interleave,
    slots: usize,
) -> ServeReport {
    let trace = generate(4, 56, 11);
    let cfg = ServerConfig {
        policy,
        slots,
        engine: engine(workers, pipeline, batch),
        interleave,
        ..ServerConfig::default()
    };
    serve(&trace, &cfg).unwrap()
}

fn run(
    policy: Policy,
    workers: usize,
    pipeline: bool,
    batch: bool,
    interleave: Interleave,
) -> ServeReport {
    run_with_slots(policy, workers, pipeline, batch, interleave, 4)
}

/// Field-by-field bit comparison, with `Debug` as the catch-all (equal
/// `f64` bits render identically).
fn assert_identical(label: &str, got: &ServeReport, want: &ServeReport) {
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "{label}: report diverged"
    );
    assert_eq!(got.per_job.len(), want.per_job.len(), "{label}");
    for (g, w) in got.per_job.iter().zip(&want.per_job) {
        assert_eq!(g.hash, w.hash, "{label}: job {} hash", g.id);
        assert_eq!(
            g.latency.to_bits(),
            w.latency.to_bits(),
            "{label}: job {} latency bits",
            g.id
        );
        assert_eq!(
            g.completed.to_bits(),
            w.completed.to_bits(),
            "{label}: job {} completion bits",
            g.id
        );
    }
    assert_eq!(
        got.p99_latency.to_bits(),
        want.p99_latency.to_bits(),
        "{label}"
    );
    assert_eq!(got.makespan.to_bits(), want.makespan.to_bits(), "{label}");
}

#[test]
fn report_is_bit_identical_across_workers_dataplane_and_interleaving() {
    // Reference: fully serial host — one worker, barrier engine, row
    // data plane, jobs executed inline at dispatch.
    let reference = run(Policy::Fair, 1, false, false, Interleave::Serial);
    assert_eq!(reference.completed, 56);
    assert!(reference.rejected.is_empty());

    let sweeps: [(&str, usize, bool, bool, Interleave); 5] = [
        (
            "w8 pipeline+batch threads",
            8,
            true,
            true,
            Interleave::TenantThreads,
        ),
        (
            "w8 batch-only threads",
            8,
            false,
            true,
            Interleave::TenantThreads,
        ),
        (
            "w8 pipeline-only serial",
            8,
            true,
            false,
            Interleave::Serial,
        ),
        (
            "w2 pipeline+batch threads",
            2,
            true,
            true,
            Interleave::TenantThreads,
        ),
        (
            "w1 rows threads",
            1,
            false,
            false,
            Interleave::TenantThreads,
        ),
    ];
    for (label, workers, pipeline, batch, interleave) in sweeps {
        let got = run(Policy::Fair, workers, pipeline, batch, interleave);
        assert_identical(label, &got, &reference);
    }
}

#[test]
fn fifo_and_fair_disagree_on_timing_but_not_tables() {
    // A 16-tenant trace over 4 slots keeps a standing queue, so dispatch
    // order actually exercises the policies (the 4-tenant smoke trace is
    // light enough that both drain arrivals as they come).
    let trace = generate(16, 96, 5);
    let run16 = |policy: Policy, workers: usize, batch: bool, interleave: Interleave| {
        let cfg = ServerConfig {
            policy,
            slots: 4,
            engine: engine(workers, true, batch),
            interleave,
            ..ServerConfig::default()
        };
        serve(&trace, &cfg).unwrap()
    };
    let fair = run16(Policy::Fair, 8, true, Interleave::TenantThreads);
    let fifo = run16(Policy::Fifo, 8, true, Interleave::TenantThreads);
    // Same jobs, same bytes: the policy-independent fingerprint matches.
    assert_eq!(fair.tables_text(), fifo.tables_text());
    // But they are genuinely different schedules.
    assert_ne!(
        fair.per_job
            .iter()
            .map(|r| r.dispatched.to_bits())
            .collect::<Vec<_>>(),
        fifo.per_job
            .iter()
            .map(|r| r.dispatched.to_bits())
            .collect::<Vec<_>>(),
        "fair and fifo produced identical dispatch times — no contention?"
    );
    // And FIFO itself replays bit-identically on a different host shape.
    let fifo2 = run16(Policy::Fifo, 2, false, Interleave::Serial);
    assert_identical("fifo w2 rows serial", &fifo2, &fifo);
}

#[test]
fn serve_rejects_unsound_configurations() {
    let trace = generate(2, 8, 3);
    // Pre-execution interleaving with a queue that can reject is unsound.
    let err = serve(
        &trace,
        &ServerConfig {
            queue_cap: 4,
            interleave: Interleave::TenantThreads,
            engine: engine(2, true, true),
            ..ServerConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("queue_cap"), "{err}");
    // Zero slots is meaningless.
    let err = serve(
        &trace,
        &ServerConfig {
            slots: 0,
            engine: engine(2, true, true),
            ..ServerConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("slots"), "{err}");
    // A job that cannot fit guarantee + shared pool would stall forever.
    let err = serve(
        &trace,
        &ServerConfig {
            mem_shared: 1 << 10,
            mem_guarantee: 1 << 10,
            engine: engine(2, true, true),
            ..ServerConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("reserve at most"), "{err}");
}

#[test]
fn report_round_trips_through_json() {
    let report = run(Policy::Fair, 2, true, true, Interleave::TenantThreads);
    let parsed = ServeReport::parse(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(format!("{parsed:?}"), format!("{report:?}"));
}
