//! Contention behaviour of the job server: weighted-fair scheduling
//! protects interactive tenants' tail latency from a batch tenant,
//! concurrency scales throughput, and admission control (bounded queue,
//! memory ledger) degrades deterministically.

use jobserver::{generate, serve, Interleave, Policy, ServerConfig};

/// Test-sized engine: small uniform cluster, modest parallelism, so a
/// 16-tenant trace runs in seconds under `cargo test`.
fn engine() -> engine::EngineOptions {
    engine::EngineOptions {
        cluster: simcluster::uniform_cluster(4, 4, 2.0),
        default_parallelism: 8,
        block_size: 128 * 1024,
        workers: 4,
        ..jobserver::server_engine_defaults()
    }
}

fn config(policy: Policy, slots: usize) -> ServerConfig {
    ServerConfig {
        policy,
        slots,
        engine: engine(),
        interleave: Interleave::TenantThreads,
        ..ServerConfig::default()
    }
}

#[test]
fn fair_beats_fifo_on_interactive_p99_under_contention() {
    let trace = generate(16, 224, 5);
    let fair = serve(&trace, &config(Policy::Fair, 8)).unwrap();
    let fifo = serve(&trace, &config(Policy::Fifo, 8)).unwrap();
    eprintln!(
        "fair: p50={:.3} p99={:.3} p99i={:.3} tput={:.4} makespan={:.1}",
        fair.p50_latency, fair.p99_latency, fair.p99_interactive, fair.throughput, fair.makespan
    );
    eprintln!(
        "fifo: p50={:.3} p99={:.3} p99i={:.3} tput={:.4} makespan={:.1}",
        fifo.p50_latency, fifo.p99_latency, fifo.p99_interactive, fifo.throughput, fifo.makespan
    );
    assert_eq!(fair.completed, trace.jobs.len());
    assert_eq!(fifo.completed, trace.jobs.len());
    // The headline: fair-share shields interactive tenants' p99.
    assert!(
        fair.p99_interactive < fifo.p99_interactive,
        "fair p99_interactive {} !< fifo {}",
        fair.p99_interactive,
        fifo.p99_interactive
    );
    // Both policies run the same jobs to the same bytes.
    assert_eq!(fair.tables_text(), fifo.tables_text());
}

#[test]
fn concurrency_scales_throughput_over_serial() {
    let trace = generate(16, 224, 5);
    let wide = serve(&trace, &config(Policy::Fair, 8)).unwrap();
    let serial = serve(&trace, &config(Policy::Fair, 1)).unwrap();
    eprintln!(
        "slots=8 tput={:.4}, slots=1 tput={:.4}, ratio={:.2}",
        wide.throughput,
        serial.throughput,
        wide.throughput / serial.throughput
    );
    assert!(
        wide.throughput >= 2.0 * serial.throughput,
        "16-tenant throughput {} not >= 2x serial {}",
        wide.throughput,
        serial.throughput
    );
}

#[test]
fn bounded_queue_rejects_deterministically() {
    let trace = generate(4, 56, 11);
    let cfg = ServerConfig {
        queue_cap: 2,
        interleave: Interleave::Serial,
        ..config(Policy::Fair, 1)
    };
    let a = serve(&trace, &cfg).unwrap();
    let b = serve(&trace, &cfg).unwrap();
    eprintln!("rejected {} of {}", a.rejected.len(), trace.jobs.len());
    assert!(!a.rejected.is_empty(), "tiny queue should reject");
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.completed + a.rejected.len(), trace.jobs.len());
    // Completed jobs still report the same tables as an unbounded run.
    let full = serve(&trace, &config(Policy::Fair, 1)).unwrap();
    for row in &a.per_job {
        let reference = full.per_job.iter().find(|r| r.id == row.id).unwrap();
        assert_eq!(row.hash, reference.hash);
        assert_eq!(row.rows, reference.rows);
    }
}

#[test]
fn tight_memory_budget_stalls_but_preserves_results() {
    let trace = generate(4, 56, 11);
    let roomy = serve(&trace, &config(Policy::Fair, 8)).unwrap();
    // Budgets near the largest single job's demand: jobs still fit one at
    // a time per tenant, but concurrent dispatches contend for the tiny
    // shared pool and stall.
    let biggest = trace
        .jobs
        .iter()
        .map(|j| jobserver::mem_demand(j.kind, j.scale))
        .max()
        .unwrap();
    let tight = ServerConfig {
        mem_shared: biggest,
        mem_guarantee: 64 << 10,
        ..config(Policy::Fair, 8)
    };
    let got = serve(&trace, &tight).unwrap();
    eprintln!("mem_stalls={} (roomy {})", got.mem_stalls, roomy.mem_stalls);
    assert_eq!(roomy.mem_stalls, 0);
    assert!(got.mem_stalls > 0, "tight ledger should stall dispatches");
    assert_eq!(got.completed, trace.jobs.len());
    assert_eq!(got.tables_text(), roomy.tables_text());
    // Stalls can only delay completions, never speed them up.
    assert!(got.makespan >= roomy.makespan);
}

#[test]
fn cross_job_cache_reuse_is_visible() {
    let trace = generate(4, 56, 11);
    let report = serve(&trace, &config(Policy::Fair, 8)).unwrap();
    eprintln!("cache_hits={}", report.cache_hits);
    // The loadgen draws seeds from a 3-value pool per tenant, so repeat
    // (kind, scale, seed) triples are rare; hits come from repeat jobs.
    assert!(report.per_job.iter().any(|r| r.cache_hit) == (report.cache_hits > 0));
}
