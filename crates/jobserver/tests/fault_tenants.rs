//! Cross-tenant fault isolation: one tenant's jobs run under a
//! deterministic fault-injection plan (task failures, retries, a slow
//! node) while another tenant runs concurrently on the same server. The
//! unaffected tenant's result tables must be bit-identical to its solo
//! (fault-free, single-tenant) run — faults perturb the victim's virtual
//! timings, never anyone's bytes.

use jobserver::{serve, Interleave, JobTrace, ServerConfig};

const PLAN_SMOKE: &str = include_str!("../../../plans/plan_smoke.plan");

fn engine() -> engine::EngineOptions {
    engine::EngineOptions {
        cluster: simcluster::uniform_cluster(4, 4, 2.0),
        default_parallelism: 8,
        block_size: 128 * 1024,
        workers: 4,
        ..jobserver::server_engine_defaults()
    }
}

const TRACE: &str = "\
tenant victim weight 1
tenant clean weight 2
job victim at 0 sql scale 0.5 seed 21
job clean at 0.5 wordcount scale 0.1 seed 22
job victim at 1 kmeans scale 0.4 seed 21
job clean at 2 logreg scale 0.1 seed 22
job clean at 3 sql scale 0.12 seed 23
job victim at 4 wordcount scale 0.5 seed 21
job clean at 5 wordcount scale 0.1 seed 22
";

const CLEAN_SOLO: &str = "\
tenant clean weight 2
job clean at 0.5 wordcount scale 0.1 seed 22
job clean at 2 logreg scale 0.1 seed 22
job clean at 3 sql scale 0.12 seed 23
job clean at 5 wordcount scale 0.1 seed 22
";

fn clean_rows(report: &jobserver::ServeReport) -> Vec<(String, usize, u64, bool)> {
    report
        .per_job
        .iter()
        .filter(|r| r.tenant == "clean")
        .map(|r| (r.kind.clone(), r.rows, r.hash, r.cache_hit))
        .collect()
}

#[test]
fn faulted_tenant_does_not_perturb_neighbour_tables() {
    let trace = JobTrace::from_text(TRACE).unwrap();
    let plan = engine::FaultPlan::from_text(PLAN_SMOKE).unwrap();

    let faulted = serve(
        &trace,
        &ServerConfig {
            engine: engine(),
            fault_plans: vec![("victim".to_string(), plan)],
            interleave: Interleave::TenantThreads,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(faulted.completed, trace.jobs.len());
    assert!(
        faulted.faults_injected > 0,
        "plan_smoke injected no faults — the victim never hit the plan"
    );

    // The clean tenant, alone on a fault-free server, job for job.
    let solo = serve(
        &JobTrace::from_text(CLEAN_SOLO).unwrap(),
        &ServerConfig {
            engine: engine(),
            interleave: Interleave::TenantThreads,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(clean_rows(&faulted), clean_rows(&solo));

    // The victim's own tables also survive its faults: a fault-free run
    // of the full trace reports the same fingerprints for every job.
    let fault_free = serve(
        &trace,
        &ServerConfig {
            engine: engine(),
            interleave: Interleave::Serial,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(faulted.tables_text(), fault_free.tables_text());
    // But the faults genuinely cost the victim virtual time.
    assert!(
        faulted.makespan > fault_free.makespan,
        "retries and a slow node should stretch the victim's makespan \
         ({} vs {})",
        faulted.makespan,
        fault_free.makespan
    );

    // Determinism under faults: an identical faulted run is bit-identical.
    let again = serve(
        &trace,
        &ServerConfig {
            engine: engine(),
            fault_plans: vec![(
                "victim".to_string(),
                engine::FaultPlan::from_text(PLAN_SMOKE).unwrap(),
            )],
            interleave: Interleave::Serial,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(format!("{again:?}"), format!("{faulted:?}"));
}

#[test]
fn fault_plan_for_unknown_tenant_is_rejected() {
    let trace = JobTrace::from_text(TRACE).unwrap();
    let plan = engine::FaultPlan::from_text(PLAN_SMOKE).unwrap();
    let err = serve(
        &trace,
        &ServerConfig {
            engine: engine(),
            fault_plans: vec![("nobody".to_string(), plan)],
            ..ServerConfig::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("unknown tenant"), "{err}");
}
