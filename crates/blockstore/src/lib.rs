//! An HDFS-like replicated block store.
//!
//! The paper's Spark deployment reads its input from HDFS; CHOPPER's
//! evaluation additionally reports disk transactions per second (Fig. 14).
//! This substrate provides the pieces the engine needs from a distributed
//! filesystem:
//!
//! * files split into fixed-size blocks,
//! * capacity-aware replica placement across data nodes,
//! * block → node locality lookup (drives the input-stage task placement),
//! * read/write transaction counters.
//!
//! Data content is not stored here — the engine materializes records itself;
//! the block store tracks *where bytes live* and *how much I/O happened*.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Index of a data node (aligned with `simcluster::NodeId`).
pub type NodeId = usize;

/// Metadata of one stored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte length of this block (≤ the store's block size).
    pub size: u64,
    /// Nodes holding a replica; the first entry is the primary.
    pub replicas: Vec<NodeId>,
}

/// Placement failure: not enough nodes with free capacity to hold a
/// block at the required replication factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFull {
    /// Size of the block that could not be placed.
    pub block_bytes: u64,
    /// Replicas required per block.
    pub replication: usize,
}

impl std::fmt::Display for StoreFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "block store full: cannot place a {}-byte block with {} replica(s)",
            self.block_bytes, self.replication
        )
    }
}

impl std::error::Error for StoreFull {}

/// Aggregate I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Completed block-read operations.
    pub reads: u64,
    /// Completed block-write operations (one per stored replica).
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written (counting every replica).
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct Inner {
    files: HashMap<String, Vec<BlockMeta>>,
    used_bytes: Vec<u64>,
    counters: IoCounters,
}

/// A replicated block store over `num_nodes` data nodes.
#[derive(Debug)]
pub struct BlockStore {
    num_nodes: usize,
    block_size: u64,
    replication: usize,
    /// Per-node byte capacity; `None` means unbounded.
    capacity: Option<u64>,
    inner: Mutex<Inner>,
}

impl BlockStore {
    /// Creates a store with HDFS-ish defaults: 128 MB blocks, 3-way
    /// replication (capped at the node count).
    pub fn new(num_nodes: usize) -> Self {
        Self::with_config(num_nodes, 128 * 1024 * 1024, 3)
    }

    /// Creates a store with explicit block size and replication factor.
    ///
    /// # Panics
    /// Panics if `num_nodes` or `block_size` or `replication` is zero.
    pub fn with_config(num_nodes: usize, block_size: u64, replication: usize) -> Self {
        Self::with_capacity(num_nodes, block_size, replication, None)
    }

    /// Creates a store with an optional per-node byte capacity. When a
    /// capacity is set, placement skips full nodes and
    /// [`BlockStore::try_create_file`] errors once no placement exists.
    ///
    /// # Panics
    /// Panics if `num_nodes` or `block_size` or `replication` is zero.
    pub fn with_capacity(
        num_nodes: usize,
        block_size: u64,
        replication: usize,
        capacity: Option<u64>,
    ) -> Self {
        assert!(num_nodes > 0, "need at least one data node");
        assert!(block_size > 0, "block size must be positive");
        assert!(replication > 0, "replication factor must be positive");
        BlockStore {
            num_nodes,
            block_size,
            replication: replication.min(num_nodes),
            capacity,
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                used_bytes: vec![0; num_nodes],
                counters: IoCounters::default(),
            }),
        }
    }

    /// The store's block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Creates (or replaces) a file of `total_bytes`, splitting it into
    /// blocks and placing replicas on the least-loaded nodes.
    ///
    /// Returns the number of blocks created. Writing counts toward the
    /// transaction counters (one write per stored replica).
    ///
    /// # Panics
    /// Panics if a per-node capacity is set and placement is impossible;
    /// use [`BlockStore::try_create_file`] when capacity can run out.
    pub fn create_file(&self, name: &str, total_bytes: u64) -> usize {
        self.try_create_file(name, total_bytes)
            .expect("block store capacity exhausted")
    }

    /// Fallible variant of [`BlockStore::create_file`]: returns
    /// `Err(StoreFull)` when no node has room for a block, leaving the
    /// store (including any previous file under `name`) untouched.
    pub fn try_create_file(&self, name: &str, total_bytes: u64) -> Result<usize, StoreFull> {
        let mut inner = self.inner.lock();
        // Plan placement on a scratch copy of the usage vector so a
        // failure mid-file leaves the store unchanged. The scratch view
        // pretends the old file is already gone (re-creation replaces).
        let mut used = inner.used_bytes.clone();
        if let Some(old) = inner.files.get(name) {
            for b in old {
                for &n in &b.replicas {
                    used[n] = used[n].saturating_sub(b.size);
                }
            }
        }

        let mut blocks = Vec::new();
        let mut remaining = total_bytes;
        while remaining > 0 || blocks.is_empty() {
            let size = remaining
                .min(self.block_size)
                .max(if total_bytes == 0 { 0 } else { 1 });
            let replicas = Self::place(&used, self.replication, self.capacity, size)?;
            for &n in &replicas {
                used[n] += size;
            }
            blocks.push(BlockMeta { size, replicas });
            if remaining == 0 {
                break; // empty file still gets one zero-length block
            }
            remaining -= size;
        }

        // Commit: release the old file, charge the new blocks.
        if let Some(old) = inner.files.remove(name) {
            for b in &old {
                for &n in &b.replicas {
                    inner.used_bytes[n] = inner.used_bytes[n].saturating_sub(b.size);
                }
            }
        }
        for b in &blocks {
            for &n in &b.replicas {
                inner.used_bytes[n] += b.size;
                inner.counters.writes += 1;
                inner.counters.bytes_written += b.size;
            }
        }
        let n = blocks.len();
        inner.files.insert(name.to_string(), blocks);
        Ok(n)
    }

    /// Creates (or replaces) an unreplicated file pinned entirely to
    /// `node` — the engine's spill path writes evicted cache partitions
    /// to the local disk of the node that held them. Capacity is not
    /// enforced for spill files. Returns the number of blocks created.
    pub fn create_file_on(&self, name: &str, total_bytes: u64, node: NodeId) -> usize {
        assert!(node < self.num_nodes, "spill target node out of range");
        let mut inner = self.inner.lock();
        if let Some(old) = inner.files.remove(name) {
            for b in &old {
                for &n in &b.replicas {
                    inner.used_bytes[n] = inner.used_bytes[n].saturating_sub(b.size);
                }
            }
        }
        let mut blocks = Vec::new();
        let mut remaining = total_bytes;
        while remaining > 0 || blocks.is_empty() {
            let size = remaining
                .min(self.block_size)
                .max(if total_bytes == 0 { 0 } else { 1 });
            inner.used_bytes[node] += size;
            inner.counters.writes += 1;
            inner.counters.bytes_written += size;
            blocks.push(BlockMeta {
                size,
                replicas: vec![node],
            });
            if remaining == 0 {
                break;
            }
            remaining -= size;
        }
        let n = blocks.len();
        inner.files.insert(name.to_string(), blocks);
        n
    }

    /// Picks the `replication` least-loaded distinct nodes with room for
    /// a `size`-byte block.
    fn place(
        used: &[u64],
        replication: usize,
        capacity: Option<u64>,
        size: u64,
    ) -> Result<Vec<NodeId>, StoreFull> {
        let mut order: Vec<NodeId> = (0..used.len())
            .filter(|&n| capacity.is_none_or(|cap| used[n] + size <= cap))
            .collect();
        // Stable tiebreak on node id keeps placement deterministic.
        order.sort_by_key(|&n| (used[n], n));
        if order.len() < replication {
            return Err(StoreFull {
                block_bytes: size,
                replication,
            });
        }
        order.truncate(replication);
        Ok(order)
    }

    /// The block list of a file, if it exists.
    pub fn file_blocks(&self, name: &str) -> Option<Vec<BlockMeta>> {
        self.inner.lock().files.get(name).cloned()
    }

    /// Total length of a file in bytes.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .files
            .get(name)
            .map(|bs| bs.iter().map(|b| b.size).sum())
    }

    /// Records a full read of the file, charging one read transaction per
    /// block, and returns the block list for locality-aware scheduling.
    pub fn read_file(&self, name: &str) -> Option<Vec<BlockMeta>> {
        let mut inner = self.inner.lock();
        let blocks = inner.files.get(name).cloned()?;
        for b in &blocks {
            inner.counters.reads += 1;
            inner.counters.bytes_read += b.size;
        }
        Some(blocks)
    }

    /// Deterministic serving-replica choice for one block under a set of
    /// down nodes: the primary when it survives, otherwise the
    /// *lowest-id* surviving replica. Scanning the replica list in
    /// node-id order (never map iteration order) keeps the choice
    /// identical across runs, which the engine's fault-recovery
    /// equivalence tests depend on. Returns `None` when the file/block
    /// is missing or every replica is down.
    pub fn select_replica(&self, name: &str, block: usize, down: &[bool]) -> Option<NodeId> {
        let inner = self.inner.lock();
        let meta = inner.files.get(name)?.get(block)?;
        Self::pick_from(&meta.replicas, down)
    }

    /// Like [`BlockStore::select_replica`], but also charges one read
    /// transaction for the block — the accounting a recovery-time replica
    /// read produces.
    pub fn read_replica(&self, name: &str, block: usize, down: &[bool]) -> Option<NodeId> {
        let mut inner = self.inner.lock();
        let meta = inner.files.get(name)?.get(block)?.clone();
        let node = Self::pick_from(&meta.replicas, down)?;
        inner.counters.reads += 1;
        inner.counters.bytes_read += meta.size;
        Some(node)
    }

    /// The least-loaded surviving node, ties broken by node id — the same
    /// deterministic ordering [`place`](BlockStore::try_create_file) uses.
    /// The engine re-homes data whose holder was lost onto this node.
    /// Returns `None` when every node is down.
    pub fn pick_survivor(&self, down: &[bool]) -> Option<NodeId> {
        let inner = self.inner.lock();
        (0..self.num_nodes)
            .filter(|&n| !down.get(n).copied().unwrap_or(false))
            .min_by_key(|&n| (inner.used_bytes[n], n))
    }

    fn pick_from(replicas: &[NodeId], down: &[bool]) -> Option<NodeId> {
        let alive = |&&n: &&NodeId| !down.get(n).copied().unwrap_or(false);
        match replicas.first() {
            Some(&primary) if alive(&&primary) => Some(primary),
            _ => replicas.iter().filter(alive).min().copied(),
        }
    }

    /// Deletes a file, releasing its space. Returns whether it existed.
    pub fn delete_file(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.remove(name) {
            Some(blocks) => {
                for b in &blocks {
                    for &n in &b.replicas {
                        inner.used_bytes[n] = inner.used_bytes[n].saturating_sub(b.size);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Bytes stored per node (all replicas counted).
    pub fn used_bytes(&self) -> Vec<u64> {
        self.inner.lock().used_bytes.clone()
    }

    /// Snapshot of the I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.inner.lock().counters
    }

    /// Number of data nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Per-node byte capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_splits_into_block_sized_pieces() {
        let s = BlockStore::with_config(3, 100, 2);
        let n = s.create_file("f", 250);
        assert_eq!(n, 3);
        let blocks = s.file_blocks("f").unwrap();
        assert_eq!(
            blocks.iter().map(|b| b.size).collect::<Vec<_>>(),
            vec![100, 100, 50]
        );
        assert_eq!(s.file_len("f"), Some(250));
    }

    #[test]
    fn replication_caps_at_node_count() {
        let s = BlockStore::with_config(2, 100, 3);
        assert_eq!(s.replication(), 2);
        s.create_file("f", 100);
        let b = &s.file_blocks("f").unwrap()[0];
        assert_eq!(b.replicas.len(), 2);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let s = BlockStore::with_config(5, 10, 3);
        s.create_file("f", 100);
        for b in s.file_blocks("f").unwrap() {
            let mut r = b.replicas.clone();
            r.sort_unstable();
            r.dedup();
            assert_eq!(r.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn placement_balances_load() {
        let s = BlockStore::with_config(4, 100, 1);
        s.create_file("f", 100 * 8); // 8 blocks over 4 nodes
        let used = s.used_bytes();
        assert!(
            used.iter().all(|&u| u == 200),
            "even spread expected, got {used:?}"
        );
    }

    #[test]
    fn read_counts_transactions() {
        let s = BlockStore::with_config(3, 100, 1);
        s.create_file("f", 250);
        s.read_file("f").unwrap();
        let c = s.counters();
        assert_eq!(c.reads, 3);
        assert_eq!(c.bytes_read, 250);
        assert_eq!(c.writes, 3);
        assert_eq!(c.bytes_written, 250);
    }

    #[test]
    fn replicated_writes_count_per_replica() {
        let s = BlockStore::with_config(3, 100, 3);
        s.create_file("f", 100);
        let c = s.counters();
        assert_eq!(c.writes, 3);
        assert_eq!(c.bytes_written, 300);
    }

    #[test]
    fn delete_releases_space() {
        let s = BlockStore::with_config(2, 100, 1);
        s.create_file("f", 300);
        assert!(s.used_bytes().iter().sum::<u64>() > 0);
        assert!(s.delete_file("f"));
        assert_eq!(s.used_bytes().iter().sum::<u64>(), 0);
        assert!(!s.delete_file("f"));
        assert_eq!(s.file_blocks("f"), None);
    }

    #[test]
    fn recreate_replaces_old_file() {
        let s = BlockStore::with_config(2, 100, 1);
        s.create_file("f", 500);
        s.create_file("f", 100);
        assert_eq!(s.file_len("f"), Some(100));
        assert_eq!(s.used_bytes().iter().sum::<u64>(), 100);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let s = BlockStore::with_config(2, 100, 1);
        assert_eq!(s.create_file("empty", 0), 1);
        assert_eq!(s.file_len("empty"), Some(0));
    }

    #[test]
    fn missing_file_reads_none() {
        let s = BlockStore::new(3);
        assert_eq!(s.read_file("nope"), None);
        assert_eq!(s.file_len("nope"), None);
    }

    #[test]
    fn capacity_exhaustion_errors_without_mutating() {
        let s = BlockStore::with_capacity(2, 100, 1, Some(150));
        assert_eq!(s.try_create_file("a", 250), Ok(3)); // 100+100+50 over 2 nodes
        let before = s.used_bytes();
        let err = s.try_create_file("b", 200).unwrap_err();
        assert_eq!(err.replication, 1);
        assert_eq!(s.used_bytes(), before, "failed create must not leak space");
        assert_eq!(s.file_blocks("b"), None);
    }

    #[test]
    fn failed_recreate_keeps_old_file() {
        let s = BlockStore::with_capacity(1, 100, 1, Some(100));
        assert_eq!(s.try_create_file("f", 80), Ok(1));
        assert!(s.try_create_file("f", 300).is_err());
        assert_eq!(
            s.file_len("f"),
            Some(80),
            "old file survives a failed replace"
        );
        assert_eq!(s.used_bytes(), vec![80]);
    }

    #[test]
    fn capacity_placement_skips_full_nodes() {
        let s = BlockStore::with_capacity(3, 100, 1, Some(100));
        s.create_file_on("pin", 100, 0); // node 0 full
        let blocks = s.try_create_file("f", 200).unwrap();
        assert_eq!(blocks, 2);
        for b in s.file_blocks("f").unwrap() {
            assert_ne!(b.replicas[0], 0, "full node must not receive blocks");
        }
    }

    #[test]
    fn spill_file_pins_to_node() {
        let s = BlockStore::with_config(4, 100, 3);
        let n = s.create_file_on("__spill/r1.p0", 250, 2);
        assert_eq!(n, 3);
        for b in s.file_blocks("__spill/r1.p0").unwrap() {
            assert_eq!(
                b.replicas,
                vec![2],
                "spill blocks are unreplicated + pinned"
            );
        }
        assert_eq!(s.used_bytes(), vec![0, 0, 250, 0]);
        let c = s.counters();
        assert_eq!(c.writes, 3);
        assert_eq!(c.bytes_written, 250);
    }

    #[test]
    fn replica_selection_prefers_surviving_primary_then_lowest_id() {
        // Load nodes unevenly so the replica list is NOT in node-id order:
        // pre-load nodes 0 and 1, leaving 4, 3, 2 the least-loaded (in
        // (used, id) order) for the next placement.
        let s = BlockStore::with_config(5, 100, 3);
        s.create_file_on("ballast0", 300, 0);
        s.create_file_on("ballast1", 200, 1);
        s.create_file_on("ballast2", 100, 2);
        s.create_file("f", 100);
        let replicas = s.file_blocks("f").unwrap()[0].replicas.clone();
        assert_eq!(replicas, vec![3, 4, 2], "placement order is (used, id)");

        let up = vec![false; 5];
        assert_eq!(s.select_replica("f", 0, &up), Some(3), "primary when alive");

        // Primary down: the *lowest-id* surviving replica serves — node 2,
        // not node 4, even though 4 precedes 2 in the placement list.
        let mut down = vec![false; 5];
        down[3] = true;
        assert_eq!(s.select_replica("f", 0, &down), Some(2));

        down[2] = true;
        assert_eq!(s.select_replica("f", 0, &down), Some(4));

        down[4] = true;
        assert_eq!(s.select_replica("f", 0, &down), None, "all replicas lost");

        assert_eq!(s.select_replica("f", 9, &up), None, "missing block");
        assert_eq!(s.select_replica("nope", 0, &up), None, "missing file");
    }

    #[test]
    fn read_replica_charges_one_read() {
        let s = BlockStore::with_config(4, 100, 2);
        s.create_file("f", 100);
        let before = s.counters();
        let mut down = vec![false; 4];
        let primary = s.file_blocks("f").unwrap()[0].replicas[0];
        down[primary] = true;
        let served = s.read_replica("f", 0, &down).unwrap();
        assert_ne!(served, primary);
        let after = s.counters();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.bytes_read, before.bytes_read + 100);
    }

    #[test]
    fn pick_survivor_is_deterministic_and_load_aware() {
        let s = BlockStore::with_config(4, 100, 1);
        s.create_file_on("x", 300, 0);
        s.create_file_on("y", 100, 1);
        let none = vec![false; 4];
        assert_eq!(s.pick_survivor(&none), Some(2), "least loaded, lowest id");
        let mut down = vec![false; 4];
        down[2] = true;
        down[3] = true;
        assert_eq!(s.pick_survivor(&down), Some(1));
        assert_eq!(s.pick_survivor(&[true; 4]), None);
    }

    #[test]
    fn deterministic_placement() {
        let mk = || {
            let s = BlockStore::with_config(5, 64, 2);
            s.create_file("a", 1000);
            s.create_file("b", 512);
            (s.file_blocks("a").unwrap(), s.file_blocks("b").unwrap())
        };
        assert_eq!(mk(), mk());
    }
}
