//! An HDFS-like replicated block store.
//!
//! The paper's Spark deployment reads its input from HDFS; CHOPPER's
//! evaluation additionally reports disk transactions per second (Fig. 14).
//! This substrate provides the pieces the engine needs from a distributed
//! filesystem:
//!
//! * files split into fixed-size blocks,
//! * capacity-aware replica placement across data nodes,
//! * block → node locality lookup (drives the input-stage task placement),
//! * read/write transaction counters.
//!
//! Data content is not stored here — the engine materializes records itself;
//! the block store tracks *where bytes live* and *how much I/O happened*.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Index of a data node (aligned with `simcluster::NodeId`).
pub type NodeId = usize;

/// Metadata of one stored block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Byte length of this block (≤ the store's block size).
    pub size: u64,
    /// Nodes holding a replica; the first entry is the primary.
    pub replicas: Vec<NodeId>,
}

/// Aggregate I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Completed block-read operations.
    pub reads: u64,
    /// Completed block-write operations (one per stored replica).
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written (counting every replica).
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct Inner {
    files: HashMap<String, Vec<BlockMeta>>,
    used_bytes: Vec<u64>,
    counters: IoCounters,
}

/// A replicated block store over `num_nodes` data nodes.
#[derive(Debug)]
pub struct BlockStore {
    num_nodes: usize,
    block_size: u64,
    replication: usize,
    inner: Mutex<Inner>,
}

impl BlockStore {
    /// Creates a store with HDFS-ish defaults: 128 MB blocks, 3-way
    /// replication (capped at the node count).
    pub fn new(num_nodes: usize) -> Self {
        Self::with_config(num_nodes, 128 * 1024 * 1024, 3)
    }

    /// Creates a store with explicit block size and replication factor.
    ///
    /// # Panics
    /// Panics if `num_nodes` or `block_size` or `replication` is zero.
    pub fn with_config(num_nodes: usize, block_size: u64, replication: usize) -> Self {
        assert!(num_nodes > 0, "need at least one data node");
        assert!(block_size > 0, "block size must be positive");
        assert!(replication > 0, "replication factor must be positive");
        BlockStore {
            num_nodes,
            block_size,
            replication: replication.min(num_nodes),
            inner: Mutex::new(Inner {
                files: HashMap::new(),
                used_bytes: vec![0; num_nodes],
                counters: IoCounters::default(),
            }),
        }
    }

    /// The store's block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// The effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Creates (or replaces) a file of `total_bytes`, splitting it into
    /// blocks and placing replicas on the least-loaded nodes.
    ///
    /// Returns the number of blocks created. Writing counts toward the
    /// transaction counters (one write per stored replica).
    pub fn create_file(&self, name: &str, total_bytes: u64) -> usize {
        let mut inner = self.inner.lock();
        if let Some(old) = inner.files.remove(name) {
            for b in &old {
                for &n in &b.replicas {
                    inner.used_bytes[n] = inner.used_bytes[n].saturating_sub(b.size);
                }
            }
        }

        let mut blocks = Vec::new();
        let mut remaining = total_bytes;
        while remaining > 0 || blocks.is_empty() {
            let size = remaining
                .min(self.block_size)
                .max(if total_bytes == 0 { 0 } else { 1 });
            let replicas = Self::place(&inner.used_bytes, self.replication);
            for &n in &replicas {
                inner.used_bytes[n] += size;
                inner.counters.writes += 1;
                inner.counters.bytes_written += size;
            }
            blocks.push(BlockMeta { size, replicas });
            if remaining == 0 {
                break; // empty file still gets one zero-length block
            }
            remaining -= size;
        }
        let n = blocks.len();
        inner.files.insert(name.to_string(), blocks);
        n
    }

    /// Picks the `replication` least-loaded distinct nodes.
    fn place(used: &[u64], replication: usize) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..used.len()).collect();
        // Stable tiebreak on node id keeps placement deterministic.
        order.sort_by_key(|&n| (used[n], n));
        order.truncate(replication);
        order
    }

    /// The block list of a file, if it exists.
    pub fn file_blocks(&self, name: &str) -> Option<Vec<BlockMeta>> {
        self.inner.lock().files.get(name).cloned()
    }

    /// Total length of a file in bytes.
    pub fn file_len(&self, name: &str) -> Option<u64> {
        self.inner
            .lock()
            .files
            .get(name)
            .map(|bs| bs.iter().map(|b| b.size).sum())
    }

    /// Records a full read of the file, charging one read transaction per
    /// block, and returns the block list for locality-aware scheduling.
    pub fn read_file(&self, name: &str) -> Option<Vec<BlockMeta>> {
        let mut inner = self.inner.lock();
        let blocks = inner.files.get(name).cloned()?;
        for b in &blocks {
            inner.counters.reads += 1;
            inner.counters.bytes_read += b.size;
        }
        Some(blocks)
    }

    /// Deletes a file, releasing its space. Returns whether it existed.
    pub fn delete_file(&self, name: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.remove(name) {
            Some(blocks) => {
                for b in &blocks {
                    for &n in &b.replicas {
                        inner.used_bytes[n] = inner.used_bytes[n].saturating_sub(b.size);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Bytes stored per node (all replicas counted).
    pub fn used_bytes(&self) -> Vec<u64> {
        self.inner.lock().used_bytes.clone()
    }

    /// Snapshot of the I/O counters.
    pub fn counters(&self) -> IoCounters {
        self.inner.lock().counters
    }

    /// Number of data nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_splits_into_block_sized_pieces() {
        let s = BlockStore::with_config(3, 100, 2);
        let n = s.create_file("f", 250);
        assert_eq!(n, 3);
        let blocks = s.file_blocks("f").unwrap();
        assert_eq!(
            blocks.iter().map(|b| b.size).collect::<Vec<_>>(),
            vec![100, 100, 50]
        );
        assert_eq!(s.file_len("f"), Some(250));
    }

    #[test]
    fn replication_caps_at_node_count() {
        let s = BlockStore::with_config(2, 100, 3);
        assert_eq!(s.replication(), 2);
        s.create_file("f", 100);
        let b = &s.file_blocks("f").unwrap()[0];
        assert_eq!(b.replicas.len(), 2);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let s = BlockStore::with_config(5, 10, 3);
        s.create_file("f", 100);
        for b in s.file_blocks("f").unwrap() {
            let mut r = b.replicas.clone();
            r.sort_unstable();
            r.dedup();
            assert_eq!(r.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn placement_balances_load() {
        let s = BlockStore::with_config(4, 100, 1);
        s.create_file("f", 100 * 8); // 8 blocks over 4 nodes
        let used = s.used_bytes();
        assert!(
            used.iter().all(|&u| u == 200),
            "even spread expected, got {used:?}"
        );
    }

    #[test]
    fn read_counts_transactions() {
        let s = BlockStore::with_config(3, 100, 1);
        s.create_file("f", 250);
        s.read_file("f").unwrap();
        let c = s.counters();
        assert_eq!(c.reads, 3);
        assert_eq!(c.bytes_read, 250);
        assert_eq!(c.writes, 3);
        assert_eq!(c.bytes_written, 250);
    }

    #[test]
    fn replicated_writes_count_per_replica() {
        let s = BlockStore::with_config(3, 100, 3);
        s.create_file("f", 100);
        let c = s.counters();
        assert_eq!(c.writes, 3);
        assert_eq!(c.bytes_written, 300);
    }

    #[test]
    fn delete_releases_space() {
        let s = BlockStore::with_config(2, 100, 1);
        s.create_file("f", 300);
        assert!(s.used_bytes().iter().sum::<u64>() > 0);
        assert!(s.delete_file("f"));
        assert_eq!(s.used_bytes().iter().sum::<u64>(), 0);
        assert!(!s.delete_file("f"));
        assert_eq!(s.file_blocks("f"), None);
    }

    #[test]
    fn recreate_replaces_old_file() {
        let s = BlockStore::with_config(2, 100, 1);
        s.create_file("f", 500);
        s.create_file("f", 100);
        assert_eq!(s.file_len("f"), Some(100));
        assert_eq!(s.used_bytes().iter().sum::<u64>(), 100);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let s = BlockStore::with_config(2, 100, 1);
        assert_eq!(s.create_file("empty", 0), 1);
        assert_eq!(s.file_len("empty"), Some(0));
    }

    #[test]
    fn missing_file_reads_none() {
        let s = BlockStore::new(3);
        assert_eq!(s.read_file("nope"), None);
        assert_eq!(s.file_len("nope"), None);
    }

    #[test]
    fn deterministic_placement() {
        let mk = || {
            let s = BlockStore::with_config(5, 64, 2);
            s.create_file("a", 1000);
            s.create_file("b", 512);
            (s.file_blocks("a").unwrap(), s.file_blocks("b").unwrap())
        };
        assert_eq!(mk(), mk());
    }
}
