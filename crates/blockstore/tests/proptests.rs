//! Property-based tests for the block store's placement and accounting
//! invariants.

use blockstore::BlockStore;
use proptest::prelude::*;

proptest! {
    /// File length is always preserved across splitting into blocks.
    #[test]
    fn file_length_is_preserved(nodes in 1usize..8, block in 1u64..10_000,
                                len in 0u64..1_000_000) {
        let s = BlockStore::with_config(nodes, block, 2);
        s.create_file("f", len);
        prop_assert_eq!(s.file_len("f"), Some(len));
        // Block count: ceil(len/block), at least one.
        let blocks = s.file_blocks("f").unwrap();
        let expected = len.div_ceil(block).max(1);
        prop_assert_eq!(blocks.len() as u64, expected);
        // No block exceeds the block size.
        for b in &blocks {
            prop_assert!(b.size <= block);
        }
    }

    /// Replicas are always distinct nodes and exactly min(replication, nodes).
    #[test]
    fn replicas_are_distinct(nodes in 1usize..10, replication in 1usize..6,
                             len in 1u64..100_000) {
        let s = BlockStore::with_config(nodes, 4096, replication);
        s.create_file("f", len);
        let expected = replication.min(nodes);
        for b in s.file_blocks("f").unwrap() {
            let mut r = b.replicas.clone();
            r.sort_unstable();
            let before = r.len();
            r.dedup();
            prop_assert_eq!(r.len(), before, "duplicate replica nodes");
            prop_assert_eq!(before, expected);
            for &n in &r {
                prop_assert!(n < nodes);
            }
        }
    }

    /// Used bytes equal replication × logical size, and deleting restores
    /// the empty state exactly.
    #[test]
    fn space_accounting_balances(files in proptest::collection::vec(
        ("[a-z]{1,6}", 0u64..200_000), 1..10))
    {
        let s = BlockStore::with_config(4, 8192, 2);
        let mut logical: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new();
        for (name, len) in &files {
            s.create_file(name, *len);
            logical.insert(name.clone(), *len); // re-creation replaces
        }
        let total_logical: u64 = logical.values().sum();
        let used: u64 = s.used_bytes().iter().sum();
        prop_assert_eq!(used, total_logical * 2, "2-way replication");
        for name in logical.keys() {
            prop_assert!(s.delete_file(name));
        }
        prop_assert_eq!(s.used_bytes().iter().sum::<u64>(), 0);
    }

    /// Placement balances: with many same-size blocks, no node holds more
    /// than twice the fair share.
    #[test]
    fn placement_is_roughly_balanced(nodes in 2usize..8, blocks in 8u64..64) {
        let s = BlockStore::with_config(nodes, 1000, 1);
        s.create_file("big", blocks * 1000);
        let used = s.used_bytes();
        let fair = (blocks * 1000) as f64 / nodes as f64;
        for &u in &used {
            prop_assert!((u as f64) <= 2.0 * fair + 1000.0,
                "node overloaded: {u} vs fair {fair}");
        }
    }

    /// With a per-node capacity, creation either succeeds with every node
    /// within capacity, or errors leaving usage exactly as before.
    #[test]
    fn capacity_is_never_exceeded(nodes in 1usize..6, cap in 1u64..5_000,
                                  files in proptest::collection::vec(
                                      ("[a-z]{1,4}", 0u64..8_000), 1..12))
    {
        let s = BlockStore::with_capacity(nodes, 512, 1, Some(cap));
        for (name, len) in &files {
            let before = s.used_bytes();
            match s.try_create_file(name, *len) {
                Ok(_) => {
                    for &u in &s.used_bytes() {
                        prop_assert!(u <= cap, "node over capacity: {u} > {cap}");
                    }
                }
                Err(_) => prop_assert_eq!(s.used_bytes(), before,
                    "failed create mutated usage"),
            }
        }
    }

    /// Read counters advance exactly once per block per read.
    #[test]
    fn read_accounting_is_exact(len in 1u64..50_000, reads in 1usize..5) {
        let s = BlockStore::with_config(3, 4096, 1);
        s.create_file("f", len);
        let blocks = s.file_blocks("f").unwrap().len() as u64;
        let before = s.counters();
        for _ in 0..reads {
            s.read_file("f").unwrap();
        }
        let after = s.counters();
        prop_assert_eq!(after.reads - before.reads, blocks * reads as u64);
        prop_assert_eq!(after.bytes_read - before.bytes_read, len * reads as u64);
    }
}
