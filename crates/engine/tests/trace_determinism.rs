//! Tracing must be purely observational: enabling the sink cannot perturb
//! simulated timings, and the virtual-clock slice of a trace must be
//! byte-identical across host worker counts.

use engine::{
    ClockFilter, Context, EngineOptions, JobMetrics, Key, PartitionerSpec, Record, TraceSink, Value,
};
use simcluster::uniform_cluster;
use std::sync::Arc;

fn options(workers: usize, trace: TraceSink) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(3, 4, 2.0),
        default_parallelism: 8,
        workers,
        trace,
        ..EngineOptions::default()
    }
}

/// Same multi-job workload shape as the pool determinism suite: fused
/// narrow chain + cache, hash reduce, range group, repartition.
fn run(workers: usize, trace: TraceSink) -> (Vec<Record>, Vec<JobMetrics>, Context) {
    let mut ctx = Context::new(options(workers, trace));

    let data: Vec<Record> = (0..3000)
        .map(|i| Record::new(Key::Int(i % 89), Value::Int(i)))
        .collect();
    let src = ctx.parallelize(data, 8, "src");
    let mapped = ctx.map(
        src,
        Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 5))),
        1e-7,
        "mapped",
    );
    let filtered = ctx.filter(
        mapped,
        Arc::new(|r: &Record| r.value.as_int() % 3 != 0),
        1e-7,
        "filtered",
    );
    ctx.cache(filtered);
    let reduced = ctx.reduce_by_key(
        filtered,
        Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
        None,
        1e-6,
        "reduced",
    );
    let out = ctx.collect(reduced, "sum-job");

    let grouped = ctx.group_by_key(filtered, Some(PartitionerSpec::range(6)), 1e-6, "grouped");
    let repart = ctx.repartition(grouped, Some(PartitionerSpec::hash(5)), "repart");
    let _ = ctx.collect(repart, "group-job");

    let jobs = ctx.jobs().to_vec();
    (out, jobs, ctx)
}

fn assert_jobs_bit_identical(a: &[JobMetrics], b: &[JobMetrics], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: job count");
    for (ja, jb) in a.iter().zip(b) {
        assert!(
            ja.start.to_bits() == jb.start.to_bits() && ja.end.to_bits() == jb.end.to_bits(),
            "{what}: job {} timing diverged",
            ja.name
        );
        assert_eq!(ja.stages.len(), jb.stages.len(), "{what}: stage count");
        for (sa, sb) in ja.stages.iter().zip(&jb.stages) {
            assert!(
                sa.start.to_bits() == sb.start.to_bits() && sa.end.to_bits() == sb.end.to_bits(),
                "{what}: stage {} timing diverged",
                sa.name
            );
            assert_eq!(
                sa.task_durations.len(),
                sb.task_durations.len(),
                "{what}: stage {} task count",
                sa.name
            );
            for (da, db) in sa.task_durations.iter().zip(&sb.task_durations) {
                assert!(
                    da.to_bits() == db.to_bits(),
                    "{what}: stage {} task duration diverged",
                    sa.name
                );
            }
        }
    }
}

/// Same workload under a memory budget tight enough to force evictions
/// and spills.
fn run_governed(workers: usize, trace: TraceSink) -> (Vec<Record>, Vec<JobMetrics>, Context) {
    let mut opts = options(workers, trace);
    opts.executor_mem = Some(28 * 1024);
    let mut ctx = Context::new(opts);

    let data: Vec<Record> = (0..3000)
        .map(|i| Record::new(Key::Int(i % 89), Value::Int(i)))
        .collect();
    let src = ctx.parallelize(data, 8, "src");
    let mapped = ctx.map(
        src,
        Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 5))),
        1e-7,
        "mapped",
    );
    ctx.cache(mapped);
    let filtered = ctx.filter(
        mapped,
        Arc::new(|r: &Record| r.value.as_int() % 3 != 0),
        1e-7,
        "filtered",
    );
    ctx.cache(filtered);
    let reduced = ctx.reduce_by_key(
        filtered,
        Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
        None,
        1e-6,
        "reduced",
    );
    let out = ctx.collect(reduced, "sum-job");

    let grouped = ctx.group_by_key(filtered, Some(PartitionerSpec::range(6)), 1e-6, "grouped");
    let repart = ctx.repartition(grouped, Some(PartitionerSpec::hash(5)), "repart");
    let _ = ctx.collect(repart, "group-job");

    let jobs = ctx.jobs().to_vec();
    (out, jobs, ctx)
}

/// Eviction/spill decisions and every simulated timing must be
/// bit-identical across host worker counts and with tracing on or off —
/// memory governance may not introduce any host-dependent behaviour.
#[test]
fn governed_run_is_bit_identical_across_workers_and_trace() {
    let (rec_ref, jobs_ref, ctx_ref) = run_governed(1, TraceSink::disabled());
    let counters_ref = ctx_ref.mem_counters();
    assert!(
        counters_ref.evictions > 0 && counters_ref.spill_bytes > 0,
        "budget must actually engage the memory manager, got {counters_ref:?}"
    );
    for workers in [1, 8] {
        for trace_on in [false, true] {
            let sink = if trace_on {
                TraceSink::enabled()
            } else {
                TraceSink::disabled()
            };
            let (rec, jobs, ctx) = run_governed(workers, sink);
            let what = format!("governed workers {workers}, trace {trace_on}");
            assert_eq!(rec_ref, rec, "{what}: records diverged");
            assert_jobs_bit_identical(&jobs_ref, &jobs, &what);
            assert_eq!(
                counters_ref,
                ctx.mem_counters(),
                "{what}: eviction/spill decisions diverged"
            );
        }
    }
}

/// A budget too large to ever bind must leave every simulated timing
/// bit-identical to the ungoverned engine — the subsystem is a strict
/// superset, not a behaviour change.
#[test]
fn generous_budget_matches_ungoverned_run() {
    let (rec_off, jobs_off, _) = run(1, TraceSink::disabled());
    let mut opts = options(1, TraceSink::disabled());
    opts.executor_mem = Some(1 << 40);
    // Re-run the same workload under the (non-binding) governor.
    let (rec_gov, jobs_gov, ctx) = {
        let saved = opts;
        // run_governed hard-codes the tight budget; inline the generous
        // variant here.
        let mut ctx = Context::new(saved);
        let data: Vec<Record> = (0..3000)
            .map(|i| Record::new(Key::Int(i % 89), Value::Int(i)))
            .collect();
        let src = ctx.parallelize(data, 8, "src");
        let mapped = ctx.map(
            src,
            Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 5))),
            1e-7,
            "mapped",
        );
        let filtered = ctx.filter(
            mapped,
            Arc::new(|r: &Record| r.value.as_int() % 3 != 0),
            1e-7,
            "filtered",
        );
        ctx.cache(filtered);
        let reduced = ctx.reduce_by_key(
            filtered,
            Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
            None,
            1e-6,
            "reduced",
        );
        let out = ctx.collect(reduced, "sum-job");
        let grouped = ctx.group_by_key(filtered, Some(PartitionerSpec::range(6)), 1e-6, "grouped");
        let repart = ctx.repartition(grouped, Some(PartitionerSpec::hash(5)), "repart");
        let _ = ctx.collect(repart, "group-job");
        let jobs = ctx.jobs().to_vec();
        (out, jobs, ctx)
    };
    assert_eq!(rec_off, rec_gov, "generous budget changed results");
    assert_jobs_bit_identical(&jobs_off, &jobs_gov, "generous budget vs ungoverned");
    let mc = ctx.mem_counters();
    assert_eq!(mc.evictions, 0, "nothing to evict under a generous budget");
    assert_eq!(mc.spills, 0);
    assert_eq!(mc.rereads, 0);
    assert_eq!(mc.recomputes, 0);
}

#[test]
fn tracing_on_vs_off_is_bit_identical() {
    for workers in [1, 8] {
        let (rec_off, jobs_off, _) = run(workers, TraceSink::disabled());
        let (rec_on, jobs_on, ctx) = run(workers, TraceSink::enabled());
        assert_eq!(rec_off, rec_on, "workers {workers}: records diverged");
        assert_jobs_bit_identical(
            &jobs_off,
            &jobs_on,
            &format!("workers {workers}, trace on/off"),
        );
        assert!(
            !ctx.trace_sink().events().is_empty(),
            "traced run must actually record events"
        );
    }
}

#[test]
fn virtual_trace_slice_is_identical_across_worker_counts() {
    let (_, jobs1, ctx1) = run(1, TraceSink::enabled());
    let (_, jobs8, ctx8) = run(8, TraceSink::enabled());
    assert_jobs_bit_identical(&jobs1, &jobs8, "workers 1 vs 8");

    let json1 = ctx1
        .trace_sink()
        .chrome_json_filtered(ClockFilter::VirtualOnly);
    let json8 = ctx8
        .trace_sink()
        .chrome_json_filtered(ClockFilter::VirtualOnly);
    assert!(!json1.is_empty());
    assert_eq!(
        json1, json8,
        "virtual trace slice must be byte-identical across worker counts"
    );
}

#[test]
fn summary_stage_rows_are_identical_across_worker_counts() {
    let (_, _, ctx1) = run(1, TraceSink::enabled());
    let (_, _, ctx8) = run(8, TraceSink::enabled());
    let (s1, s8) = (ctx1.trace_summary(), ctx8.trace_summary());
    // Stage rows are virtual-clock data: identical. Pool counters are
    // wall-clock diagnostics and legitimately differ (stealing happens
    // only with >1 worker), so they are excluded.
    assert_eq!(s1.stages, s8.stages);
    assert_eq!(s1.total_s.to_bits(), s8.total_s.to_bits());
    assert!(s1.stages.iter().all(|r| r.tasks > 0));
}
