//! Property-based tests for the engine's core invariants.

use engine::shuffle::{bucketize, merge_concat, merge_group, merge_join, merge_reduce};
use engine::{
    build_partitioner, measure_skew, ColumnBatch, HashPartitioner, Key, Partitioner,
    PartitionerSpec, RangePartitioner, Record, ReduceFn, Value, WorkloadConf,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn arb_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        any::<i64>().prop_map(Key::Int),
        "[a-z]{0,8}".prop_map(|s| Key::str(&s)),
    ]
}

fn arb_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (any::<i64>(), any::<i64>())
            .prop_map(|(k, v)| Record::new(Key::Int(k % 50), Value::Int(v))),
        0..max,
    )
}

/// Every key shape the engine produces, including keyless rows and
/// composite pairs that force the columnar plane's row fallback.
fn arb_any_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        Just(Key::None),
        any::<i64>().prop_map(Key::Int),
        "[a-z]{0,6}".prop_map(|s| Key::str(&s)),
        (any::<i64>(), "[a-z]{0,4}")
            .prop_map(|(a, b)| Key::Pair(Box::new(Key::Int(a)), Box::new(Key::Str(b.into())))),
    ]
}

/// Every value shape, including nested pairs and lists.
fn arb_any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(|s| Value::Str(s.into())),
        proptest::collection::vec(any::<f64>(), 0..6).prop_map(|v| Value::Vector(Arc::new(v))),
        (any::<i64>(), any::<f64>())
            .prop_map(|(a, b)| Value::Pair(Box::new(Value::Int(a)), Box::new(Value::Float(b)))),
        proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..4)
            .prop_map(|v| Value::List(Arc::new(v))),
    ]
}

fn arb_mixed_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (arb_any_key(), arb_any_value()).prop_map(|(k, v)| Record::new(k, v)),
        0..max,
    )
}

/// Records whose keys/values fit the typed columnar layouts (no fallback).
fn arb_typed_records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    let key = prop_oneof![
        Just(Key::None),
        any::<i64>().prop_map(Key::Int),
        "[a-z]{0,5}".prop_map(|s| Key::str(&s)),
    ];
    proptest::collection::vec(
        (key, any::<i64>()).prop_map(|(k, v)| Record::new(k, Value::Int(v))),
        0..max,
    )
}

fn sum() -> ReduceFn {
    Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int().wrapping_add(b.as_int())))
}

/// Ground truth: per-key sum over a record set.
fn key_sums(records: &[Record]) -> HashMap<Key, i64> {
    let mut m = HashMap::new();
    for r in records {
        *m.entry(r.key.clone()).or_insert(0i64) = m
            .get(&r.key)
            .copied()
            .unwrap_or(0)
            .wrapping_add(r.value.as_int());
    }
    m
}

proptest! {
    /// Every key lands in a valid partition, and the assignment is stable.
    #[test]
    fn partitioners_are_total_and_stable(keys in proptest::collection::vec(arb_key(), 1..200),
                                         parts in 1usize..64) {
        let hash = HashPartitioner::new(parts);
        let range = RangePartitioner::from_sample(keys.iter(), parts, 9);
        for k in &keys {
            let h = hash.partition(k);
            let r = range.partition(k);
            prop_assert!(h < parts);
            prop_assert!(r < parts);
            prop_assert_eq!(h, hash.partition(k));
            prop_assert_eq!(r, range.partition(k));
        }
    }

    /// Range partitioning is monotone in the key order.
    #[test]
    fn range_partitioner_is_monotone(mut keys in proptest::collection::vec(any::<i64>(), 2..300),
                                     parts in 1usize..32) {
        keys.sort_unstable();
        let typed: Vec<Key> = keys.iter().copied().map(Key::Int).collect();
        let p = RangePartitioner::from_sample(typed.iter(), parts, 3);
        let mut last = 0;
        for k in &typed {
            let part = p.partition(k);
            prop_assert!(part >= last, "monotonicity violated");
            last = part;
        }
    }

    /// Bucketizing conserves the per-key sums, with or without combine.
    #[test]
    fn bucketize_conserves_key_sums(records in arb_records(300), parts in 1usize..16,
                                    combine in any::<bool>()) {
        let p = HashPartitioner::new(parts);
        let f = sum();
        let (tb, _) = bucketize(&records, &p, combine.then_some(&f));
        let rebuilt: Vec<Record> =
            tb.buckets.iter().flat_map(|b| b.to_vec()).collect();
        prop_assert_eq!(key_sums(&rebuilt), key_sums(&records));
        // And every record sits in the right bucket.
        for (i, bucket) in tb.buckets.iter().enumerate() {
            for r in bucket.to_vec() {
                prop_assert_eq!(p.partition(&r.key), i);
            }
        }
    }

    /// Reduce-merge over arbitrary partitionings equals the direct fold.
    #[test]
    fn merge_reduce_is_partition_invariant(records in arb_records(200), cut in 0usize..200) {
        let cut = cut.min(records.len());
        let (a, b) = records.split_at(cut);
        let f = sum();
        let (merged, _) = merge_reduce([a, b], &f);
        prop_assert_eq!(key_sums(&merged), key_sums(&records));
        // One record per distinct key.
        let distinct: std::collections::HashSet<_> =
            records.iter().map(|r| r.key.clone()).collect();
        prop_assert_eq!(merged.len(), distinct.len());
    }

    /// Group-merge collects exactly the multiset of values per key.
    #[test]
    fn merge_group_collects_everything(records in arb_records(150)) {
        let grouped = merge_group([records.as_slice()]);
        let mut counts: HashMap<Key, usize> = HashMap::new();
        for r in &records {
            *counts.entry(r.key.clone()).or_default() += 1;
        }
        prop_assert_eq!(grouped.len(), counts.len());
        for g in &grouped {
            match &g.value {
                Value::List(vs) => prop_assert_eq!(vs.len(), counts[&g.key]),
                other => prop_assert!(false, "expected list, got {:?}", other),
            }
        }
    }

    /// Concat preserves count and total bytes.
    #[test]
    fn merge_concat_is_lossless(records in arb_records(150), cut in 0usize..150) {
        let cut = cut.min(records.len());
        let (a, b) = records.split_at(cut);
        let merged = merge_concat([a, b]);
        prop_assert_eq!(merged.len(), records.len());
        prop_assert_eq!(engine::batch_size(&merged), engine::batch_size(&records));
    }

    /// Join output size equals the sum over shared keys of |L_k|·|R_k|.
    #[test]
    fn join_cardinality_matches_set_theory(left in arb_records(80), right in arb_records(80)) {
        let (joined, _) = merge_join(&left, &right);
        let mut lc: HashMap<Key, usize> = HashMap::new();
        for r in &left { *lc.entry(r.key.clone()).or_default() += 1; }
        let mut rc: HashMap<Key, usize> = HashMap::new();
        for r in &right { *rc.entry(r.key.clone()).or_default() += 1; }
        let expected: usize = lc.iter()
            .filter_map(|(k, &l)| rc.get(k).map(|&r| l * r))
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }

    /// Skew of a hash partitioning is always ≥ 1 and equals P for a single
    /// hot key.
    #[test]
    fn skew_bounds(keys in proptest::collection::vec(any::<i64>(), 1..200), parts in 2usize..32) {
        let typed: Vec<Key> = keys.iter().copied().map(Key::Int).collect();
        let p = HashPartitioner::new(parts);
        let skew = measure_skew(&p, typed.iter());
        prop_assert!(skew >= 1.0 - 1e-9);
        prop_assert!(skew <= parts as f64 + 1e-9);
    }

    /// The configuration text format round-trips arbitrary configurations.
    #[test]
    fn conf_text_roundtrip(entries in proptest::collection::vec(
            (any::<u64>(), any::<bool>(), 1usize..4096), 0..20),
        default in proptest::option::of(1usize..5000),
        override_fixed in any::<bool>())
    {
        let mut conf = WorkloadConf::new();
        conf.default_parallelism = default;
        conf.override_user_fixed = override_fixed;
        for (sig, range, parts) in entries {
            let spec = if range {
                PartitionerSpec::range(parts)
            } else {
                PartitionerSpec::hash(parts)
            };
            // Alternate between stage entries and repartition insertions.
            if sig % 2 == 0 {
                conf.set_stage(sig, spec);
            } else {
                conf.set_repartition(sig, spec);
            }
        }
        let back = WorkloadConf::from_text(&conf.to_text()).expect("own format parses");
        prop_assert_eq!(back, conf);
    }

    /// build_partitioner honours the requested spec for any sample.
    #[test]
    fn build_partitioner_honours_spec(keys in proptest::collection::vec(arb_key(), 0..100),
                                      parts in 1usize..64, range in any::<bool>()) {
        let spec = if range { PartitionerSpec::range(parts) } else { PartitionerSpec::hash(parts) };
        let p = build_partitioner(spec, keys.iter(), 5);
        prop_assert_eq!(p.num_partitions(), parts);
        prop_assert_eq!(p.kind(), spec.kind);
    }
}

proptest! {
    /// The columnar batch is a lossless encoding of any record set: every
    /// key shape (including `Key::None` rows and composite pairs that force
    /// the row fallback) and every value shape round-trips bit-identically.
    #[test]
    fn column_batch_round_trips_any_records(records in arb_mixed_records(120)) {
        let batch = ColumnBatch::from_records(&records);
        prop_assert_eq!(batch.len(), records.len());
        prop_assert_eq!(batch.to_records(), records.clone());
        // encoded_size computed from buffer lengths must equal the
        // row-path byte accounting of the same records.
        prop_assert_eq!(batch.encoded_size(), engine::batch_size(&records));
        // And any window of the batch is the matching window of the rows.
        if !records.is_empty() {
            let mid = records.len() / 2;
            let tail = batch.slice(mid, records.len() - mid);
            prop_assert_eq!(tail.to_records(), records[mid..].to_vec());
        }
    }

    /// Per-batch partition assignment (one pass over the key column) equals
    /// the per-record assignment for both hash and range partitioners, on
    /// typed key columns and on fallback row columns alike.
    #[test]
    fn batch_assignment_matches_per_record(records in arb_mixed_records(150),
                                           parts in 1usize..32,
                                           range in any::<bool>()) {
        let keys: Vec<Key> = records.iter().map(|r| r.key.clone()).collect();
        let p: Box<dyn Partitioner> = if range {
            Box::new(RangePartitioner::from_sample(keys.iter(), parts, 7))
        } else {
            Box::new(HashPartitioner::new(parts))
        };
        let batch = ColumnBatch::from_records(&records);
        let mut got = Vec::new();
        batch.partition_assignment(&*p, &mut got);
        let want: Vec<u32> = records.iter().map(|r| p.partition(&r.key) as u32).collect();
        prop_assert_eq!(got, want);
    }

    /// Typed int/str key columns take the vectorized assignment path; it
    /// must agree with the scalar path there too.
    #[test]
    fn typed_batch_assignment_matches_per_record(records in arb_typed_records(200),
                                                 parts in 1usize..32,
                                                 range in any::<bool>()) {
        let keys: Vec<Key> = records.iter().map(|r| r.key.clone()).collect();
        let p: Box<dyn Partitioner> = if range {
            Box::new(RangePartitioner::from_sample(keys.iter(), parts, 11))
        } else {
            Box::new(HashPartitioner::new(parts))
        };
        let batch = ColumnBatch::from_records(&records);
        let mut got = Vec::new();
        batch.partition_assignment(&*p, &mut got);
        let want: Vec<u32> = records.iter().map(|r| p.partition(&r.key) as u32).collect();
        prop_assert_eq!(got, want);
    }
}
