//! Worker-count determinism: the pool's thread interleaving must never
//! leak into anything observable. Collected records, per-stage shuffle
//! byte volumes, and simulated stage timings are functions of the plan
//! alone, so `workers = 1` and `workers = 8` runs must agree bit-for-bit.

use engine::{Context, EngineOptions, JobMetrics, Key, PartitionerSpec, Record, Value};
use simcluster::uniform_cluster;
use std::sync::Arc;

fn options(workers: usize) -> EngineOptions {
    EngineOptions {
        cluster: uniform_cluster(3, 4, 2.0),
        default_parallelism: 8,
        workers,
        ..EngineOptions::default()
    }
}

/// A workload exercising every data-plane path that fans out over the
/// pool: a cached fused narrow chain (map, filter, flatMap, sample), a
/// hash-partitioned reduce, a range-partitioned group (per-task reservoir
/// sampling), and a repartition.
fn run(workers: usize) -> (Vec<Record>, Vec<Record>, Vec<JobMetrics>) {
    let mut ctx = Context::new(options(workers));

    let data: Vec<Record> = (0..4000)
        .map(|i| Record::new(Key::Int(i % 97), Value::Int(i)))
        .collect();
    let src = ctx.parallelize(data, 8, "src");
    let mapped = ctx.map(
        src,
        Arc::new(|r: &Record| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 3))),
        1e-7,
        "mapped",
    );
    let filtered = ctx.filter(
        mapped,
        Arc::new(|r: &Record| r.value.as_int() % 4 != 0),
        1e-7,
        "filtered",
    );
    let expanded = ctx.flat_map(
        filtered,
        Arc::new(|r: &Record| {
            vec![
                r.clone(),
                Record::new(r.key.clone(), Value::Int(r.value.as_int() + 1)),
            ]
        }),
        1e-7,
        "expanded",
    );
    let sampled = ctx.sample(expanded, 0.7, 42, "sampled");
    ctx.cache(sampled);
    let reduced = ctx.reduce_by_key(
        sampled,
        Arc::new(|a: &Value, b: &Value| Value::Int(a.as_int() + b.as_int())),
        None,
        1e-6,
        "reduced",
    );
    let out_reduce = ctx.collect(reduced, "sum-job");

    // Second job re-reads the cache (CachedRead root) and range-groups,
    // exercising the per-task reservoir sampling path.
    let grouped = ctx.group_by_key(sampled, Some(PartitionerSpec::range(6)), 1e-6, "grouped");
    let repart = ctx.repartition(grouped, Some(PartitionerSpec::hash(5)), "repart");
    let out_group = ctx.collect(repart, "group-job");

    (out_reduce, out_group, ctx.jobs().to_vec())
}

#[test]
fn workers_1_and_8_agree_bit_for_bit() {
    let (rec1, grp1, jobs1) = run(1);
    let (rec8, grp8, jobs8) = run(8);

    assert_eq!(rec1, rec8, "collected reduce records must match exactly");
    assert_eq!(grp1, grp8, "collected group records must match exactly");

    assert_eq!(jobs1.len(), jobs8.len());
    for (j1, j8) in jobs1.iter().zip(&jobs8) {
        assert_eq!(j1.stages.len(), j8.stages.len());
        assert!(j1.start.to_bits() == j8.start.to_bits());
        assert!(j1.end.to_bits() == j8.end.to_bits());
        for (s1, s8) in j1.stages.iter().zip(&j8.stages) {
            assert_eq!(
                s1.shuffle_write_bytes, s8.shuffle_write_bytes,
                "stage {}",
                s1.name
            );
            assert_eq!(
                s1.shuffle_read_bytes, s8.shuffle_read_bytes,
                "stage {}",
                s1.name
            );
            assert_eq!(
                s1.remote_read_bytes, s8.remote_read_bytes,
                "stage {}",
                s1.name
            );
            assert_eq!(s1.output_records, s8.output_records, "stage {}", s1.name);
            assert_eq!(s1.output_bytes, s8.output_bytes, "stage {}", s1.name);
            // Simulated timings must agree to the bit, not within epsilon.
            assert!(
                s1.start.to_bits() == s8.start.to_bits() && s1.end.to_bits() == s8.end.to_bits(),
                "stage {} timing diverged: {} vs {}",
                s1.name,
                s1.end - s1.start,
                s8.end - s8.start,
            );
        }
    }
}

#[test]
fn repeated_runs_same_worker_count_agree() {
    let (a1, a2, ja) = run(4);
    let (b1, b2, jb) = run(4);
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
    assert_eq!(ja.len(), jb.len());
    for (j1, j2) in ja.iter().zip(&jb) {
        assert!(j1.end.to_bits() == j2.end.to_bits());
    }
}
