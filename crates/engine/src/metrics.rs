//! Per-stage and per-job execution metrics.
//!
//! This is the engine side of CHOPPER's *statistics collector*: every stage
//! reports its input size `D`, the scheme it ran under, its virtual
//! duration, and its shuffle volumes — the observations Eq. 1–2 models are
//! trained on — plus DAG linkage (parent stages, join flags, user-fixed
//! flags) consumed by the global optimization of Algorithm 3.

use crate::partitioner::PartitionerSpec;

/// What kind of root a stage executed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Reads an input source (collection slices or storage blocks).
    Source,
    /// Reads one shuffle (reduce side of a single-parent wide op).
    Shuffle,
    /// Reads two sides (join / co-group).
    Join,
    /// Reads a cached, already-materialized RDD.
    Cached,
}

/// Metrics of one executed stage.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Global stage id, monotonically increasing per engine context —
    /// aligns with the paper's per-workload stage numbering.
    pub stage_id: usize,
    /// The job this stage belonged to.
    pub job_id: usize,
    /// Human-readable label (the terminal RDD's tag).
    pub name: String,
    /// Signature of the stage root (wide op / source) — the key CHOPPER's
    /// configuration uses to retarget this stage's scheme.
    pub root_signature: u64,
    /// Signature of the stage's terminal RDD.
    pub terminal_signature: u64,
    /// Root kind.
    pub kind: StageKind,
    /// The scheme that governed this stage's task count (None when the
    /// count came from source structure).
    pub scheme: Option<PartitionerSpec>,
    /// Whether CHOPPER may change this stage's scheme via configuration.
    pub configurable: bool,
    /// Whether the program pinned the scheme explicitly.
    pub user_fixed: bool,
    /// Number of tasks (== partitions).
    pub num_tasks: usize,
    /// Records entering the stage.
    pub input_records: u64,
    /// Bytes entering the stage — the `D` of Eq. 1–2.
    pub input_bytes: u64,
    /// Records leaving the stage's terminal RDD.
    pub output_records: u64,
    /// Bytes leaving the stage's terminal RDD.
    pub output_bytes: u64,
    /// Shuffle bytes read by this stage (local + remote).
    pub shuffle_read_bytes: u64,
    /// Shuffle bytes written by this stage (map output volume).
    pub shuffle_write_bytes: u64,
    /// Bytes of this stage's reads that crossed the network.
    pub remote_read_bytes: u64,
    /// Stage start (virtual seconds).
    pub start: f64,
    /// Stage end (virtual seconds).
    pub end: f64,
    /// Per-task virtual durations, in task order.
    pub task_durations: Vec<f64>,
    /// Full per-task placements (node, start, end), in task order — feeds
    /// `simcluster::render_gantt` for schedule visualization.
    pub placements: Vec<simcluster::TaskTiming>,
    /// Global stage ids this stage consumed data from.
    pub parents: Vec<usize>,
}

impl StageMetrics {
    /// Stage wall time in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The paper's per-stage "shuffle data" metric: the max of shuffle read
    /// and shuffle write (Section II-B).
    pub fn shuffle_data(&self) -> u64 {
        self.shuffle_read_bytes.max(self.shuffle_write_bytes)
    }

    /// Max/mean task-duration skew (1.0 = perfectly balanced).
    pub fn task_skew(&self) -> f64 {
        trace::skew_ratio(&self.task_durations)
    }
}

/// Metrics of one job (action).
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Job id, monotonically increasing per engine context.
    pub job_id: usize,
    /// Label given at the action call.
    pub name: String,
    /// Stages executed by this job (skipped/cached stages don't appear).
    pub stages: Vec<StageMetrics>,
    /// Job start (virtual seconds).
    pub start: f64,
    /// Job end (virtual seconds).
    pub end: f64,
}

impl JobMetrics {
    /// Job wall time in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(durations: Vec<f64>, read: u64, write: u64) -> StageMetrics {
        StageMetrics {
            stage_id: 0,
            job_id: 0,
            name: "t".into(),
            root_signature: 0,
            terminal_signature: 0,
            kind: StageKind::Shuffle,
            scheme: None,
            configurable: true,
            user_fixed: false,
            num_tasks: durations.len(),
            input_records: 0,
            input_bytes: 0,
            output_records: 0,
            output_bytes: 0,
            shuffle_read_bytes: read,
            shuffle_write_bytes: write,
            remote_read_bytes: 0,
            start: 1.0,
            end: 3.0,
            task_durations: durations,
            placements: vec![],
            parents: vec![],
        }
    }

    #[test]
    fn shuffle_data_is_max_of_read_write() {
        assert_eq!(stage(vec![1.0], 100, 250).shuffle_data(), 250);
        assert_eq!(stage(vec![1.0], 300, 250).shuffle_data(), 300);
    }

    #[test]
    fn skew_of_balanced_tasks_is_one() {
        assert!((stage(vec![2.0, 2.0, 2.0], 0, 0).task_skew() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_flags_stragglers() {
        let s = stage(vec![1.0, 1.0, 10.0], 0, 0);
        assert!(s.task_skew() > 2.0);
    }

    #[test]
    fn empty_or_zero_durations_degenerate_to_one() {
        assert_eq!(stage(vec![], 0, 0).task_skew(), 1.0);
        assert_eq!(stage(vec![0.0, 0.0], 0, 0).task_skew(), 1.0);
    }

    #[test]
    fn durations_subtract() {
        assert!((stage(vec![1.0], 0, 0).duration() - 2.0).abs() < 1e-12);
    }
}
