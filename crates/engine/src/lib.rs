//! A mini in-memory DAG analytics engine — the Spark-shaped substrate the
//! CHOPPER reproduction runs on.
//!
//! The engine reproduces the surfaces CHOPPER (CLUSTER 2016) needs from
//! Spark:
//!
//! * **RDD lineage with narrow/wide dependencies** ([`rdd`], [`ops`]) —
//!   stages are cut at shuffle boundaries exactly as in Spark's
//!   `DAGScheduler` ([`stage`]).
//! * **Hash and range partitioners** ([`partitioner`]) with sampled range
//!   bounds, plus skew measurement.
//! * **A real shuffle** ([`shuffle`]) — map-side combine, bucketed map
//!   outputs, reduce-side merges — whose byte volumes are measured from
//!   actual data, not modeled.
//! * **Per-stage dynamic partitioning configuration** ([`config`]) — the
//!   framework hook the paper adds to Spark: a `(signature, partitioner,
//!   partitions)` table consulted at planning time, plus repartition
//!   insertion.
//! * **Execution** ([`exec`]) — task data computed for real on host
//!   threads; task *timing* simulated on a heterogeneous virtual cluster
//!   (`simcluster`), including co-partition-aware scheduling.
//! * **Metrics** ([`metrics`]) — the per-stage observations CHOPPER's
//!   statistics collector consumes.
//!
//! ```
//! use engine::{Context, EngineOptions, Record, Key, Value};
//! use std::sync::Arc;
//!
//! let mut ctx = Context::new(EngineOptions {
//!     cluster: simcluster::uniform_cluster(2, 4, 2.0),
//!     default_parallelism: 4,
//!     ..EngineOptions::default()
//! });
//! let data = (0..100).map(|i| Record::new(Key::Int(i % 5), Value::Int(1))).collect();
//! let src = ctx.parallelize(data, 4, "src");
//! let counts = ctx.reduce_by_key(
//!     src,
//!     Arc::new(|a, b| Value::Int(a.as_int() + b.as_int())),
//!     None,
//!     1e-6,
//!     "count",
//! );
//! let out = ctx.collect(counts, "wordcount");
//! assert_eq!(out.len(), 5);
//! ```

pub mod adaptive;
pub mod batch;
pub mod config;
mod exchange;
pub mod exec;
pub mod metrics;
pub mod ops;
pub mod partitioner;
pub mod pool;
pub mod rdd;
pub mod record;
pub mod shuffle;
pub mod stage;

pub use adaptive::{
    plan_splits, ReplanHook, ReplanInput, SplitPlan, StageActuals, SubRouter, HOT_SKEW_TRIGGER,
};
pub use batch::{concat_int_batches, run_int_chain, ColumnBatch, IntOp, KeyColumn, ValueColumn};
pub use config::WorkloadConf;
pub use exec::{Context, EngineOptions};
pub use faults::{FaultCounters, FaultPlan, NodeLoss, Straggler};
pub use memman::{EvictionPolicy, MemCounters};
pub use metrics::{JobMetrics, StageKind, StageMetrics};
pub use ops::{FilterFn, FlatMapFn, GenFn, MapFn, OpKind, ReduceFn};
pub use partitioner::{
    build_partitioner, measure_skew, HashPartitioner, Partitioner, PartitionerKind,
    PartitionerSpec, RangePartitioner,
};
pub use pool::WorkerPool;
pub use rdd::{Rdd, RddGraph, RddNode};
pub use record::{batch_size, Key, Record, Value};
pub use trace::{ClockFilter, TraceSink, TraceSummary};
