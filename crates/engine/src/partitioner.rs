//! Hash and range partitioners (paper Section II-A / III-B).
//!
//! * The **hash partitioner** assigns `stable_hash(key) mod P` — insensitive
//!   to data content but prone to load skew under hot keys, since identical
//!   keys always land together.
//! * The **range partitioner** splits the key space into `P` contiguous
//!   ranges whose bounds are estimated by sampling the data (as Spark does
//!   when constructing a `RangePartitioner`). It balances load even with hot
//!   spots spread across the key space, but its quality depends on how well
//!   the sample represents the data.
//!
//! CHOPPER chooses between the two per stage by comparing fitted cost models
//! (Algorithm 1).

use crate::record::{int_key_hash, Key};
use numeric::Reservoir;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which family a partitioner belongs to — what CHOPPER's config file
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionerKind {
    /// Hash-modulo partitioning (Spark's default).
    Hash,
    /// Sampled range partitioning.
    Range,
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionerKind::Hash => write!(f, "hash"),
            PartitionerKind::Range => write!(f, "range"),
        }
    }
}

impl std::str::FromStr for PartitionerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hash" | "hashpartitioner" => Ok(PartitionerKind::Hash),
            "range" | "rangepartitioner" => Ok(PartitionerKind::Range),
            other => Err(format!("unknown partitioner kind: {other}")),
        }
    }
}

/// A serializable partitioning scheme: what kind of partitioner to build and
/// how many partitions it should produce. The concrete range bounds are
/// derived from data at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionerSpec {
    /// Partitioner family.
    pub kind: PartitionerKind,
    /// Number of output partitions.
    pub partitions: usize,
}

impl PartitionerSpec {
    /// Hash scheme with `p` partitions.
    pub fn hash(p: usize) -> Self {
        PartitionerSpec {
            kind: PartitionerKind::Hash,
            partitions: p,
        }
    }

    /// Range scheme with `p` partitions.
    pub fn range(p: usize) -> Self {
        PartitionerSpec {
            kind: PartitionerKind::Range,
            partitions: p,
        }
    }
}

/// Assigns keys to partitions.
pub trait Partitioner: Send + Sync {
    /// Number of output partitions.
    fn num_partitions(&self) -> usize;
    /// Partition index for `key`, in `0..num_partitions()`.
    fn partition(&self, key: &Key) -> usize;
    /// Partition index for `key` when its `stable_hash` is already known.
    /// Hash-based partitioners reuse the hash instead of recomputing it;
    /// everything else falls back to [`Partitioner::partition`].
    fn partition_hashed(&self, key: &Key, _hash: u64) -> usize {
        self.partition(key)
    }
    /// Columnar fast path: appends the partition id of every `Key::Int`
    /// in `keys` to `out` in one pass over the buffer, returning `true`.
    /// Returns `false` (writing nothing) when this partitioner has no
    /// vectorized integer path; the caller then falls back to per-key
    /// [`Partitioner::partition`]. Implementations must be bit-identical
    /// to the per-key path.
    fn partition_int_keys(&self, _keys: &[i64], _out: &mut Vec<u32>) -> bool {
        false
    }
    /// The family this partitioner belongs to.
    fn kind(&self) -> PartitionerKind;
}

/// `stable_hash(key) mod P`.
#[derive(Debug, Clone)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `partitions` buckets.
    ///
    /// # Panics
    /// Panics if `partitions` is zero.
    pub fn new(partitions: usize) -> Self {
        assert!(partitions > 0, "partition count must be positive");
        HashPartitioner { partitions }
    }
}

impl Partitioner for HashPartitioner {
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn partition(&self, key: &Key) -> usize {
        (key.stable_hash() % self.partitions as u64) as usize
    }
    fn partition_hashed(&self, _key: &Key, hash: u64) -> usize {
        (hash % self.partitions as u64) as usize
    }
    fn partition_int_keys(&self, keys: &[i64], out: &mut Vec<u32>) -> bool {
        let p = self.partitions as u64;
        out.extend(keys.iter().map(|&k| (int_key_hash(k) % p) as u32));
        true
    }
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Hash
    }
}

/// Range partitioner with explicit upper bounds.
///
/// `bounds` has `P - 1` sorted keys; partition `i` holds keys `k` with
/// `bounds[i-1] < k <= bounds[i]` (first and last ranges unbounded below /
/// above). Keys are compared with `Key`'s total order.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    bounds: Vec<Key>,
    /// `bounds` as raw integers when every bound is `Key::Int` — the
    /// columnar assignment kernel binary-searches this buffer directly.
    int_bounds: Option<Vec<i64>>,
    partitions: usize,
}

/// Extracts the integer fast-path bounds (`Some` iff all bounds are ints).
fn int_bounds_of(bounds: &[Key]) -> Option<Vec<i64>> {
    bounds
        .iter()
        .map(|k| match k {
            Key::Int(i) => Some(*i),
            _ => None,
        })
        .collect()
}

impl RangePartitioner {
    /// Builds a partitioner from pre-computed bounds.
    pub fn from_bounds(bounds: Vec<Key>, partitions: usize) -> Self {
        assert!(partitions > 0, "partition count must be positive");
        assert!(
            bounds.len() < partitions,
            "need fewer bounds than partitions"
        );
        debug_assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be sorted"
        );
        let int_bounds = int_bounds_of(&bounds);
        RangePartitioner {
            bounds,
            int_bounds,
            partitions,
        }
    }

    /// Estimates bounds by reservoir-sampling `keys` — mirroring Spark's
    /// `RangePartitioner(partitions, rdd)` construction.
    ///
    /// The sample capacity is `20 × partitions` (Spark's default heuristic),
    /// and the sampler is seeded so the result is deterministic.
    pub fn from_sample<'a, I>(keys: I, partitions: usize, seed: u64) -> Self
    where
        I: IntoIterator<Item = &'a Key>,
    {
        assert!(partitions > 0, "partition count must be positive");
        let mut reservoir = Reservoir::new((20 * partitions).max(1), seed);
        for k in keys {
            reservoir.offer(k.clone());
        }
        let mut sample = reservoir.into_items();
        sample.sort();
        let bounds = if sample.is_empty() || partitions == 1 {
            Vec::new()
        } else {
            // Pick P-1 evenly spaced quantile bounds from the sorted sample,
            // deduplicated to keep ranges well-formed.
            let mut bounds = Vec::with_capacity(partitions - 1);
            for i in 1..partitions {
                let idx = i * sample.len() / partitions;
                let candidate = sample[idx.min(sample.len() - 1)].clone();
                if bounds.last() != Some(&candidate) {
                    bounds.push(candidate);
                }
            }
            bounds
        };
        let int_bounds = int_bounds_of(&bounds);
        RangePartitioner {
            bounds,
            int_bounds,
            partitions,
        }
    }

    /// The range bounds (`P - 1` or fewer keys).
    pub fn bounds(&self) -> &[Key] {
        &self.bounds
    }
}

impl Partitioner for RangePartitioner {
    fn num_partitions(&self) -> usize {
        self.partitions
    }
    fn partition(&self, key: &Key) -> usize {
        // First bound >= key ⇒ that range; after all bounds ⇒ last range.
        match self.bounds.binary_search_by(|b| b.cmp(key)) {
            Ok(i) => i,
            Err(i) => i.min(self.partitions - 1),
        }
    }
    fn partition_int_keys(&self, keys: &[i64], out: &mut Vec<u32>) -> bool {
        // `Key::Int` ordering is `i64` ordering, so searching the raw
        // integer bounds matches the enum binary search exactly.
        let Some(bounds) = &self.int_bounds else {
            return false;
        };
        let last = (self.partitions - 1) as u32;
        out.extend(keys.iter().map(|k| match bounds.binary_search(k) {
            Ok(i) => i as u32,
            Err(i) => (i as u32).min(last),
        }));
        true
    }
    fn kind(&self) -> PartitionerKind {
        PartitionerKind::Range
    }
}

/// Builds a concrete partitioner for a scheme, sampling `keys` when a range
/// partitioner is requested.
pub fn build_partitioner<'a, I>(spec: PartitionerSpec, keys: I, seed: u64) -> Arc<dyn Partitioner>
where
    I: IntoIterator<Item = &'a Key>,
{
    match spec.kind {
        PartitionerKind::Hash => Arc::new(HashPartitioner::new(spec.partitions)),
        PartitionerKind::Range => {
            Arc::new(RangePartitioner::from_sample(keys, spec.partitions, seed))
        }
    }
}

/// Max/mean partition-size skew of an assignment produced by `partitioner`
/// over `keys` (1.0 = perfectly balanced).
pub fn measure_skew<'a, I>(partitioner: &dyn Partitioner, keys: I) -> f64
where
    I: IntoIterator<Item = &'a Key>,
{
    let mut counts = vec![0.0f64; partitioner.num_partitions()];
    let mut total = 0u64;
    for k in keys {
        counts[partitioner.partition(k)] += 1.0;
        total += 1;
    }
    if total == 0 {
        return 1.0;
    }
    // One skew definition tree-wide: the trace summary's max/mean ratio.
    trace::skew_ratio(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_stable_and_in_range() {
        let p = HashPartitioner::new(7);
        for i in 0..1000 {
            let k = Key::Int(i);
            let a = p.partition(&k);
            assert!(a < 7);
            assert_eq!(a, p.partition(&k));
        }
    }

    #[test]
    fn hash_partitioner_spreads_uniform_keys() {
        let p = HashPartitioner::new(10);
        let keys: Vec<Key> = (0..10_000).map(Key::Int).collect();
        let skew = measure_skew(&p, keys.iter());
        assert!(skew < 1.2, "uniform int keys should balance, skew={skew}");
    }

    #[test]
    fn hash_partitioner_collapses_hot_keys() {
        // All records share one key → everything lands in one partition.
        let p = HashPartitioner::new(10);
        let keys = vec![Key::Int(7); 1000];
        let skew = measure_skew(&p, keys.iter());
        assert!(
            (skew - 10.0).abs() < 1e-9,
            "hot key skew should be P, got {skew}"
        );
    }

    #[test]
    fn range_partitioner_respects_bounds() {
        let p = RangePartitioner::from_bounds(vec![Key::Int(10), Key::Int(20)], 3);
        assert_eq!(p.partition(&Key::Int(-5)), 0);
        assert_eq!(
            p.partition(&Key::Int(10)),
            0,
            "bound itself belongs to lower range"
        );
        assert_eq!(p.partition(&Key::Int(11)), 1);
        assert_eq!(p.partition(&Key::Int(20)), 1);
        assert_eq!(p.partition(&Key::Int(25)), 2);
    }

    #[test]
    fn range_partitioner_orders_output() {
        // Partition index must be monotone in the key.
        let keys: Vec<Key> = (0..1000).map(Key::Int).collect();
        let p = RangePartitioner::from_sample(keys.iter(), 8, 42);
        let mut last = 0;
        for k in &keys {
            let part = p.partition(k);
            assert!(part >= last, "range partitioning must be monotone");
            last = part;
        }
        assert_eq!(last, 7, "top keys reach the last partition");
    }

    #[test]
    fn range_partitioner_balances_uniform_data() {
        let keys: Vec<Key> = (0..20_000).map(Key::Int).collect();
        let p = RangePartitioner::from_sample(keys.iter(), 10, 7);
        let skew = measure_skew(&p, keys.iter());
        assert!(
            skew < 1.5,
            "sampled ranges should be roughly even, skew={skew}"
        );
    }

    #[test]
    fn range_partitioner_balances_clustered_hot_range_better_than_hash_on_strings() {
        // Zipf-ish string keys: range sampling adapts bounds to density.
        let mut keys = Vec::new();
        for i in 0..1000 {
            let reps = if i < 50 { 40 } else { 1 };
            for _ in 0..reps {
                keys.push(Key::Int(i));
            }
        }
        let range = RangePartitioner::from_sample(keys.iter(), 10, 3);
        let skew = measure_skew(&range, keys.iter());
        assert!(skew < 2.0, "range bounds adapt to density, skew={skew}");
    }

    #[test]
    fn range_partitioner_single_partition() {
        let p = RangePartitioner::from_sample([Key::Int(1)].iter(), 1, 0);
        assert_eq!(p.partition(&Key::Int(99)), 0);
    }

    #[test]
    fn range_partitioner_empty_sample() {
        let p = RangePartitioner::from_sample(std::iter::empty::<&Key>(), 5, 0);
        assert_eq!(
            p.partition(&Key::Int(3)),
            0,
            "no bounds → everything in partition 0"
        );
        assert_eq!(p.num_partitions(), 5);
    }

    #[test]
    fn duplicate_heavy_sample_dedups_bounds() {
        let keys = vec![Key::Int(1); 500];
        let p = RangePartitioner::from_sample(keys.iter(), 4, 0);
        assert!(
            p.bounds().len() <= 1,
            "identical sample keys collapse to one bound"
        );
        // All identical keys map to one partition — skew is unavoidable here.
        assert!(p.partition(&Key::Int(1)) < 4);
    }

    #[test]
    fn build_partitioner_matches_spec() {
        let keys: Vec<Key> = (0..100).map(Key::Int).collect();
        let h = build_partitioner(PartitionerSpec::hash(4), keys.iter(), 1);
        assert_eq!(h.kind(), PartitionerKind::Hash);
        assert_eq!(h.num_partitions(), 4);
        let r = build_partitioner(PartitionerSpec::range(4), keys.iter(), 1);
        assert_eq!(r.kind(), PartitionerKind::Range);
        assert_eq!(r.num_partitions(), 4);
    }

    #[test]
    fn kind_parses_both_ways() {
        assert_eq!(
            "hash".parse::<PartitionerKind>().unwrap(),
            PartitionerKind::Hash
        );
        assert_eq!(
            "RangePartitioner".parse::<PartitionerKind>().unwrap(),
            PartitionerKind::Range
        );
        assert!("zebra".parse::<PartitionerKind>().is_err());
        assert_eq!(PartitionerKind::Hash.to_string(), "hash");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_partitions_panics() {
        let _ = HashPartitioner::new(0);
    }
}
