//! Columnar zero-copy data plane: typed record batches.
//!
//! The row data model ([`Record`]) is ergonomic but taxes every hot loop
//! with an enum match and a 48-byte move per record. A [`ColumnBatch`]
//! stores the same rows as typed contiguous column buffers — `i64` keys,
//! `f64` scalars, fixed-stride `f64` vectors, dictionary-encoded strings —
//! each with an optional validity bitmap (a cleared bit reads back as
//! `Key::None` / `Value::Null`). Buffers are `Arc`-shared, so slicing a
//! batch is O(1) and ships no data: the pipelined shuffle publishes bucket
//! *slices* of one partition-ordered batch instead of cloned record
//! vectors.
//!
//! Conversions are lossless in both directions: any column whose rows do
//! not fit a typed layout (composite `Key::Pair` keys, mixed variants,
//! ragged vectors) falls back to a row column — still `Arc`-sliceable,
//! just not vectorized. `to_records(from_records(rows)) == rows` for
//! every input, which the proptest suite pins.
//!
//! Everything observable is bit-identical to the row path:
//! * partition assignment reuses the stable FNV-1a key encoding
//!   ([`crate::record::int_key_hash`] / [`crate::record::str_key_hash`]),
//! * the stable counting-sort gather preserves intra-bucket record order
//!   exactly as the two-pass row bucketize does,
//! * [`ColumnBatch::encoded_size`] recomputes the shuffle byte tables
//!   from buffer lengths with the same per-variant formulas as
//!   [`Record::encoded_size`].

use crate::partitioner::Partitioner;
use crate::record::{str_key_hash, Key, Record, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Validity bitmap: bit `i` set means row `i` carries a real value; a
/// cleared bit reads back as `Key::None` / `Value::Null`. Indexed in
/// *buffer* coordinates (batch slices apply their row offset first).
#[derive(Debug)]
pub struct Validity {
    bits: Vec<u64>,
}

impl Validity {
    fn new(len: usize) -> Self {
        Validity {
            bits: vec![0u64; len.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.bits[i >> 6] |= 1u64 << (i & 63);
    }

    /// Whether row `i` is valid.
    pub fn get(&self, i: usize) -> bool {
        (self.bits[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Number of valid rows in `start..end` (popcount over whole words
    /// where possible — byte accounting never walks rows one by one).
    pub fn count_valid(&self, start: usize, end: usize) -> usize {
        if start >= end {
            return 0;
        }
        let (first_word, last_word) = (start >> 6, (end - 1) >> 6);
        if first_word == last_word {
            let mask = (!0u64 << (start & 63)) & (!0u64 >> (63 - ((end - 1) & 63)));
            return (self.bits[first_word] & mask).count_ones() as usize;
        }
        let mut n = (self.bits[first_word] & (!0u64 << (start & 63))).count_ones() as usize;
        for w in &self.bits[first_word + 1..last_word] {
            n += w.count_ones() as usize;
        }
        n += (self.bits[last_word] & (!0u64 >> (63 - ((end - 1) & 63)))).count_ones() as usize;
        n
    }
}

/// First-seen-order string dictionary shared by a dictionary-encoded
/// column. Per-entry encoded sizes and key hashes are precomputed once, so
/// byte accounting and partition assignment touch only the code buffer.
#[derive(Debug)]
pub struct StrDict {
    strings: Vec<Arc<str>>,
    /// `encoded_size` of a `Str` key/value per entry (`5 + len`).
    sizes: Vec<u64>,
    /// `Key::Str(entry).stable_hash()` per entry.
    key_hashes: Vec<u64>,
}

impl StrDict {
    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// Typed key column of a [`ColumnBatch`]. Indexed in buffer coordinates.
#[derive(Debug, Clone)]
pub enum KeyColumn {
    /// Every key is `Key::None` (pure datasets).
    AllNone,
    /// Integer keys; a cleared validity bit reads as `Key::None`.
    Int {
        /// Contiguous key buffer.
        data: Arc<Vec<i64>>,
        /// Present iff some rows are `Key::None`.
        validity: Option<Arc<Validity>>,
    },
    /// Dictionary-encoded string keys; a cleared validity bit reads as
    /// `Key::None` (its code slot is 0 and unused).
    Str {
        /// Shared dictionary.
        dict: Arc<StrDict>,
        /// Per-row dictionary codes.
        codes: Arc<Vec<u32>>,
        /// Present iff some rows are `Key::None`.
        validity: Option<Arc<Validity>>,
    },
    /// Row fallback for composite (`Key::Pair`) or mixed-variant keys.
    Rows(Arc<Vec<Key>>),
}

/// Typed value column of a [`ColumnBatch`]. Indexed in buffer coordinates.
#[derive(Debug, Clone)]
pub enum ValueColumn {
    /// Every value is `Value::Null`.
    AllNull,
    /// Integer scalars; a cleared validity bit reads as `Value::Null`.
    Int {
        /// Contiguous value buffer.
        data: Arc<Vec<i64>>,
        /// Present iff some rows are `Value::Null`.
        validity: Option<Arc<Validity>>,
    },
    /// Float scalars; a cleared validity bit reads as `Value::Null`.
    Float {
        /// Contiguous value buffer.
        data: Arc<Vec<f64>>,
        /// Present iff some rows are `Value::Null`.
        validity: Option<Arc<Validity>>,
    },
    /// Dictionary-encoded string values.
    Str {
        /// Shared dictionary.
        dict: Arc<StrDict>,
        /// Per-row dictionary codes.
        codes: Arc<Vec<u32>>,
        /// Present iff some rows are `Value::Null`.
        validity: Option<Arc<Validity>>,
    },
    /// Fixed-stride vectors: row `i` owns `data[i*stride..(i+1)*stride]`.
    /// Invalid rows (`Value::Null`) keep a zero-filled slot so the stride
    /// stays uniform.
    FixedVector {
        /// Elements per row.
        stride: usize,
        /// Contiguous `len * stride` buffer.
        data: Arc<Vec<f64>>,
        /// Present iff some rows are `Value::Null`.
        validity: Option<Arc<Validity>>,
    },
    /// Row fallback for mixed variants, ragged vectors, pairs, and lists.
    Rows(Arc<Vec<Value>>),
}

/// A batch of records in columnar form: one key column and one value
/// column over shared buffers, plus a row window (`offset..offset+len`).
/// Cloning or slicing a batch only bumps `Arc` refcounts.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    offset: usize,
    len: usize,
    keys: KeyColumn,
    values: ValueColumn,
}

// ---------------------------------------------------------------------
// Construction: Vec<Record> -> ColumnBatch
// ---------------------------------------------------------------------

/// Key-column layout chosen by the classify pass.
#[derive(PartialEq, Clone, Copy)]
enum KeyShape {
    AllNone,
    Int,
    Str,
    Rows,
}

/// Value-column layout chosen by the classify pass.
#[derive(PartialEq, Clone, Copy)]
enum ValueShape {
    AllNull,
    Int,
    Float,
    Str,
    /// Uniform-stride vectors.
    Vector(usize),
    Rows,
}

/// One fused pass over the records deciding both column layouts; stops
/// refining a column once it has degraded to the row fallback.
fn classify(records: &[Record]) -> (KeyShape, ValueShape) {
    let mut ks = KeyShape::AllNone;
    let mut vs = ValueShape::AllNull;
    for r in records {
        if ks != KeyShape::Rows {
            ks = match (&r.key, ks) {
                (Key::None, s) => s,
                (Key::Int(_), KeyShape::AllNone | KeyShape::Int) => KeyShape::Int,
                (Key::Str(_), KeyShape::AllNone | KeyShape::Str) => KeyShape::Str,
                _ => KeyShape::Rows,
            };
        }
        if vs != ValueShape::Rows {
            vs = match (&r.value, vs) {
                (Value::Null, s) => s,
                (Value::Int(_), ValueShape::AllNull | ValueShape::Int) => ValueShape::Int,
                (Value::Float(_), ValueShape::AllNull | ValueShape::Float) => ValueShape::Float,
                (Value::Str(_), ValueShape::AllNull | ValueShape::Str) => ValueShape::Str,
                (Value::Vector(v), ValueShape::AllNull) => ValueShape::Vector(v.len()),
                (Value::Vector(v), ValueShape::Vector(s)) if v.len() == s => ValueShape::Vector(s),
                _ => ValueShape::Rows,
            };
        }
        if ks == KeyShape::Rows && vs == ValueShape::Rows {
            break;
        }
    }
    (ks, vs)
}

/// Builds a dictionary over an iterator of optional strings, returning the
/// dictionary, per-row codes, and the validity bitmap (if any row was
/// absent). Dictionary order is first-seen, so it is deterministic for a
/// deterministic input order.
fn build_dict<'a>(
    rows: impl ExactSizeIterator<Item = Option<&'a Arc<str>>>,
) -> (Arc<StrDict>, Arc<Vec<u32>>, Option<Arc<Validity>>) {
    let n = rows.len();
    let mut lookup: HashMap<Arc<str>, u32> = HashMap::new();
    let mut strings = Vec::new();
    let mut codes = Vec::with_capacity(n);
    let mut validity = Validity::new(n);
    let mut any_none = false;
    for (i, row) in rows.enumerate() {
        match row {
            Some(s) => {
                validity.set(i);
                let code = *lookup.entry(Arc::clone(s)).or_insert_with(|| {
                    strings.push(Arc::clone(s));
                    (strings.len() - 1) as u32
                });
                codes.push(code);
            }
            None => {
                any_none = true;
                codes.push(0);
            }
        }
    }
    let sizes = strings.iter().map(|s| 5 + s.len() as u64).collect();
    let key_hashes = strings.iter().map(|s| str_key_hash(s)).collect();
    let dict = Arc::new(StrDict {
        strings,
        sizes,
        key_hashes,
    });
    (dict, Arc::new(codes), any_none.then(|| Arc::new(validity)))
}

fn build_keys(records: &[Record], shape: KeyShape) -> KeyColumn {
    match shape {
        KeyShape::AllNone => KeyColumn::AllNone,
        KeyShape::Int => {
            let mut data = Vec::with_capacity(records.len());
            let mut validity = Validity::new(records.len());
            let mut any_none = false;
            for (i, r) in records.iter().enumerate() {
                match r.key {
                    Key::Int(v) => {
                        validity.set(i);
                        data.push(v);
                    }
                    _ => {
                        any_none = true;
                        data.push(0);
                    }
                }
            }
            KeyColumn::Int {
                data: Arc::new(data),
                validity: any_none.then(|| Arc::new(validity)),
            }
        }
        KeyShape::Str => {
            let (dict, codes, validity) = build_dict(records.iter().map(|r| match &r.key {
                Key::Str(s) => Some(s),
                _ => None,
            }));
            KeyColumn::Str {
                dict,
                codes,
                validity,
            }
        }
        KeyShape::Rows => {
            KeyColumn::Rows(Arc::new(records.iter().map(|r| r.key.clone()).collect()))
        }
    }
}

fn build_values(records: &[Record], shape: ValueShape) -> ValueColumn {
    match shape {
        ValueShape::AllNull => ValueColumn::AllNull,
        ValueShape::Int => {
            let mut data = Vec::with_capacity(records.len());
            let mut validity = Validity::new(records.len());
            let mut any_null = false;
            for (i, r) in records.iter().enumerate() {
                match r.value {
                    Value::Int(v) => {
                        validity.set(i);
                        data.push(v);
                    }
                    _ => {
                        any_null = true;
                        data.push(0);
                    }
                }
            }
            ValueColumn::Int {
                data: Arc::new(data),
                validity: any_null.then(|| Arc::new(validity)),
            }
        }
        ValueShape::Float => {
            let mut data = Vec::with_capacity(records.len());
            let mut validity = Validity::new(records.len());
            let mut any_null = false;
            for (i, r) in records.iter().enumerate() {
                match r.value {
                    Value::Float(v) => {
                        validity.set(i);
                        data.push(v);
                    }
                    _ => {
                        any_null = true;
                        data.push(0.0);
                    }
                }
            }
            ValueColumn::Float {
                data: Arc::new(data),
                validity: any_null.then(|| Arc::new(validity)),
            }
        }
        ValueShape::Str => {
            let (dict, codes, validity) = build_dict(records.iter().map(|r| match &r.value {
                Value::Str(s) => Some(s),
                _ => None,
            }));
            ValueColumn::Str {
                dict,
                codes,
                validity,
            }
        }
        ValueShape::Vector(stride) => {
            let mut data = Vec::with_capacity(records.len() * stride);
            let mut validity = Validity::new(records.len());
            let mut any_null = false;
            for (i, r) in records.iter().enumerate() {
                match &r.value {
                    Value::Vector(v) => {
                        validity.set(i);
                        data.extend_from_slice(v);
                    }
                    _ => {
                        any_null = true;
                        data.resize(data.len() + stride, 0.0);
                    }
                }
            }
            ValueColumn::FixedVector {
                stride,
                data: Arc::new(data),
                validity: any_null.then(|| Arc::new(validity)),
            }
        }
        ValueShape::Rows => {
            ValueColumn::Rows(Arc::new(records.iter().map(|r| r.value.clone()).collect()))
        }
    }
}

impl ColumnBatch {
    /// Converts rows to columns. Always succeeds: columns whose rows do
    /// not fit a typed layout fall back to row columns, so
    /// [`ColumnBatch::to_records`] round-trips every input losslessly.
    pub fn from_records(records: &[Record]) -> ColumnBatch {
        let (ks, vs) = classify(records);
        ColumnBatch {
            offset: 0,
            len: records.len(),
            keys: build_keys(records, ks),
            values: build_values(records, vs),
        }
    }

    /// Converts rows to columns only when both columns fit a typed layout
    /// — the shuffle write's entry point. Returns `None` on composite
    /// keys, mixed variants, or boxed payloads, where the row path (which
    /// can *move* owned records) is cheaper than deep-cloning into
    /// fallback row columns. One classify pass, shared with construction.
    pub fn from_records_typed(records: &[Record]) -> Option<ColumnBatch> {
        let (ks, vs) = classify(records);
        if ks == KeyShape::Rows || vs == ValueShape::Rows {
            return None;
        }
        Some(ColumnBatch {
            offset: 0,
            len: records.len(),
            keys: build_keys(records, ks),
            values: build_values(records, vs),
        })
    }

    /// Number of rows in this batch's window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key column (buffer-indexed; apply [`ColumnBatch::offset`]).
    pub fn keys(&self) -> &KeyColumn {
        &self.keys
    }

    /// The value column (buffer-indexed).
    pub fn values(&self) -> &ValueColumn {
        &self.values
    }

    /// First row of this window in buffer coordinates.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Zero-copy sub-window: shares every buffer, adjusts the row window.
    pub fn slice(&self, start: usize, len: usize) -> ColumnBatch {
        assert!(start + len <= self.len, "slice out of bounds");
        ColumnBatch {
            offset: self.offset + start,
            len,
            keys: self.keys.clone(),
            values: self.values.clone(),
        }
    }

    /// Whether the key column has a typed (vectorizable) layout.
    pub fn has_columnar_keys(&self) -> bool {
        !matches!(self.keys, KeyColumn::Rows(_))
    }

    /// Reconstructs the key of window row `i`.
    pub fn key_at(&self, i: usize) -> Key {
        let j = self.offset + i;
        match &self.keys {
            KeyColumn::AllNone => Key::None,
            KeyColumn::Int { data, validity } => match validity {
                Some(v) if !v.get(j) => Key::None,
                _ => Key::Int(data[j]),
            },
            KeyColumn::Str {
                dict,
                codes,
                validity,
            } => match validity {
                Some(v) if !v.get(j) => Key::None,
                _ => Key::Str(Arc::clone(&dict.strings[codes[j] as usize])),
            },
            KeyColumn::Rows(rows) => rows[j].clone(),
        }
    }

    /// Reconstructs the value of window row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        let j = self.offset + i;
        match &self.values {
            ValueColumn::AllNull => Value::Null,
            ValueColumn::Int { data, validity } => match validity {
                Some(v) if !v.get(j) => Value::Null,
                _ => Value::Int(data[j]),
            },
            ValueColumn::Float { data, validity } => match validity {
                Some(v) if !v.get(j) => Value::Null,
                _ => Value::Float(data[j]),
            },
            ValueColumn::Str {
                dict,
                codes,
                validity,
            } => match validity {
                Some(v) if !v.get(j) => Value::Null,
                _ => Value::Str(Arc::clone(&dict.strings[codes[j] as usize])),
            },
            ValueColumn::FixedVector {
                stride,
                data,
                validity,
            } => match validity {
                Some(v) if !v.get(j) => Value::Null,
                _ => Value::Vector(Arc::new(data[j * stride..(j + 1) * stride].to_vec())),
            },
            ValueColumn::Rows(rows) => rows[j].clone(),
        }
    }

    /// Reconstructs window row `i` as a [`Record`].
    pub fn record_at(&self, i: usize) -> Record {
        Record::new(self.key_at(i), self.value_at(i))
    }

    /// Materializes the whole window back into rows.
    pub fn to_records(&self) -> Vec<Record> {
        (0..self.len).map(|i| self.record_at(i)).collect()
    }

    /// Streams reconstructed rows to `f` in window order (the merge
    /// accumulators consume shipped bucket slices through this without an
    /// intermediate `Vec`).
    pub fn for_each_record(&self, mut f: impl FnMut(Record)) {
        for i in 0..self.len {
            f(self.record_at(i));
        }
    }

    /// Serialized size of the window, computed from buffer lengths (and
    /// validity popcounts) rather than per-row enum walks. Equals
    /// `batch_size(&self.to_records())` exactly — memman budgets and
    /// shuffle byte tables cannot tell the paths apart.
    pub fn encoded_size(&self) -> u64 {
        let (start, end) = (self.offset, self.offset + self.len);
        2 * self.len as u64 + self.key_bytes(start, end) + self.value_bytes(start, end)
    }

    fn key_bytes(&self, start: usize, end: usize) -> u64 {
        let n = (end - start) as u64;
        match &self.keys {
            KeyColumn::AllNone => n,
            KeyColumn::Int { validity, .. } => match validity {
                None => 9 * n,
                Some(v) => {
                    let valid = v.count_valid(start, end) as u64;
                    9 * valid + (n - valid)
                }
            },
            KeyColumn::Str {
                dict,
                codes,
                validity,
            } => match validity {
                None => codes[start..end]
                    .iter()
                    .map(|&c| dict.sizes[c as usize])
                    .sum(),
                Some(v) => (start..end)
                    .map(|j| {
                        if v.get(j) {
                            dict.sizes[codes[j] as usize]
                        } else {
                            1
                        }
                    })
                    .sum(),
            },
            KeyColumn::Rows(rows) => rows[start..end].iter().map(Key::encoded_size).sum(),
        }
    }

    fn value_bytes(&self, start: usize, end: usize) -> u64 {
        let n = (end - start) as u64;
        match &self.values {
            ValueColumn::AllNull => n,
            ValueColumn::Int { validity, .. } | ValueColumn::Float { validity, .. } => {
                match validity {
                    None => 9 * n,
                    Some(v) => {
                        let valid = v.count_valid(start, end) as u64;
                        9 * valid + (n - valid)
                    }
                }
            }
            ValueColumn::Str {
                dict,
                codes,
                validity,
            } => match validity {
                None => codes[start..end]
                    .iter()
                    .map(|&c| dict.sizes[c as usize])
                    .sum(),
                Some(v) => (start..end)
                    .map(|j| {
                        if v.get(j) {
                            dict.sizes[codes[j] as usize]
                        } else {
                            1
                        }
                    })
                    .sum(),
            },
            ValueColumn::FixedVector {
                stride, validity, ..
            } => {
                let per_row = 9 + 8 * *stride as u64;
                match validity {
                    None => per_row * n,
                    Some(v) => {
                        let valid = v.count_valid(start, end) as u64;
                        per_row * valid + (n - valid)
                    }
                }
            }
            ValueColumn::Rows(rows) => rows[start..end].iter().map(Value::encoded_size).sum(),
        }
    }

    // -----------------------------------------------------------------
    // Partition assignment: one pass over the key column
    // -----------------------------------------------------------------

    /// Appends the partition id of every window row to `out` with a single
    /// pass over the key column. Bit-identical to calling
    /// `partitioner.partition(&key)` on each reconstructed key: integer
    /// keys go through the partitioner's vectorized buffer kernel,
    /// dictionary keys are assigned once per *distinct* string, and rows
    /// that a validity bit marks absent get `Key::None`'s partition.
    pub fn partition_assignment(&self, partitioner: &dyn Partitioner, out: &mut Vec<u32>) {
        let (start, end) = (self.offset, self.offset + self.len);
        match &self.keys {
            KeyColumn::AllNone => {
                let id = partitioner.partition(&Key::None) as u32;
                out.resize(out.len() + self.len, id);
            }
            KeyColumn::Int { data, validity } => {
                let from = out.len();
                if !partitioner.partition_int_keys(&data[start..end], out) {
                    out.extend(
                        data[start..end]
                            .iter()
                            .map(|&k| partitioner.partition(&Key::Int(k)) as u32),
                    );
                }
                if let Some(v) = validity {
                    let none_id = partitioner.partition(&Key::None) as u32;
                    for (i, j) in (start..end).enumerate() {
                        if !v.get(j) {
                            out[from + i] = none_id;
                        }
                    }
                }
            }
            KeyColumn::Str {
                dict,
                codes,
                validity,
            } => {
                // Assign each distinct string once, then map codes.
                let table: Vec<u32> = dict
                    .strings
                    .iter()
                    .zip(&dict.key_hashes)
                    .map(|(s, &h)| partitioner.partition_hashed(&Key::Str(Arc::clone(s)), h) as u32)
                    .collect();
                match validity {
                    None => out.extend(codes[start..end].iter().map(|&c| table[c as usize])),
                    Some(v) => {
                        let none_id = partitioner.partition(&Key::None) as u32;
                        out.extend((start..end).map(|j| {
                            if v.get(j) {
                                table[codes[j] as usize]
                            } else {
                                none_id
                            }
                        }));
                    }
                }
            }
            KeyColumn::Rows(rows) => {
                out.extend(
                    rows[start..end]
                        .iter()
                        .map(|k| partitioner.partition(k) as u32),
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // Gather: stable counting sort into partition order
    // -----------------------------------------------------------------

    /// Reorders the window by `assignment` (one partition id per row,
    /// each `< p`) with a stable counting sort, so bucket `b` becomes the
    /// contiguous row range `offsets[b]..offsets[b+1]` of the returned
    /// batch. Intra-bucket record order matches the row bucketize's
    /// two-pass copy exactly. Column buffers are gathered with typed
    /// moves (`i64`/`f64`/code copies); only row-fallback columns clone
    /// enum values.
    pub fn gather(&self, assignment: &[u32], p: usize) -> (ColumnBatch, Vec<usize>) {
        assert_eq!(assignment.len(), self.len, "one partition id per row");
        let mut counts = vec![0usize; p];
        for &a in assignment {
            counts[a as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(p + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        // Destination row of every source row, in one pass.
        let mut cursor: Vec<usize> = offsets[..p].to_vec();
        let mut dst: Vec<u32> = Vec::with_capacity(self.len);
        for &a in assignment {
            let d = cursor[a as usize];
            cursor[a as usize] = d + 1;
            dst.push(d as u32);
        }

        let gather_validity = |validity: &Option<Arc<Validity>>| -> Option<Arc<Validity>> {
            validity.as_ref().map(|v| {
                let mut out = Validity::new(self.len);
                for (i, &d) in dst.iter().enumerate() {
                    if v.get(self.offset + i) {
                        out.set(d as usize);
                    }
                }
                Arc::new(out)
            })
        };

        let keys = match &self.keys {
            KeyColumn::AllNone => KeyColumn::AllNone,
            KeyColumn::Int { data, validity } => {
                let mut out = vec![0i64; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = data[self.offset + i];
                }
                KeyColumn::Int {
                    data: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            KeyColumn::Str {
                dict,
                codes,
                validity,
            } => {
                let mut out = vec![0u32; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = codes[self.offset + i];
                }
                KeyColumn::Str {
                    dict: Arc::clone(dict),
                    codes: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            KeyColumn::Rows(rows) => {
                let mut out = vec![Key::None; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = rows[self.offset + i].clone();
                }
                KeyColumn::Rows(Arc::new(out))
            }
        };

        let values = match &self.values {
            ValueColumn::AllNull => ValueColumn::AllNull,
            ValueColumn::Int { data, validity } => {
                let mut out = vec![0i64; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = data[self.offset + i];
                }
                ValueColumn::Int {
                    data: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            ValueColumn::Float { data, validity } => {
                let mut out = vec![0f64; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = data[self.offset + i];
                }
                ValueColumn::Float {
                    data: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            ValueColumn::Str {
                dict,
                codes,
                validity,
            } => {
                let mut out = vec![0u32; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = codes[self.offset + i];
                }
                ValueColumn::Str {
                    dict: Arc::clone(dict),
                    codes: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            ValueColumn::FixedVector {
                stride,
                data,
                validity,
            } => {
                let s = *stride;
                let mut out = vec![0f64; self.len * s];
                for (i, &d) in dst.iter().enumerate() {
                    let src = (self.offset + i) * s;
                    out[d as usize * s..(d as usize + 1) * s].copy_from_slice(&data[src..src + s]);
                }
                ValueColumn::FixedVector {
                    stride: s,
                    data: Arc::new(out),
                    validity: gather_validity(validity),
                }
            }
            ValueColumn::Rows(rows) => {
                let mut out = vec![Value::Null; self.len];
                for (i, &d) in dst.iter().enumerate() {
                    out[d as usize] = rows[self.offset + i].clone();
                }
                ValueColumn::Rows(Arc::new(out))
            }
        };

        (
            ColumnBatch {
                offset: 0,
                len: self.len,
                keys,
                values,
            },
            offsets,
        )
    }
}

// ---------------------------------------------------------------------
// Vectorized fused narrow chains
// ---------------------------------------------------------------------

/// One vectorized narrow op over an integer value column. The scalar stays
/// in a register across the whole fused chain; no `Record` is built until
/// (unless) the row path needs one.
pub enum IntOp {
    /// Replace the value with `f(value)`.
    Map(Box<dyn Fn(i64) -> i64 + Send + Sync>),
    /// Keep rows where `f(value)` holds.
    Filter(Box<dyn Fn(i64) -> bool + Send + Sync>),
}

/// Runs a fused chain of [`IntOp`]s over the batch in one pass: each row's
/// integer value is threaded through every op back-to-back, survivors'
/// keys and values are appended to fresh column buffers. Returns `None`
/// when the value column is not a no-null integer column (the caller
/// falls back to the row chain). Output rows equal the row-path result
/// bit-for-bit, in the same order.
pub fn run_int_chain(batch: &ColumnBatch, ops: &[IntOp]) -> Option<ColumnBatch> {
    let ValueColumn::Int {
        data,
        validity: None,
    } = &batch.values
    else {
        return None;
    };
    let (start, end) = (batch.offset, batch.offset + batch.len);
    let mut out_vals: Vec<i64> = Vec::with_capacity(batch.len);
    // Surviving source rows, for the key gather below.
    let mut keep: Vec<u32> = Vec::with_capacity(batch.len);
    'row: for (i, &v0) in data[start..end].iter().enumerate() {
        let mut v = v0;
        for op in ops {
            match op {
                IntOp::Map(f) => v = f(v),
                IntOp::Filter(f) => {
                    if !f(v) {
                        continue 'row;
                    }
                }
            }
        }
        out_vals.push(v);
        keep.push(i as u32);
    }

    let keys = match &batch.keys {
        KeyColumn::AllNone => KeyColumn::AllNone,
        KeyColumn::Int { data, validity } => {
            let out: Vec<i64> = keep.iter().map(|&i| data[start + i as usize]).collect();
            let v = validity.as_ref().map(|v| {
                let mut out_v = Validity::new(keep.len());
                for (d, &i) in keep.iter().enumerate() {
                    if v.get(start + i as usize) {
                        out_v.set(d);
                    }
                }
                Arc::new(out_v)
            });
            KeyColumn::Int {
                data: Arc::new(out),
                validity: v,
            }
        }
        KeyColumn::Str {
            dict,
            codes,
            validity,
        } => {
            let out: Vec<u32> = keep.iter().map(|&i| codes[start + i as usize]).collect();
            let v = validity.as_ref().map(|v| {
                let mut out_v = Validity::new(keep.len());
                for (d, &i) in keep.iter().enumerate() {
                    if v.get(start + i as usize) {
                        out_v.set(d);
                    }
                }
                Arc::new(out_v)
            });
            KeyColumn::Str {
                dict: Arc::clone(dict),
                codes: Arc::new(out),
                validity: v,
            }
        }
        KeyColumn::Rows(rows) => KeyColumn::Rows(Arc::new(
            keep.iter()
                .map(|&i| rows[start + i as usize].clone())
                .collect(),
        )),
    };

    Some(ColumnBatch {
        offset: 0,
        len: out_vals.len(),
        keys,
        values: ValueColumn::Int {
            data: Arc::new(out_vals),
            validity: None,
        },
    })
}

/// Concatenates batch slices into one owned batch with plain buffer
/// copies — the slice-shipping counterpart of cloning record vectors into
/// a merged `Vec<Record>`. All parts must share the integer key/value
/// layout with no validity gaps (the shape the shuffle's hot path ships);
/// returns `None` otherwise.
pub fn concat_int_batches(parts: &[ColumnBatch]) -> Option<ColumnBatch> {
    let total: usize = parts.iter().map(ColumnBatch::len).sum();
    let mut keys = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for part in parts {
        let (start, end) = (part.offset, part.offset + part.len);
        match (&part.keys, &part.values) {
            (
                KeyColumn::Int {
                    data: k,
                    validity: None,
                },
                ValueColumn::Int {
                    data: v,
                    validity: None,
                },
            ) => {
                keys.extend_from_slice(&k[start..end]);
                vals.extend_from_slice(&v[start..end]);
            }
            _ => return None,
        }
    }
    Some(ColumnBatch {
        offset: 0,
        len: total,
        keys: KeyColumn::Int {
            data: Arc::new(keys),
            validity: None,
        },
        values: ValueColumn::Int {
            data: Arc::new(vals),
            validity: None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::{HashPartitioner, RangePartitioner};
    use crate::record::batch_size;

    fn mixed_rows() -> Vec<Record> {
        vec![
            Record::new(Key::Int(3), Value::Int(30)),
            Record::new(Key::None, Value::Null),
            Record::new(Key::Int(-7), Value::Int(70)),
            Record::new(Key::Int(3), Value::Int(31)),
        ]
    }

    #[test]
    fn int_round_trip_with_none_and_null() {
        let rows = mixed_rows();
        let b = ColumnBatch::from_records(&rows);
        assert!(b.has_columnar_keys());
        assert_eq!(b.to_records(), rows);
        assert_eq!(b.encoded_size(), batch_size(&rows));
    }

    #[test]
    fn str_dict_round_trip() {
        let rows = vec![
            Record::new(Key::str("a"), Value::str("x")),
            Record::new(Key::str("bb"), Value::str("x")),
            Record::new(Key::str("a"), Value::Null),
            Record::new(Key::None, Value::str("yyy")),
        ];
        let b = ColumnBatch::from_records(&rows);
        assert!(b.has_columnar_keys());
        if let KeyColumn::Str { dict, .. } = b.keys() {
            assert_eq!(dict.len(), 2, "dictionary dedups repeated keys");
        } else {
            panic!("expected dictionary key column");
        }
        assert_eq!(b.to_records(), rows);
        assert_eq!(b.encoded_size(), batch_size(&rows));
    }

    #[test]
    fn vector_and_fallback_round_trip() {
        let fixed = vec![
            Record::new(Key::Int(1), Value::vector(vec![1.0, 2.0])),
            Record::new(Key::Int(2), Value::Null),
            Record::new(Key::Int(3), Value::vector(vec![5.0, 6.0])),
        ];
        let b = ColumnBatch::from_records(&fixed);
        assert!(matches!(
            b.values(),
            ValueColumn::FixedVector { stride: 2, .. }
        ));
        assert_eq!(b.to_records(), fixed);
        assert_eq!(b.encoded_size(), batch_size(&fixed));

        // Ragged vectors and composite keys fall back to row columns but
        // still round-trip.
        let ragged = vec![
            Record::new(
                Key::Pair(Box::new(Key::Int(1)), Box::new(Key::str("t"))),
                Value::vector(vec![1.0]),
            ),
            Record::new(Key::Int(2), Value::vector(vec![1.0, 2.0])),
            Record::new(
                Key::Int(9),
                Value::List(Arc::new(vec![Value::Int(1), Value::Null])),
            ),
        ];
        let b = ColumnBatch::from_records(&ragged);
        assert!(!b.has_columnar_keys());
        assert_eq!(b.to_records(), ragged);
        assert_eq!(b.encoded_size(), batch_size(&ragged));
    }

    #[test]
    fn slicing_is_zero_copy_and_windowed() {
        let rows: Vec<Record> = (0..100)
            .map(|i| Record::new(Key::Int(i), Value::Int(i * 2)))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let s = b.slice(10, 30);
        assert_eq!(s.len(), 30);
        assert_eq!(s.to_records(), rows[10..40]);
        assert_eq!(s.encoded_size(), batch_size(&rows[10..40]));
        let ss = s.slice(5, 10);
        assert_eq!(ss.to_records(), rows[15..25]);
    }

    #[test]
    fn assignment_matches_row_path_hash_and_range() {
        let rows: Vec<Record> = (0..500)
            .map(|i| Record::new(Key::Int(i * 7 - 250), Value::Int(i)))
            .chain(std::iter::once(Record::new(Key::None, Value::Int(-1))))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let keys: Vec<Key> = rows.iter().map(|r| r.key.clone()).collect();
        let hash = HashPartitioner::new(13);
        let range = RangePartitioner::from_sample(keys.iter(), 8, 42);
        for part in [&hash as &dyn Partitioner, &range] {
            let mut got = Vec::new();
            b.partition_assignment(part, &mut got);
            let want: Vec<u32> = keys.iter().map(|k| part.partition(k) as u32).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn assignment_matches_row_path_for_dict_keys() {
        let names = ["alpha", "beta", "gamma", "delta"];
        let rows: Vec<Record> = (0..200)
            .map(|i| Record::new(Key::str(names[i % 4]), Value::Int(i as i64)))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let part = HashPartitioner::new(7);
        let mut got = Vec::new();
        b.partition_assignment(&part, &mut got);
        let want: Vec<u32> = rows.iter().map(|r| part.partition(&r.key) as u32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn gather_is_stable_within_buckets() {
        let rows: Vec<Record> = (0..100)
            .map(|i| Record::new(Key::Int(i % 5), Value::Int(i)))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let part = HashPartitioner::new(5);
        let mut assign = Vec::new();
        b.partition_assignment(&part, &mut assign);
        let (g, offsets) = b.gather(&assign, 5);
        for p in 0..5 {
            let bucket = g
                .slice(offsets[p], offsets[p + 1] - offsets[p])
                .to_records();
            let want: Vec<Record> = rows
                .iter()
                .filter(|r| part.partition(&r.key) == p)
                .cloned()
                .collect();
            assert_eq!(bucket, want, "bucket {p} must match row-path order");
        }
    }

    #[test]
    fn fused_int_chain_matches_row_chain() {
        let rows: Vec<Record> = (0..1000)
            .map(|i| Record::new(Key::Int(i % 10), Value::Int(i)))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let ops = vec![
            IntOp::Filter(Box::new(|v| v % 3 != 0)),
            IntOp::Map(Box::new(|v| v * 2 + 1)),
            IntOp::Filter(Box::new(|v| v % 5 != 0)),
        ];
        let got = run_int_chain(&b, &ops).expect("int column").to_records();
        let want: Vec<Record> = rows
            .iter()
            .filter(|r| r.value.as_int() % 3 != 0)
            .map(|r| Record::new(r.key.clone(), Value::Int(r.value.as_int() * 2 + 1)))
            .filter(|r| r.value.as_int() % 5 != 0)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concat_batches_matches_record_concat() {
        let rows: Vec<Record> = (0..90)
            .map(|i| Record::new(Key::Int(i), Value::Int(-i)))
            .collect();
        let b = ColumnBatch::from_records(&rows);
        let parts = [b.slice(0, 30), b.slice(30, 30), b.slice(60, 30)];
        let merged = concat_int_batches(&parts).expect("int layout");
        assert_eq!(merged.to_records(), rows);
    }

    #[test]
    fn empty_batch_round_trips() {
        let b = ColumnBatch::from_records(&[]);
        assert!(b.is_empty());
        assert_eq!(b.to_records(), Vec::<Record>::new());
        assert_eq!(b.encoded_size(), 0);
        let mut assign = Vec::new();
        b.partition_assignment(&HashPartitioner::new(4), &mut assign);
        assert!(assign.is_empty());
    }
}
