//! Runtime adaptivity: skew-aware hot-partition splitting.
//!
//! The static planner fixes every shuffle's partitioner and partition
//! count before the job runs; when the data turns out skewed, one hot
//! reduce partition stalls the whole stage. This module closes that gap
//! *inside* a job: by the time a reduce task could start, its exchange
//! already holds the complete map×partition byte table, so the engine can
//! decide — identically in the barrier and pipelined executors, and
//! identically under any fault plan — to split hot partitions into
//! sub-tasks before reduce work is dispatched.
//!
//! Determinism rules (the reason this is safe to default on):
//!
//! * Every decision here is a pure function of **data-plane** quantities:
//!   published per-bucket byte counts and the bucket contents themselves.
//!   Simulated durations never participate — fault injection perturbs
//!   timings, and decisions keyed on them would make faulted runs diverge
//!   from clean ones (the fault-equivalence suite pins byte tables equal).
//! * Sub-routing is **key-preserving**: all records of one key land in
//!   exactly one sub-bucket, so reduce/group merges per sub-bucket produce
//!   the same aggregates as the unsplit merge, and concatenating
//!   sub-outputs in sub order is a deterministic permutation of the
//!   unsplit output (identical sorted tables).
//! * Only **range-partitioned** shuffles split in place: their map side
//!   already synchronizes on the sample barrier, so collecting the full
//!   column before merging costs the pipelined executor no overlap it had.
//!   Hash skew is handled between jobs by the re-planner
//!   (`core::adaptive`), which flips hot hash stages to range — this
//!   module's hash [`SubRouter`] exists as the fallback when a hot range
//!   bucket's keys are too concentrated to yield distinct sub-bounds.

use crate::config::WorkloadConf;
use crate::exec::{MergeKind, MERGE_BASE_COST, PARTITION_COST};
use crate::metrics::StageKind;
use crate::partitioner::{Partitioner, PartitionerKind, PartitionerSpec, RangePartitioner};
use crate::rdd::RddGraph;
use crate::record::{Key, Record};
use crate::shuffle::{ConcatMerge, GroupMerge, ReduceMerge};
use crate::stage::{Plan, PlanStage, SideDep, StageRoot};
use std::sync::Arc;

/// Max/mean per-bucket byte skew above which a reduce partition counts as
/// hot. Shared with the re-planner's trigger
/// (`chopper::CostConstants::skew_retune_trigger` pins equality) so the
/// in-job splitter and the between-jobs re-planner never disagree on what
/// "hot" means.
pub const HOT_SKEW_TRIGGER: f64 = 2.0;

/// Upper bound on how many sub-tasks one hot partition splits into.
pub const MAX_SUBSPLIT: usize = 8;

/// Buckets smaller than this never split — below it the routing pass
/// costs more than the imbalance it removes.
pub const HOT_MIN_BYTES: u64 = 4096;

/// Between-jobs re-optimization hook: receives the finished job's
/// per-stage actuals, returns a replacement [`WorkloadConf`] to apply to
/// subsequent jobs (or `None` to keep the current one). Installed through
/// [`crate::EngineOptions::replan`].
pub type ReplanHook = Arc<dyn Fn(&ReplanInput) -> Option<WorkloadConf> + Send + Sync>;

/// Everything the re-planner sees after a job completes.
#[derive(Debug, Clone)]
pub struct ReplanInput {
    /// The job that just finished.
    pub job_id: usize,
    /// Virtual-clock reading at the decision point — recorded in the
    /// trace instant so adaptive decisions are auditable and replayable.
    pub clock: f64,
    /// The configuration the job ran under.
    pub conf: WorkloadConf,
    /// Per-stage observations, in plan order.
    pub actuals: Vec<StageActuals>,
}

/// Fault-invariant per-stage observations handed to the re-planner.
///
/// Byte and record counts are data-plane measurements — identical under
/// any fault plan and any worker count. The two duration-derived fields
/// (`duration_s`, `task_skew`) come from the *virtual* clock, which is
/// bit-identical across worker counts and engines; a hook that must stay
/// fault-invariant should key decisions on the byte fields only.
#[derive(Debug, Clone)]
pub struct StageActuals {
    /// Global stage id (unique across jobs within a context).
    pub stage_id: usize,
    /// Signature of the stage's root RDD — for shuffle stages this is the
    /// wide node's signature, i.e. the key [`WorkloadConf`] decisions
    /// attach to.
    pub signature: u64,
    /// Stage classification (source / shuffle / join / cached).
    pub kind: StageKind,
    /// The partitioning scheme the stage ran under.
    pub scheme: Option<PartitionerSpec>,
    /// Whether the planner may change this stage's partitioning.
    pub configurable: bool,
    /// Physical reduce partitions (pre-split).
    pub num_tasks: usize,
    /// Virtual tasks actually simulated (post-split; equals `num_tasks`
    /// when nothing split).
    pub tasks_run: usize,
    pub input_records: u64,
    pub input_bytes: u64,
    pub output_bytes: u64,
    pub shuffle_read_bytes: u64,
    pub shuffle_write_bytes: u64,
    /// Max/mean skew of the per-partition byte columns this stage *wrote*
    /// (1.0 when the stage wrote no shuffle) — the data-plane statistic
    /// the in-job splitter triggers on, surfaced so the re-planner can
    /// retune the partitioner kind for the next job.
    pub write_bucket_skew: f64,
    /// Virtual stage duration in seconds.
    pub duration_s: f64,
    /// Max/mean skew of simulated task durations ([`trace::skew_ratio`]).
    pub task_skew: f64,
}

/// The split decision for one shuffle: how many sub-tasks each reduce
/// partition runs as (1 = unsplit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    /// Per reduce partition, the number of sub-tasks (>= 1).
    pub subs: Vec<usize>,
}

impl SplitPlan {
    /// Total virtual task count after splitting.
    pub fn total_tasks(&self) -> usize {
        self.subs.iter().sum()
    }

    /// Whether any partition actually splits.
    pub fn is_active(&self) -> bool {
        self.subs.iter().any(|&k| k > 1)
    }
}

/// Decides the split for one shuffle from its per-partition byte totals
/// (the column sums of the exchange's map×partition byte table).
///
/// The trigger statistic is [`trace::skew_ratio`] — the same max/mean
/// computation the trace summary reports per stage — so a threshold read
/// off a `chopper trace` table is directly the threshold used here. A hot
/// bucket splits into `ceil(bytes/mean)` subs (capped at
/// [`MAX_SUBSPLIT`]): enough to bring its expected share back to the
/// mean. Returns `None` when nothing splits.
pub fn plan_splits(column_bytes: &[u64]) -> Option<SplitPlan> {
    if column_bytes.len() < 2 {
        return None;
    }
    let vals: Vec<f64> = column_bytes.iter().map(|&b| b as f64).collect();
    if trace::skew_ratio(&vals) < HOT_SKEW_TRIGGER {
        return None;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let subs: Vec<usize> = column_bytes
        .iter()
        .map(|&b| {
            if b >= HOT_MIN_BYTES && (b as f64) > HOT_SKEW_TRIGGER * mean {
                ((b as f64 / mean).ceil() as usize).clamp(2, MAX_SUBSPLIT)
            } else {
                1
            }
        })
        .collect();
    let plan = SplitPlan { subs };
    plan.is_active().then_some(plan)
}

/// Whether `stage_idx`'s root shuffle may split in place, returning the
/// shuffle index when it may.
///
/// Both executors evaluate this from the plan and graph alone (never from
/// runtime state), so they agree bit-for-bit. Conditions: the root is a
/// `ShuffleRead` over a **range**-partitioned shuffle, this stage is that
/// shuffle's only consumer, and the stage captures no cache (splitting
/// re-orders records within a partition, which must not leak into a cached
/// RDD whose co-partitioning later stages rely on).
pub(crate) fn split_eligible(plan: &Plan, graph: &RddGraph, stage_idx: usize) -> Option<usize> {
    let stage = &plan.stages[stage_idx];
    let StageRoot::ShuffleRead { wide, shuffle } = stage.root else {
        return None;
    };
    if plan.shuffles[shuffle].scheme.kind != PartitionerKind::Range {
        return None;
    }
    let consumers = plan
        .stages
        .iter()
        .filter(|s| consumes_shuffle(s, shuffle))
        .count();
    if consumers != 1 {
        return None;
    }
    if graph.node(wide).cached || stage.chain.iter().any(|&r| graph.node(r).cached) {
        return None;
    }
    Some(shuffle)
}

/// Whether a stage reads shuffle `idx` (as reduce root or join side).
fn consumes_shuffle(stage: &PlanStage, idx: usize) -> bool {
    match &stage.root {
        StageRoot::ShuffleRead { shuffle, .. } => *shuffle == idx,
        StageRoot::JoinRead { left, right, .. } => {
            left == &SideDep::Shuffle(idx) || right == &SideDep::Shuffle(idx)
        }
        _ => false,
    }
}

/// Base seed for sub-bound sampling of shuffle `plan_idx` in job `job_id`
/// — same framing as the shuffle partitioner seed, distinct tag byte.
pub(crate) fn split_seed(job_id: usize, plan_idx: usize) -> u64 {
    (job_id as u64) << 32 | (plan_idx as u64) << 8 | 0xC1
}

/// Routes the keys of one hot partition to its sub-buckets.
///
/// Range routing preserves key order across sub-buckets (every key in sub
/// `i` compares `<=` every key in sub `i+1`); hash routing is the
/// order-free fallback when sampled sub-bounds collapse. Both are
/// key-preserving: one key always maps to one sub-bucket.
pub enum SubRouter {
    /// Ordered sub-ranges from sampled quantile bounds.
    Range(RangePartitioner),
    /// Deterministic re-hash modulo `k` (remixed so it does not correlate
    /// with the parent hash partitioner's modulus).
    Hash(usize),
}

/// SplitMix64 finalizer — decorrelates `stable_hash` from the parent
/// partitioner's `hash % P` assignment before the sub-modulus.
fn remix(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9E3779B97F4A7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D049BB133111EB);
    h ^ (h >> 31)
}

impl SubRouter {
    /// Builds the router for one hot partition: sample the bucket's keys
    /// (seeded reservoir, same heuristic as `RangePartitioner`), and fall
    /// back to hash sub-routing when the sample yields no usable bounds
    /// (all sampled keys equal).
    pub fn build<'a, I>(keys: I, k: usize, seed: u64) -> SubRouter
    where
        I: IntoIterator<Item = &'a Key>,
    {
        let rp = RangePartitioner::from_sample(keys, k, seed);
        if rp.bounds().is_empty() && k > 1 {
            SubRouter::Hash(k)
        } else {
            SubRouter::Range(rp)
        }
    }

    /// Number of sub-buckets.
    pub fn k(&self) -> usize {
        match self {
            SubRouter::Range(rp) => rp.num_partitions(),
            SubRouter::Hash(k) => *k,
        }
    }

    /// Sub-bucket index for `key`, in `0..k()`.
    pub fn route(&self, key: &Key) -> usize {
        match self {
            SubRouter::Range(rp) => rp.partition(key),
            SubRouter::Hash(k) => (remix(key.stable_hash()) % *k as u64) as usize,
        }
    }
}

/// The virtual-task statistics of one sub-merge, measured during the
/// physical split — both executors hand these to the driver, which builds
/// one `TaskSpec` per sub from them.
#[derive(Debug, Clone)]
pub(crate) struct SubTaskStats {
    /// Encoded bytes received from each map task (length = map count).
    pub per_map_bytes: Vec<u64>,
    /// Records routed to this sub.
    pub fetched: u64,
    /// Routing + merge compute cost of this sub.
    pub cost: f64,
    /// Encoded bytes the sub-merge produced.
    pub out_bytes: u64,
}

/// Splits one reduce partition's buckets and merges each sub-bucket
/// independently, concatenating sub-outputs in sub order.
///
/// `maps` are the partition's incoming buckets in map order, already
/// materialized to owned rows. Each record is routed once
/// (charged at [`PARTITION_COST`]) and each sub pays the same merge cost
/// shape as an unsplit task over its share, so the sum of sub costs equals
/// the unsplit cost plus the routing charge. Shared verbatim by the
/// barrier and pipelined executors — the returned records, cost, and
/// stats are bit-identical given identical inputs.
pub(crate) fn merge_split(
    maps: Vec<Vec<Record>>,
    merge: &MergeKind,
    router: &SubRouter,
) -> (Vec<Record>, f64, Vec<SubTaskStats>) {
    let k = router.k();
    let m_count = maps.len();
    // Route: per_sub[s][m] holds map m's records for sub s, in arrival order.
    let mut per_sub: Vec<Vec<Vec<Record>>> = (0..k).map(|_| vec![Vec::new(); m_count]).collect();
    let mut per_map_bytes: Vec<Vec<u64>> = vec![vec![0u64; m_count]; k];
    for (m, bucket) in maps.into_iter().enumerate() {
        for rec in bucket {
            let s = router.route(&rec.key);
            per_map_bytes[s][m] += rec.encoded_size();
            per_sub[s][m].push(rec);
        }
    }
    // Merge each sub independently, mirroring the unsplit task's cost
    // accumulation shape (routing charge, base merge charge, op charge).
    let mut out: Vec<Record> = Vec::new();
    let mut total_cost = 0.0;
    let mut stats = Vec::with_capacity(k);
    for (s, sub_maps) in per_sub.into_iter().enumerate() {
        let fetched: u64 = sub_maps.iter().map(|b| b.len() as u64).sum();
        let mut cost = fetched as f64 * PARTITION_COST;
        cost += fetched as f64 * MERGE_BASE_COST;
        let records = match merge {
            MergeKind::Reduce(f, c) => {
                let mut mg = ReduceMerge::new(Arc::clone(f));
                for b in sub_maps {
                    mg.push_owned(b);
                }
                let (recs, ops) = mg.finish();
                cost += ops as f64 * c;
                recs
            }
            MergeKind::Group(c) => {
                cost += fetched as f64 * c;
                let mut mg = GroupMerge::new();
                for b in sub_maps {
                    mg.push_owned(b);
                }
                mg.finish()
            }
            MergeKind::Concat => {
                let mut mg = ConcatMerge::new();
                for b in sub_maps {
                    mg.push_owned(b);
                }
                mg.finish()
            }
        };
        let out_bytes: u64 = records.iter().map(Record::encoded_size).sum();
        stats.push(SubTaskStats {
            per_map_bytes: per_map_bytes[s].clone(),
            fetched,
            cost,
            out_bytes,
        });
        total_cost += cost;
        out.extend(records);
    }
    (out, total_cost, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;
    use proptest::prelude::*;

    #[test]
    fn plan_splits_balanced_is_none() {
        assert_eq!(plan_splits(&[1000, 1001, 999, 1000]), None);
        assert_eq!(plan_splits(&[]), None);
        assert_eq!(plan_splits(&[50_000]), None, "single bucket never splits");
    }

    #[test]
    fn plan_splits_hot_bucket() {
        // One bucket ~4x the mean of the others.
        let bytes = [5_000u64, 5_000, 5_000, 60_000];
        let plan = plan_splits(&bytes).expect("skew above trigger");
        assert_eq!(plan.subs.len(), 4);
        assert_eq!(&plan.subs[..3], &[1, 1, 1]);
        assert!(plan.subs[3] >= 2 && plan.subs[3] <= MAX_SUBSPLIT);
        assert_eq!(plan.total_tasks(), 3 + plan.subs[3]);
        assert!(plan.is_active());
    }

    #[test]
    fn plan_splits_respects_min_bytes() {
        // Same ratios, tiny magnitudes: below HOT_MIN_BYTES nothing splits.
        assert_eq!(plan_splits(&[50, 50, 50, 600]), None);
    }

    /// The trigger statistic is literally the trace summary's skew ratio —
    /// the satellite pin: both computations agree on the same inputs.
    #[test]
    fn trigger_matches_trace_summary_skew() {
        let bytes = [5_000u64, 5_000, 5_000, 60_000];
        let vals: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
        let summary_skew = trace::skew_ratio(&vals);
        assert!(summary_skew >= HOT_SKEW_TRIGGER);
        assert!(plan_splits(&bytes).is_some());
        // And a below-trigger table stays unsplit by the same statistic.
        let flat = [5_000u64; 4];
        let flat_vals: Vec<f64> = flat.iter().map(|&b| b as f64).collect();
        assert!(trace::skew_ratio(&flat_vals) < HOT_SKEW_TRIGGER);
        assert_eq!(plan_splits(&flat), None);
    }

    fn arb_key() -> impl Strategy<Value = Key> {
        prop_oneof![
            Just(Key::None),
            any::<i64>().prop_map(Key::Int),
            "[a-z]{0,8}".prop_map(|s| Key::Str(s.into())),
            (any::<i64>(), any::<i64>())
                .prop_map(|(a, b)| Key::Pair(Box::new(Key::Int(a)), Box::new(Key::Int(b)))),
        ]
    }

    proptest! {
        /// Range split preserves global key ordering: every key routed to
        /// sub `i` compares <= every key routed to sub `j > i`; and the
        /// sub-bucket sizes sum to the input size.
        #[test]
        fn range_split_preserves_order_and_mass(
            mut keys in proptest::collection::vec(any::<i64>().prop_map(Key::Int), 1..400),
            k in 2usize..6,
            seed in any::<u64>(),
        ) {
            let router = SubRouter::build(keys.iter(), k, seed);
            if let SubRouter::Range(_) = router {
                let mut routed: Vec<Vec<Key>> = vec![Vec::new(); k];
                for key in keys.drain(..) {
                    let s = router.route(&key);
                    prop_assert!(s < k);
                    routed[s].push(key);
                }
                let total: usize = routed.iter().map(Vec::len).sum();
                prop_assert_eq!(total, routed.iter().map(Vec::len).sum::<usize>());
                let mut last_max: Option<Key> = None;
                for sub in &routed {
                    if let Some(min) = sub.iter().min() {
                        if let Some(prev) = &last_max {
                            prop_assert!(prev <= min, "sub-buckets out of key order");
                        }
                        last_max = Some(sub.iter().max().unwrap().clone());
                    }
                }
            }
        }

        /// Hash sub-split routes every key — including `Key::Pair` and
        /// `Key::None` — to exactly one sub-bucket in range, and routing
        /// is a pure function of the key.
        #[test]
        fn hash_split_routes_every_key_once(
            keys in proptest::collection::vec(arb_key(), 1..200),
            k in 1usize..9,
        ) {
            let router = SubRouter::Hash(k);
            let mut counts = vec![0usize; k];
            for key in &keys {
                let s = router.route(key);
                prop_assert!(s < k);
                prop_assert_eq!(s, router.route(key), "routing must be deterministic");
                counts[s] += 1;
            }
            prop_assert_eq!(counts.iter().sum::<usize>(), keys.len());
        }

        /// Splitting then merging per sub preserves mass: sub byte/record
        /// sums equal the input's, and reduce aggregates match the unsplit
        /// merge (sorted).
        #[test]
        fn merge_split_preserves_sums(
            raw in proptest::collection::vec((0i64..50, 1i64..100), 1..300),
            k in 2usize..5,
            seed in any::<u64>(),
        ) {
            let records: Vec<Record> = raw
                .iter()
                .map(|&(key, v)| Record::new(Key::Int(key), Value::Int(v)))
                .collect();
            let maps: Vec<Vec<Record>> = records.chunks(37).map(<[Record]>::to_vec).collect();
            let in_bytes: u64 = records.iter().map(Record::encoded_size).sum();
            let router = SubRouter::build(records.iter().map(|r| &r.key), k, seed);
            let f: crate::ReduceFn = Arc::new(|a, b| Value::Int(a.as_int() + b.as_int()));
            let (out, _cost, stats) =
                merge_split(maps.clone(), &MergeKind::Reduce(Arc::clone(&f), 1e-6), &router);
            let split_bytes: u64 = stats.iter().flat_map(|s| s.per_map_bytes.iter()).sum();
            prop_assert_eq!(split_bytes, in_bytes, "sub-bucket bytes sum to the input");
            let fetched: u64 = stats.iter().map(|s| s.fetched).sum();
            prop_assert_eq!(fetched, records.len() as u64);
            // Unsplit reference.
            let mut mg = ReduceMerge::new(f);
            for b in maps {
                mg.push_owned(b);
            }
            let (mut reference, _) = mg.finish();
            let mut out = out;
            let by_key = |a: &Record, b: &Record| a.key.cmp(&b.key);
            out.sort_by(by_key);
            reference.sort_by(by_key);
            prop_assert_eq!(out, reference, "split merge must aggregate identically");
        }
    }
}
